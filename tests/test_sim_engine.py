"""Unit tests for the discrete-event kernel (ordering, cancellation, run-until)."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0
    assert sim.executed_events == 3


def test_same_time_events_fire_in_priority_then_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "first-inserted")
    sim.schedule(1.0, fired.append, "second-inserted")
    sim.schedule(1.0, fired.append, "high-priority", priority=-1)
    sim.run()
    assert fired == ["high-priority", "first-inserted", "second-inserted"]


def test_negative_delay_and_past_scheduling_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(9.0, lambda: None)


def test_cancellation_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    assert handle.active
    assert handle.cancel() is True
    assert not handle.active
    assert handle.cancel() is False  # second cancel reports "was not live"
    sim.run()
    assert fired == ["kept"]


def test_handle_inactive_after_firing():
    """Satellite fix: a handle must not report active forever after its event fired."""
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.active
    sim.run()
    assert not handle.active
    # Cancelling a fired event is a no-op and must not corrupt the live count.
    assert handle.cancel() is False
    assert sim.pending_events == 0


def test_run_until_advances_clock_to_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    end = sim.run(until=50.0)
    assert fired == ["early"]
    assert end == 50.0
    assert sim.now == 50.0
    assert sim.pending_events == 1  # the late event is still scheduled
    sim.run()
    assert fired == ["early", "late"]


def test_stop_halts_run_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0


def test_event_queue_live_count_with_cancellations():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    assert queue.cancel(first) is True
    assert queue.cancel(first) is False
    assert len(queue) == 1
    assert queue.peek_time() == 2.0
    popped = queue.pop()
    assert popped is not None and popped.time == 2.0
    assert queue.pop() is None
    assert len(queue) == 0
