"""Federation partition scenarios: split/link/crash cuts, stale-entry
fallback during the partition, and post-heal reconvergence.

The ``partition`` family severs inter-registry federation links (graph
bipartition, single-link cut, or registry crash+restart) and heals them
after a fixed window.  The battery here asserts, across k in {2, 4, 8} and
every topology:

* the plan shape — a split over k registries cuts ``half * (k - half)``
  links, exactly the near/far bipartition pairs;
* the TTL stale-entry fallback bound — a change published *during* the
  partition must not reach a far-side registry before the heal (pull and
  gossip modes, whose only channel to the far side is registry-to-registry
  federation traffic);
* post-heal reconvergence — with the default geometry the heal leaves a
  recovery tail of exactly ``RECOVERY_BOUND`` seconds, so every registry
  must hold the authoritative version again and the cross-registry
  convergence time must be defined.
"""

import json

import pytest

from repro.experiments import ScenarioSpec, run_scenario
from repro.experiments.scenarios import RECOVERY_BOUND, SCENARIOS
from repro.net.failures import DisruptionPlan, LinkCut
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.__main__ import main

#: Default partition geometry (the family's option defaults).
CUT_START = 1800.0
CUT_END = 2400.0


def _partition_run(system, seed=9, rate=0.0, options=None):
    spec = ScenarioSpec(
        system=system,
        failure_rate=rate,
        seed=seed,
        scenario="partition",
        scenario_options=dict(options or {}),
    )
    return spec, run_scenario(spec)


# --------------------------------------------------------------------------- plan pieces
def test_link_cut_validation():
    assert LinkCut(a="x", b="y", start=0.0, duration=1.0).validate().end == 1.0
    with pytest.raises(ValueError, match="differ"):
        LinkCut(a="x", b="x", start=0.0, duration=1.0).validate()
    with pytest.raises(ValueError):
        LinkCut(a="x", b="y", start=-1.0, duration=1.0).validate()
    with pytest.raises(ValueError):
        LinkCut(a="x", b="y", start=0.0, duration=0.0).validate()
    plan = DisruptionPlan(link_cuts=(LinkCut(a="x", b="y", start=0.0, duration=1.0),))
    assert plan.n_events == 1


def test_network_link_cut_bookkeeping():
    network = Network(Simulator(), RngRegistry(0))
    network.cut_link("a", "b")
    assert network.link_is_cut("a", "b")
    assert network.link_is_cut("b", "a")  # undirected
    with pytest.raises(ValueError):
        network.cut_link("a", "a")
    network.heal_link("b", "a")
    assert not network.link_is_cut("a", "b")


def test_partition_builder_rejects_bad_options():
    for options, match in (
        ({"mode": "bogus"}, "partition@mode"),
        ({"start": 10.0}, "partition@start"),
        ({"duration": 0.0}, "partition@duration"),
        ({"start": 5000.0, "duration": 1000.0}, "heal before"),
    ):
        with pytest.raises(ValueError, match=match):
            _partition_run("jini@k=2,mode=pull", options=options)


def test_partition_degrades_to_table4_for_non_federated_systems():
    """Systems without inter-registry links get exactly the table4 plan, so
    the cross-system conformance battery stays meaningful."""
    for system in ("frodo3", "jini"):  # jini = k=1: nothing to partition
        spec, result = _partition_run(system, rate=0.2)
        baseline = run_scenario(
            ScenarioSpec(system=system, failure_rate=0.2, seed=spec.seed)
        )
        assert result == baseline
        assert result.details["telemetry"]["failures"]["n_link_cuts"] == 0
        assert SCENARIOS.get("partition").check(spec, result) == []


# --------------------------------------------------------------------------- split battery
@pytest.mark.parametrize("topology", ["mesh", "star", "ring", "line"])
@pytest.mark.parametrize("k", [2, 4, 8])
def test_split_partition_battery(k, topology):
    """Pull mode, every k x topology: cut count, stale-entry fallback during
    the partition, and post-heal reconvergence."""
    spec, result = _partition_run(f"jini@k={k},mode=pull,topology={topology}")
    failures = result.details["telemetry"]["failures"]
    half = (k + 1) // 2
    assert failures["n_link_cuts"] == half * (k - half)
    assert failures["last_cut_end"] == CUT_END
    assert failures["n_churn"] == 0

    federation = result.details["federation"]
    assert federation["registry_ids"] == [f"jini-lus-{i}" for i in range(1, k + 1)]
    # The change lands at 2000s, inside the cut window: the far side can only
    # serve its TTL-bounded stale entry until the heal.
    assert CUT_START <= result.change_time < CUT_END
    for registry_id in federation["registry_ids"][half:]:
        window = federation["staleness"][registry_id]
        assert window is not None, registry_id
        assert result.change_time + window >= CUT_END - 1e-9, (
            f"{registry_id} saw the change before the heal"
        )
    # Post-heal reconvergence: the heal leaves a RECOVERY_BOUND tail exactly.
    assert result.deadline - CUT_END >= RECOVERY_BOUND
    assert federation["converged_registries"] == k
    assert federation["convergence_time"] is not None
    change_version = federation["change_version"]
    assert all(
        version == change_version
        for version in federation["registry_versions"].values()
    )
    # And the family's own conformance hook agrees.
    assert SCENARIOS.get("partition").check(spec, result) == []


def test_split_partition_actually_drops_federation_traffic():
    """Gossip ticks every 120s, so a 600s split must kill deliveries on the
    severed link — the cut is real, not just bookkeeping."""
    spec, result = _partition_run("jini@k=2,mode=gossip")
    failures = result.details["telemetry"]["failures"]
    assert failures["n_link_cuts"] == 1
    assert failures["link_cut_drops"] > 0
    assert SCENARIOS.get("partition").check(spec, result) == []


# --------------------------------------------------------------------------- link + crash modes
def test_single_link_cut_mode():
    spec, result = _partition_run(
        "jini@k=4,mode=gossip,topology=ring", options={"mode": "link"}
    )
    failures = result.details["telemetry"]["failures"]
    assert failures["n_link_cuts"] == 1
    # A ring survives one severed edge: gossip routes around it, so the
    # registries reconverge (asserted by the family checker's post-heal rule).
    assert result.details["federation"]["converged_registries"] == 4
    assert SCENARIOS.get("partition").check(spec, result) == []


def test_registry_crash_mode_restarts_one_registry():
    spec, result = _partition_run(
        "jini@k=4,mode=pull", options={"mode": "crash"}
    )
    failures = result.details["telemetry"]["failures"]
    assert failures["n_link_cuts"] == 0
    departed = failures["departed"]
    assert len(departed) == 1 and departed[0].startswith("jini-lus-")
    assert sorted(failures["departed"]) == sorted(failures["rejoined"])
    assert SCENARIOS.get("partition").check(spec, result) == []


# --------------------------------------------------------------------------- determinism
def test_partition_sweep_is_deterministic_across_executors(tmp_path):
    argv = [
        "sweep",
        "--system",
        "jini@k=4,mode=pull",
        "--rates",
        "0,20",
        "--runs",
        "2",
        "--scenario",
        "partition",
        "--per-run",
    ]
    serial = tmp_path / "serial.json"
    jobs2 = tmp_path / "jobs2.json"
    assert main([*argv, "--jobs", "1", "--out", str(serial)]) == 0
    assert main([*argv, "--jobs", "2", "--out", str(jobs2)]) == 0
    assert serial.read_bytes() == jobs2.read_bytes()
    data = json.loads(serial.read_text())
    assert data["spec"]["scenario"] == "partition"
    cuts = [
        run["details"]["telemetry"]["failures"]["n_link_cuts"] for run in data["runs"]
    ]
    assert all(n == 4 for n in cuts)  # k=4 split: 2 x 2 bipartition pairs
