"""Observability layer: sinks, counters, telemetry, progress, trace analysis.

The overriding invariant under test: observability must never perturb
results.  Runs and sweeps with tracing off, in-memory, or streamed to NDJSON
produce identical RunResults (telemetry included), and the trace-derived
message accounting agrees with the in-memory :class:`MessageStats`.
"""

import io
import json
import os
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.experiments.executors import ParallelExecutor
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenario import ScenarioSpec
from repro.experiments.report import summary_to_dict
from repro.experiments.sweep import SweepSpec, sweep
from repro.net.messages import MessageLayer
from repro.obs.analyze import (
    TELEMETRY_JOURNAL,
    expand_trace_paths,
    kind_counts,
    summarize,
)
from repro.obs.progress import SweepProgress, _format_eta
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION
from repro.obs.sinks import (
    MemorySink,
    NDJSONSink,
    NullSink,
    TraceSink,
    iter_trace_file,
    load_trace,
    read_trace_header,
    trace_filename,
)
from repro.sim.events import EventQueue
from repro.sim.tracing import TraceRecord, Tracer

#: Short but non-trivial scenario: failures on, well past the change time.
SPEC = ScenarioSpec(system="frodo3", failure_rate=0.2, seed=7, change_time=500.0, deadline=1500.0)
SPEC_B = ScenarioSpec(system="upnp", failure_rate=0.1, seed=3, change_time=500.0, deadline=1500.0)


# --------------------------------------------------------------------------- tracer semantics
def test_tracer_filter_boundaries_inclusive():
    tracer = Tracer()
    for t in (1.0, 2.0, 3.0):
        tracer.record(t, "cat", "ev")
    assert [r.time for r in tracer.filter(since=2.0)] == [2.0, 3.0]
    assert [r.time for r in tracer.filter(until=2.0)] == [1.0, 2.0]
    assert [r.time for r in tracer.filter(since=2.0, until=2.0)] == [2.0]
    assert tracer.count(since=1.0, until=3.0) == 3


def test_disabled_tracer_is_a_noop(tmp_path):
    path = str(tmp_path / "t.ndjson")
    tracer = Tracer(enabled=False, sink=NDJSONSink(path))
    tracer.record(1.0, "cat", "ev", k=1)
    tracer.close()
    assert len(tracer) == 0
    # The lazy sink never opened: a run that traces nothing leaves no file.
    assert not os.path.exists(path)


def test_sink_interface_and_memory_null_sinks():
    record = TraceRecord(time=1.0, category="c", event="e")
    with pytest.raises(NotImplementedError):
        TraceSink().emit(record)
    with pytest.raises(RuntimeError):
        TraceSink().clear()

    memory = MemorySink()
    memory.emit(record)
    assert memory.records == [record]
    memory.clear()
    assert memory.records == []

    null = NullSink()
    null.emit(record)
    null.clear()  # supported: there is nothing to drop
    null.close()


# --------------------------------------------------------------------------- NDJSON sink
def test_ndjson_sink_round_trip(tmp_path):
    path = str(tmp_path / "sub" / "t.ndjson")
    sink = NDJSONSink(path, meta={"seed": 7})
    tracer = Tracer(sink=sink)
    tracer.record(0.5, "net", "send", kind="ping", n=1)
    tracer.record(2.5, "node", "lease_expired", obj=object())  # non-JSON-native field
    assert tracer.records == []  # streamed, not accumulated
    with pytest.raises(RuntimeError):
        tracer.clear()  # a streaming sink cannot drop emitted records
    tracer.close()
    tracer.close()  # idempotent

    header, records = load_trace(path)
    assert header["format"] == "repro-trace"
    assert header["version"] == 1
    assert header["meta"] == {"seed": 7}
    assert [(r.time, r.category, r.event) for r in records] == [
        (0.5, "net", "send"),
        (2.5, "node", "lease_expired"),
    ]
    assert records[0].fields == {"kind": "ping", "n": 1}
    assert records[1].get("obj").startswith("<object object")  # repr fallback


def test_ndjson_sink_eager_header_and_lazy_default(tmp_path):
    lazy = NDJSONSink(str(tmp_path / "lazy.ndjson"))
    lazy.close()
    assert not os.path.exists(tmp_path / "lazy.ndjson")

    eager = NDJSONSink(str(tmp_path / "eager.ndjson"), eager=True)
    eager.close()
    assert read_trace_header(str(tmp_path / "eager.ndjson"))["format"] == "repro-trace"


def test_trace_reader_rejects_foreign_files_and_tolerates_torn_tail(tmp_path):
    bad = tmp_path / "bad.ndjson"
    bad.write_text("not json\n")
    with pytest.raises(ValueError):
        read_trace_header(str(bad))
    with pytest.raises(ValueError):
        list(iter_trace_file(str(bad)))

    wrong_version = tmp_path / "v9.ndjson"
    wrong_version.write_text('{"format": "repro-trace", "version": 9}\n')
    with pytest.raises(ValueError):
        read_trace_header(str(wrong_version))

    torn = tmp_path / "torn.ndjson"
    sink = NDJSONSink(str(torn))
    sink.emit(TraceRecord(time=1.0, category="c", event="e"))
    sink.close()
    with open(torn, "a", encoding="utf-8") as handle:
        handle.write('{"t": 2.0, "cat": "c"')  # interrupted final append
    assert len(list(iter_trace_file(str(torn)))) == 1

    corrupt = tmp_path / "corrupt.ndjson"
    corrupt.write_text(
        '{"format": "repro-trace", "version": 1}\ngarbage\n{"t":1,"cat":"c","ev":"e"}\n'
    )
    with pytest.raises(ValueError):
        list(iter_trace_file(str(corrupt)))


def test_trace_filename_is_sanitised_and_injective_for_cell_keys():
    assert trace_filename("frodo3~5u@0.2#1") == "frodo3_5u_0.2_1.ndjson"
    keys = ["frodo3~5u@0.0#0", "frodo3~5u@0.2#0", "upnp~100u@0.2#19"]
    assert len({trace_filename(k) for k in keys}) == len(keys)


# --------------------------------------------------------------------------- invariance
def test_observability_never_perturbs_results(tmp_path):
    baseline = ExperimentRunner().run(SPEC).to_dict()
    traced = ExperimentRunner().run(replace(SPEC, trace=True)).to_dict()
    streamed = ExperimentRunner().run(
        replace(SPEC, trace_path=str(tmp_path / "t.ndjson"))
    ).to_dict()
    assert baseline == traced == streamed


def test_trace_capture_agrees_with_message_stats(tmp_path):
    path = str(tmp_path / "cell.ndjson")
    runner = ExperimentRunner()
    context = runner.setup(replace(SPEC, trace_path=path))
    runner.execute(context)

    stats_counts = context.network.stats.counts_by_kind()
    trace_counts = kind_counts(iter_trace_file(path))
    assert trace_counts == stats_counts
    assert summarize([path])["message_kinds"] == stats_counts

    update_only = kind_counts(iter_trace_file(path), update_related=True)
    assert update_only == context.network.stats.counts_by_kind(update_related=True)


# --------------------------------------------------------------------------- counters
def test_event_queue_counters_track_hwm_cancellations_and_compaction():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(200)]
    assert queue.hwm == 200
    for event in events[:130]:
        queue.cancel(event)
    assert queue.cancelled_total == 130
    assert queue.compactions >= 1
    assert len(queue._heap) < 200  # compaction shed the dead entries


def test_run_telemetry_is_deterministic_and_consistent():
    runner = ExperimentRunner()
    context = runner.setup(SPEC)
    result = runner.execute(context)
    telemetry = result.details["telemetry"]

    assert telemetry["version"] == TELEMETRY_SCHEMA_VERSION
    engine = telemetry["engine"]
    assert engine["events_fired"] == result.details["executed_events"]
    assert engine["events_scheduled"] >= engine["events_fired"]
    assert engine["heap_hwm"] >= 1

    timers = telemetry["timers"]
    assert timers["scheduled"] > 0  # frodo arms renewal timers
    assert timers["heap_hwm"] >= 1

    net = telemetry["net"]
    stats = context.network.stats
    assert net["sends"] == len(stats)
    assert net["send_copies"] == stats.total_copies
    assert net["sends_by_layer"] == stats.counts_by_layer()
    assert sum(net["sends_by_layer"].values()) == net["sends"]
    assert net["update_sends"] == stats.update_messages()
    assert net["dropped_tx"] >= 0 and net["dropped_rx"] >= 0  # failures at 20%

    again = runner.run(SPEC).details["telemetry"]
    assert again == telemetry  # counters are pure functions of seed + spec


def test_message_stats_incremental_aggregates_match_list_scan():
    runner = ExperimentRunner()
    context = runner.setup(SPEC_B)  # upnp: multicast announcements + TCP transport
    runner.execute(context)
    stats = context.network.stats
    sent = stats.sent
    assert len(sent) > 0

    assert stats.total_sent() == len(sent)
    assert stats.total_sent(count_copies=True) == sum(m.copies for m in sent)
    assert stats.total_copies == sum(m.copies for m in sent)
    assert stats.multicast_sends == sum(1 for m in sent if m.multicast)
    for layer in (MessageLayer.DISCOVERY, MessageLayer.TRANSPORT):
        assert stats.total_sent(layer=layer) == sum(1 for m in sent if m.layer == layer)
        # The O(1) answer must equal the windowed scan from the start of time.
        assert stats.total_sent(layer=layer) == stats.total_sent(layer=layer, since=0.0)
    by_layer = {
        MessageLayer.DISCOVERY.value: stats.total_sent(layer=MessageLayer.DISCOVERY),
        MessageLayer.TRANSPORT.value: stats.total_sent(layer=MessageLayer.TRANSPORT),
    }
    assert stats.counts_by_layer() == {k: v for k, v in by_layer.items() if v}
    assert stats.update_messages() == stats.update_messages(since=0.0)
    assert stats.update_messages(include_transport=True) == stats.update_messages(
        since=0.0, include_transport=True
    )
    assert stats.update_messages(count_copies=True) == stats.update_messages(
        since=0.0, count_copies=True
    )

    stats.clear()
    assert stats.total_sent() == 0
    assert stats.total_copies == 0
    assert stats.multicast_sends == 0
    assert stats.counts_by_layer() == {}
    assert stats.update_messages(include_transport=True) == 0


# --------------------------------------------------------------------------- warm workers
def test_warm_runner_results_are_independent_of_prior_runs():
    """Satellite: a reused (warm-worker) runner must not leak state across cells."""
    warm = ExperimentRunner()
    warm.run(SPEC)  # cell k-1
    reused = warm.run(SPEC_B)  # cell k on the same runner
    fresh = ExperimentRunner().run(SPEC_B)
    assert reused.to_dict() == fresh.to_dict()  # telemetry included
    # And tracing cell k-1 must not bleed into cell k either.
    warm2 = ExperimentRunner()
    warm2.run(replace(SPEC, trace=True))
    assert warm2.run(SPEC_B).to_dict() == fresh.to_dict()


# --------------------------------------------------------------------------- progress
def test_sweep_progress_reports_throttles_and_names_slowest_cell():
    times = iter([0.0, 1.0, 1.1, 2.0, 3.0])
    out = io.StringIO()
    progress = SweepProgress(stream=out, clock=lambda: next(times), min_interval=0.25)
    progress.start(total=4, resumed=1)
    progress.cell_done("cell-a", 0.5)  # t=1.0: first fresh cell always prints
    progress.cell_done("cell-b", 2.0)  # t=1.1: throttled (0.1s since last print)
    progress.cell_done("cell-c", 1.0)  # t=2.0: final cell always prints
    progress.finish()  # t=3.0
    text = out.getvalue()
    assert "resuming, 1/4 cells" in text
    assert "progress: 2/4 cells" in text
    assert "4/4 cells" in text
    assert "cell-b" not in text.split("slowest")[0]  # its update was throttled
    assert "slowest cell cell-b at 2.000s" in text
    assert out.getvalue().count("\n") == 4


def test_progress_without_stream_is_silent_and_eta_formats():
    progress = SweepProgress(stream=None, clock=lambda: 0.0)
    progress.start(total=1)
    progress.cell_done("k")
    progress.finish()  # no stream: nothing to assert beyond "does not raise"
    assert _format_eta(59.4) == "00:59"
    assert _format_eta(61) == "01:01"
    assert _format_eta(3723) == "1:02:03"


# --------------------------------------------------------------------------- sweep integration
SWEEP_SPEC = SweepSpec(
    systems=("frodo3",),
    failure_rates=(0.0, 0.2),
    runs_per_cell=1,
    base_seed=11,
    n_users=3,
    change_time=500.0,
    deadline=1500.0,
)


def _sweep_payload(result):
    return (
        [run.to_dict() for run in result.runs],
        [summary_to_dict(summary) for summary in result.summaries],
    )


def test_sweep_with_observability_matches_plain_sweep(tmp_path):
    plain = _sweep_payload(sweep(SWEEP_SPEC))
    observed = _sweep_payload(
        sweep(
            SWEEP_SPEC,
            trace_dir=str(tmp_path / "serial"),
            progress=SweepProgress(stream=io.StringIO()),
        )
    )
    parallel = _sweep_payload(
        sweep(SWEEP_SPEC, executor=ParallelExecutor(2), trace_dir=str(tmp_path / "par"))
    )
    assert plain == observed == parallel


def test_sweep_trace_dir_writes_cell_traces_and_telemetry_journal(tmp_path):
    trace_dir = tmp_path / "out"
    result = sweep(SWEEP_SPEC, trace_dir=str(trace_dir))

    cells = SWEEP_SPEC.expand()
    for cell in cells:
        assert (trace_dir / trace_filename(cell.key)).exists()
    assert expand_trace_paths([str(trace_dir)]) == [
        str(trace_dir / trace_filename(cell.key)) for cell in sorted(cells, key=lambda c: c.key)
    ]

    journal = (trace_dir / TELEMETRY_JOURNAL).read_text().splitlines()
    header = json.loads(journal[0])
    assert header["format"] == "repro-telemetry"
    assert header["version"] == 1
    assert header["grid"] == SWEEP_SPEC.grid_dict()
    records = [json.loads(line) for line in journal[1:]]
    assert [r["key"] for r in records] == [cell.key for cell in cells]  # grid order
    for record, run in zip(records, result.runs):
        assert record["telemetry"] == run.details["telemetry"]
        assert record["wall_seconds"] > 0.0


def test_resumed_sweep_telemetry_journal_has_null_walls(tmp_path):
    checkpoint = str(tmp_path / "ck.jsonl")
    first = _sweep_payload(sweep(SWEEP_SPEC, checkpoint=checkpoint))
    trace_dir = tmp_path / "resumed"
    resumed = sweep(SWEEP_SPEC, checkpoint=checkpoint, trace_dir=str(trace_dir))
    assert _sweep_payload(resumed) == first

    journal = (trace_dir / TELEMETRY_JOURNAL).read_text().splitlines()
    records = [json.loads(line) for line in journal[1:]]
    assert records and all(r["wall_seconds"] is None for r in records)  # nothing re-ran
    assert all(r["telemetry"] is not None for r in records)  # counters survived resume
    # No cell was executed, so no per-cell trace was written.
    assert sorted(os.listdir(trace_dir)) == [TELEMETRY_JOURNAL]


# --------------------------------------------------------------------------- CLI
CLI_SCENARIO = [
    "--system",
    "frodo3",
    "--users",
    "3",
    "--change-time",
    "500",
    "--deadline",
    "1500",
]


def test_cli_run_trace_and_trace_subcommands(tmp_path, capsys):
    trace = str(tmp_path / "run.ndjson")
    out = str(tmp_path / "run.json")
    assert main(["run", *CLI_SCENARIO, "--rate", "20", "--trace", trace, "--out", out]) == 0
    assert read_trace_header(trace)["meta"]["system"] == "frodo3"

    assert main(["trace", "summarize", trace]) == 0
    summary_text = capsys.readouterr().out
    assert "records:" in summary_text
    assert "message kinds (net/send):" in summary_text

    assert main(["trace", "kinds", trace, "--update-related"]) == 0
    kinds_text = capsys.readouterr().out
    assert "frodo." in kinds_text

    assert main(["trace", "timeline", trace, "--category", "net", "--limit", "2"]) == 0
    timeline_text = capsys.readouterr().out
    assert "net/send" in timeline_text
    assert "truncated at 2 records" in timeline_text

    window = ["trace", "timeline", trace, "--since", "500", "--until", "600", "--show-source"]
    assert main(window) == 0
    assert "run.ndjson:" in capsys.readouterr().out


def test_cli_trace_errors_are_clean(tmp_path, capsys):
    assert main(["trace", "summarize", str(tmp_path / "missing.ndjson")]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["trace", "summarize", str(tmp_path)]) == 2  # empty dir: no traces
    assert "error:" in capsys.readouterr().err


def test_cli_sweep_trace_dir_and_progress(tmp_path, capsys):
    trace_dir = tmp_path / "cli-out"
    out = str(tmp_path / "sweep.json")
    argv = [
        "sweep",
        *CLI_SCENARIO,
        "--rates",
        "0,20",
        "--runs",
        "1",
        "--trace-dir",
        str(trace_dir),
        "--progress",
        "--out",
        out,
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "progress: done, 2/2 cells" in captured.err
    assert (trace_dir / TELEMETRY_JOURNAL).exists()
    assert len(list(trace_dir.glob("*.ndjson"))) == 3  # 2 cell traces + journal

    # The trace CLI reads the whole directory the sweep just wrote.
    assert main(["trace", "summarize", str(trace_dir)]) == 0
    assert "files:   2" in capsys.readouterr().out
