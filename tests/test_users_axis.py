"""The ``users`` grid axis: topology size as a first-class sweep dimension.

A sweep grid is now systems x users x failure-rates.  These tests pin

* grid expansion order (systems outermost, then users, then rates — so
  adding a topology size appends cells without renumbering existing ones),
* seed sharing across sizes: ``run_seed`` deliberately ignores N, so the
  same replication index uses the same master seed at every topology size
  (paired comparisons across N),
* cell keys and checkpoints distinguishing sizes (version-2 journals),
* the CLI's comma-separated ``--users`` list.
"""

import json

import pytest

from repro.experiments import ScenarioSpec, SweepSpec, cell_key, run_seed, sweep
from repro.experiments.sweep import CHECKPOINT_VERSION
from repro.__main__ import main

GRID = SweepSpec(
    systems=("frodo3", "upnp"),
    failure_rates=(0.0, 0.2),
    runs_per_cell=2,
    base_seed=17,
    users=(5, 100),
)


def test_users_grid_defaults_to_n_users():
    spec = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), n_users=7)
    assert spec.users_grid == (7,)
    assert [n for _, n, _ in spec.cells()] == [7]


def test_cells_iterate_systems_then_users_then_rates():
    assert GRID.cells() == [
        ("frodo3", 5, 0.0),
        ("frodo3", 5, 0.2),
        ("frodo3", 100, 0.0),
        ("frodo3", 100, 0.2),
        ("upnp", 5, 0.0),
        ("upnp", 5, 0.2),
        ("upnp", 100, 0.0),
        ("upnp", 100, 0.2),
    ]
    assert GRID.total_runs == 16


def test_expand_carries_topology_size_into_scenarios():
    cells = GRID.expand()
    assert len(cells) == GRID.total_runs
    sizes = {cell.scenario.n_users for cell in cells}
    assert sizes == {5, 100}
    for cell in cells:
        assert cell.n_users == cell.scenario.n_users


def test_run_seed_is_shared_across_topology_sizes():
    """Same (system, rate, index) -> same master seed at every N: scaling
    curves are paired comparisons, not re-randomised experiments."""
    small = GRID.scenario("frodo3", 0.2, 1, n_users=5)
    large = GRID.scenario("frodo3", 0.2, 1, n_users=100)
    assert small.seed == large.seed == run_seed(17, "frodo3", 0.2, 1)
    assert small.n_users == 5 and large.n_users == 100


def test_cell_keys_distinguish_topology_sizes():
    assert cell_key("frodo3", 0.2, 1, n_users=5) != cell_key("frodo3", 0.2, 1, n_users=100)
    keys = {cell.key for cell in GRID.expand()}
    assert len(keys) == GRID.total_runs


def test_duplicate_or_invalid_users_rejected():
    with pytest.raises(ValueError):
        SweepSpec(systems=("frodo3",), failure_rates=(0.0,), users=(5, 5)).validate()
    with pytest.raises(ValueError):
        SweepSpec(systems=("frodo3",), failure_rates=(0.0,), users=(0,)).validate()


def test_grid_dict_records_the_users_axis():
    grid = GRID.grid_dict()
    assert grid["users"] == [5, 100]
    assert CHECKPOINT_VERSION == 5


def test_summaries_follow_cell_order_and_carry_n_users():
    spec = SweepSpec(
        systems=("frodo3",),
        failure_rates=(0.0,),
        runs_per_cell=1,
        base_seed=17,
        users=(5, 100),
    )
    result = sweep(spec)
    assert [(s.system, s.n_users, s.failure_rate) for s in result.summaries] == [
        ("frodo3", 5, 0.0),
        ("frodo3", 100, 0.0),
    ]
    # Per-size filtering of runs.
    assert [run.n_users for run in result.cell_runs("frodo3", 0.0, n_users=100)] == [100]
    assert result.summary_for("frodo3", 0.0, n_users=5).n_users == 5


def test_checkpoints_from_different_users_grids_do_not_mix(tmp_path):
    from repro.experiments import CheckpointMismatchError, load_checkpoint, save_checkpoint

    small = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), users=(5,))
    large = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), users=(5, 100))
    ck = tmp_path / "ck.jsonl"
    save_checkpoint(str(ck), small, {})
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(ck), large)


def test_cli_users_list_sweeps_topology_sizes(tmp_path):
    out = tmp_path / "out.json"
    argv = [
        "sweep",
        "--system",
        "frodo3",
        "--rates",
        "0",
        "--runs",
        "1",
        "--users",
        "5,100",
        "--out",
        str(out),
    ]
    assert main(argv) == 0
    data = json.loads(out.read_text())
    assert data["spec"]["users"] == [5, 100]
    assert [s["n_users"] for s in data["summaries"]] == [5, 100]
    assert all(s["effectiveness"] == 1.0 for s in data["summaries"])


def test_cli_rejects_bad_users_values(capsys):
    # argparse type errors exit with status 2 before the command runs.
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--system", "frodo3", "--users", "0"])
    assert excinfo.value.code == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_scenario_n_users_validation():
    with pytest.raises(ValueError):
        ScenarioSpec(system="frodo3", failure_rate=0.0, seed=1, n_users=0).validate()
