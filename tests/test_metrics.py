"""Hand-computed fixtures for the Update Metrics (Section 4.5)."""

import pytest

from repro.core.metrics import (
    MetricSummary,
    RunResult,
    effectiveness,
    efficiency_degradation,
    responsiveness,
    update_efficiency,
)
from repro.net.addressing import MULTICAST_GROUP
from repro.net.messages import Message, MessageLayer
from repro.net.stats import MessageStats


def make_run(update_times, y=7, system="frodo3", rate=0.0, change=100.0, deadline=200.0):
    return RunResult(
        system=system,
        failure_rate=rate,
        seed=0,
        change_time=change,
        deadline=deadline,
        user_update_times=update_times,
        update_message_count=y,
    )


def test_latencies_hand_computed():
    # Change at 100, deadline at 200 -> window of 100 s.
    run = make_run({"u1": 125.0, "u2": 150.0, "u3": None})
    # L = (U - C) / (D - C): 0.25, 0.5, and 1.0 for the never-updated user.
    assert run.latencies() == [0.25, 0.5, 1.0]
    assert run.users_updated() == 2


def test_update_at_deadline_counts_as_miss():
    run = make_run({"u1": 200.0})
    assert run.latencies() == [1.0]
    assert run.users_updated() == 0


def test_responsiveness_is_median_of_one_minus_latency():
    run = make_run({"u1": 125.0, "u2": 150.0, "u3": None})
    # 1 - L values: 0.75, 0.5, 0.0 -> median 0.5.
    assert responsiveness([run]) == 0.5


def test_effectiveness_is_fraction_updated_before_deadline():
    runs = [
        make_run({"u1": 120.0, "u2": None}),
        make_run({"u1": 130.0, "u2": 180.0}),
    ]
    assert effectiveness(runs) == pytest.approx(3 / 4)


def test_update_efficiency_mean_of_capped_ratio():
    # m = 7; y = 14 and y = 7 -> ratios 0.5 and 1.0 -> mean 0.75.
    runs = [make_run({"u1": 120.0}, y=14), make_run({"u1": 120.0}, y=7)]
    assert update_efficiency(runs) == pytest.approx(0.75)


def test_update_efficiency_conventions():
    # y = 0 (no update messages at all) contributes 0, not a division error;
    # y < m is capped at 1 so partial propagation cannot beat the baseline.
    runs = [make_run({"u1": None}, y=0), make_run({"u1": 120.0}, y=3)]
    assert update_efficiency(runs) == pytest.approx((0.0 + 1.0) / 2)


def test_efficiency_degradation_uses_system_m_prime():
    runs = [make_run({"u1": 120.0}, y=20)]
    assert efficiency_degradation(runs, m_prime=10) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        efficiency_degradation(runs, m_prime=0)


def test_efficiency_degradation_y_zero_contributes_zero():
    # A run whose Manager was cut off for the whole propagation window sends
    # no update messages at all: its contribution is 0, not a ZeroDivisionError.
    runs = [make_run({"u1": None}, y=0), make_run({"u1": 120.0}, y=10)]
    assert efficiency_degradation(runs, m_prime=10) == pytest.approx((0.0 + 1.0) / 2)


def test_efficiency_degradation_capped_at_one():
    # y < m' (e.g. a lucky run with fewer messages than the baseline) must not
    # look *better* than failure-free: the ratio is capped at 1.
    runs = [make_run({"u1": 120.0}, y=3)]
    assert efficiency_degradation(runs, m_prime=7) == 1.0
    assert update_efficiency(runs) == 1.0


# --------------------------------------------------------------------------- message accounting
def _multicast(kind="msearch", protocol="upnp", update_related=True):
    return Message(
        sender="a",
        receiver=MULTICAST_GROUP,
        protocol=protocol,
        kind=kind,
        update_related=update_related,
    )


def test_redundant_multicast_counts_once_logically():
    # Rule 4 (EXPERIMENTS.md): a logical multicast transmitted as 6 redundant
    # copies (UPnP/Jini, Table 3) counts once towards y; the copies remain
    # visible through count_copies=True.
    stats = MessageStats()
    stats.record_send(10.0, _multicast(), copies=6)
    assert stats.update_messages() == 1
    assert stats.update_messages(count_copies=True) == 6
    assert stats.total_sent(layer=MessageLayer.DISCOVERY) == 1
    assert stats.total_sent(count_copies=True) == 6


def test_unicast_messages_count_per_attempt():
    # The unicast rule: every attempt that leaves the transmitter is one
    # message — there is no copy collapsing for unicast sends.
    stats = MessageStats()
    for _ in range(3):
        stats.record_send(
            10.0,
            Message(
                sender="a",
                receiver="b",
                protocol="jini",
                kind="service_update",
                update_related=True,
            ),
        )
    assert stats.update_messages() == 3
    assert stats.update_messages(count_copies=True) == 3


def test_transport_layer_excluded_from_update_count():
    # TCP segments are transport overhead: excluded from y (Table 2's note for
    # the UPnP/Jini models) but reported separately.
    stats = MessageStats()
    stats.record_send(
        5.0,
        Message(
            sender="a", receiver="b", protocol="jini", kind="service_update", update_related=True
        ),
    )
    stats.record_send(
        5.0,
        Message(
            sender="a",
            receiver="b",
            protocol="jini",
            kind="tcp_data_retransmit",
            update_related=True,
            layer=MessageLayer.TRANSPORT,
        ),
    )
    assert stats.update_messages() == 1
    assert stats.update_messages(include_transport=True) == 2
    assert stats.transport_overhead() == 1


def test_metric_summary_from_runs():
    runs = [
        make_run({"u1": 125.0, "u2": 150.0}, y=7),
        make_run({"u1": 150.0, "u2": None}, y=14),
    ]
    summary = MetricSummary.from_runs(runs, m_prime=7)
    assert summary.system == "frodo3"
    assert summary.runs == 2
    # Latencies: 0.25, 0.5, 0.5, 1.0 -> 1-L: 0.75, 0.5, 0.5, 0.0 -> median 0.5.
    assert summary.responsiveness == 0.5
    assert summary.effectiveness == pytest.approx(3 / 4)
    assert summary.update_efficiency == pytest.approx((1.0 + 0.5) / 2)
    assert summary.mean_update_messages == pytest.approx(10.5)


def test_metric_summary_rejects_mixed_cells():
    runs = [make_run({"u1": 120.0}), make_run({"u1": 120.0}, rate=0.2)]
    with pytest.raises(ValueError):
        MetricSummary.from_runs(runs, m_prime=7)
