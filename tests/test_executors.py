"""Executor layer: serial fallback, process-pool parallelism, ordered output.

The contract (EXPERIMENTS.md "Parallel execution") is that the executor only
decides *where* cells run: aggregated sweep output is byte-identical whether
cells ran serially, on a process pool, or resumed from a checkpoint.
"""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ParallelExecutor,
    ScenarioSpec,
    SerialExecutor,
    SweepSpec,
    make_executor,
    sweep,
)
from repro.experiments.report import sweep_to_dict, to_json
from repro.net.network import NetworkConfig
from repro.protocols.registry import DeploymentRegistry
from repro.__main__ import main


def _sweep_json(spec, **kwargs):
    return to_json(sweep_to_dict(sweep(spec, **kwargs), include_runs=True))


def test_make_executor_jobs_one_falls_back_to_serial():
    assert isinstance(make_executor(1), SerialExecutor)
    assert isinstance(make_executor(2), ParallelExecutor)
    assert make_executor(4).jobs == 4
    with pytest.raises(ValueError):
        make_executor(0)
    with pytest.raises(ValueError):
        ParallelExecutor(1)


def test_serial_executor_preserves_submission_order():
    scenarios = [
        ScenarioSpec(system="frodo3", failure_rate=rate, seed=index)
        for index, rate in enumerate((0.0, 0.2))
    ]
    seen = []
    results = SerialExecutor().run_scenarios(
        scenarios, on_result=lambda index, result: seen.append(index)
    )
    assert seen == [0, 1]
    assert [result.failure_rate for result in results] == [0.0, 0.2]
    assert [result.seed for result in results] == [0, 1]


def test_parallel_sweep_byte_identical_to_serial_multi_system_grid():
    spec = SweepSpec(
        systems=("frodo3", "upnp", "jini1"),
        failure_rates=(0.0, 0.2),
        runs_per_cell=2,
        base_seed=23,
    )
    serial = _sweep_json(spec)
    parallel = _sweep_json(spec, executor=ParallelExecutor(2))
    assert parallel == serial


def test_parallel_executor_rejects_customised_runner_without_spec():
    private = DeploymentRegistry()
    with pytest.raises(ValueError, match="RunnerSpec"):
        ParallelExecutor(2).run_scenarios([], runner=ExperimentRunner(private))
    tweaked = ExperimentRunner(network_config=NetworkConfig())
    with pytest.raises(ValueError, match="RunnerSpec"):
        ParallelExecutor(2).run_scenarios([], runner=tweaked)
    # make_executor must carry the runner into the guard, not drop it.
    carried = make_executor(2, ExperimentRunner(private))
    with pytest.raises(ValueError, match="RunnerSpec"):
        carried.run_scenarios([])

    # An instrumented runner subclass would be silently replaced by the
    # default runner inside the workers, so the guard rejects it too.
    class InstrumentedRunner(ExperimentRunner):
        pass

    with pytest.raises(ValueError, match="RunnerSpec"):
        ParallelExecutor(2).run_scenarios([], runner=InstrumentedRunner())


def test_parallel_executor_empty_submission_returns_empty():
    assert ParallelExecutor(2).run_scenarios([]) == []


def test_cli_jobs_flag_is_byte_identical_to_serial(tmp_path):
    out_serial = tmp_path / "serial.json"
    out_parallel = tmp_path / "parallel.json"
    argv = ["sweep", "--system", "frodo3,upnp", "--rates", "0,20", "--runs", "2", "--per-run"]
    assert main(argv + ["--jobs", "1", "--out", str(out_serial)]) == 0
    assert main(argv + ["--jobs", "2", "--out", str(out_parallel)]) == 0
    assert out_serial.read_bytes() == out_parallel.read_bytes()
