"""RunnerSpec: picklable registry recipes that lift the old --jobs 1 limit.

Before the warm-worker executor, a sweep over a customised
:class:`~repro.protocols.registry.DeploymentRegistry` had to run serially —
deployment builders are closures and cannot be pickled into pool workers.  A
:class:`~repro.experiments.runner.RunnerSpec` ships an importable
``"module:attr"`` reference instead; these tests pin the resolution rules
and prove the parallel path now produces byte-identical output for a
customised registry too.
"""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ParallelExecutor,
    RunnerSpec,
    SweepSpec,
    make_executor,
    sweep,
)
from repro.experiments.report import sweep_to_dict, to_json
from repro.net.network import NetworkConfig
from repro.protocols.registry import DeploymentRegistry

from registry_fixtures import subset_registry

CUSTOM_SPEC = SweepSpec(
    systems=("frodo3", "upnp"),
    failure_rates=(0.0, 0.2),
    runs_per_cell=2,
    base_seed=41,
)


def _sweep_json(spec, **kwargs):
    return to_json(sweep_to_dict(sweep(spec, **kwargs), include_runs=True))


# ----------------------------------------------------------------- resolution
def test_resolve_factory_builds_a_runner():
    spec = RunnerSpec(registry_ref="registry_fixtures:subset_registry")
    runner = spec.resolve()
    assert isinstance(runner, ExperimentRunner)
    assert runner.registry.names() == ["frodo3", "upnp"]


def test_resolve_factory_forwards_options():
    spec = RunnerSpec(
        registry_ref="registry_fixtures:subset_registry",
        registry_options={"systems": ("jini1",)},
    )
    assert spec.resolve().registry.names() == ["jini1"]


def test_resolve_accepts_registry_instances():
    spec = RunnerSpec(registry_ref="registry_fixtures:FIXED_REGISTRY")
    assert spec.resolve().registry.names() == ["frodo3", "upnp"]


def test_resolve_default_ref_is_the_standard_registry():
    from repro.protocols.registry import SYSTEMS

    assert RunnerSpec().resolve().registry is SYSTEMS


def test_resolve_carries_network_config():
    config = NetworkConfig()
    runner = RunnerSpec(network_config=config).resolve()
    assert runner.network_config is config


def test_resolve_rejects_bad_references():
    with pytest.raises(ValueError, match="module:attribute"):
        RunnerSpec(registry_ref="no-colon").resolve()
    with pytest.raises(ValueError, match="registry_options"):
        RunnerSpec(
            registry_ref="registry_fixtures:FIXED_REGISTRY",
            registry_options={"x": 1},
        ).resolve()
    with pytest.raises(TypeError, match="neither"):
        RunnerSpec(registry_ref="registry_fixtures:NOT_A_REGISTRY").resolve()
    with pytest.raises(ModuleNotFoundError):
        RunnerSpec(registry_ref="no.such.module:thing").resolve()


# ------------------------------------------------- parallel customised sweeps
def test_customised_registry_runs_in_parallel_byte_identically():
    """The headline: a customised registry no longer needs --jobs 1."""
    runner_spec = RunnerSpec(registry_ref="registry_fixtures:subset_registry")
    serial = _sweep_json(CUSTOM_SPEC, runner=runner_spec.resolve())
    parallel = _sweep_json(
        CUSTOM_SPEC,
        executor=ParallelExecutor(2, runner_spec=runner_spec),
    )
    assert parallel == serial


def test_make_executor_resolves_spec_for_serial_jobs():
    executor = make_executor(
        1, runner_spec=RunnerSpec(registry_ref="registry_fixtures:subset_registry")
    )
    assert executor.jobs == 1
    assert executor.runner is not None
    assert executor.runner.registry.names() == ["frodo3", "upnp"]


def test_explicit_spec_overrides_the_customised_runner_guard():
    """Passing both a customised runner and a spec: the spec wins (it is the
    picklable recipe for exactly that runner)."""
    registry = subset_registry()
    executor = ParallelExecutor(
        2,
        runner=ExperimentRunner(registry),
        runner_spec=RunnerSpec(registry_ref="registry_fixtures:subset_registry"),
    )
    results = executor.run_scenarios([cell.scenario for cell in CUSTOM_SPEC.expand()[:2]])
    assert len(results) == 2


def test_customised_runner_without_spec_still_rejected():
    private = DeploymentRegistry()
    with pytest.raises(ValueError, match="RunnerSpec"):
        ParallelExecutor(2).run_scenarios([], runner=ExperimentRunner(private))
