"""Importable registry factories for the RunnerSpec parallel-execution tests.

A :class:`~repro.experiments.runner.RunnerSpec` ships a ``"module:attr"``
reference to pool workers, so the referenced factory must live in a real
importable module — closures defined inside a test function cannot cross
process boundaries.  pytest puts this directory on ``sys.path`` (no package
``__init__``), so workers resolve ``"registry_fixtures:..."`` the same way
the parent process does.
"""

from repro.protocols.registry import SYSTEMS, DeploymentRegistry


def subset_registry(systems=("frodo3", "upnp")):
    """A customised registry exposing only ``systems`` from the standard set."""
    registry = DeploymentRegistry()
    for name in systems:
        entry = SYSTEMS.get(name)
        registry.register(
            name,
            entry.builder,
            m_prime=entry.m_prime,
            description=entry.description,
        )
    return registry


#: A plain registry *instance* (RunnerSpec also accepts non-factory targets).
FIXED_REGISTRY = subset_registry()

#: Not a registry or factory — exercises RunnerSpec's type validation.
NOT_A_REGISTRY = object()
