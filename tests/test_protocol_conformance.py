"""Cross-system conformance battery.

Every system registered in :data:`repro.protocols.registry.SYSTEMS` must obey
the shared invariants of the experiment, whatever its protocol model does
internally:

* at 0 % failures: every User reaches version 2 before the deadline,
  effectiveness is 1.0, and the measured update-message count *y* equals the
  system's declared m′ (Efficiency Degradation = 1.0);
* no update-related message sent before the change time is counted;
* the ``update_related`` tagging of every discovery-layer message matches the
  protocol's declaration in :mod:`repro.protocols.accounting`;
* the declared m′ agrees with the Table 2 closed forms and the recovery-
  technique profiles in :mod:`repro.core.recovery`;
* efficiency ratios never exceed 1, at any failure rate.

The battery parametrises over ``SYSTEMS.names()``: registering a new system
automatically subjects it to every invariant here.
"""

import pytest

from repro.core.metrics import MetricSummary, PAPER_GLOBAL_MINIMUM_MESSAGES
from repro.core.recovery import PROTOCOL_PROFILES, expected_update_messages
from repro.experiments import ExperimentRunner, ScenarioSpec, SweepSpec, sweep
from repro.net.messages import MessageLayer
from repro.protocols.accounting import update_related_kinds
from repro.protocols.registry import SYSTEMS

ALL_SYSTEMS = SYSTEMS.names()

#: Registry name -> (recovery-profile key, Table 2 closed-form arguments).
TABLE2_FORMS = {
    "frodo2": ("frodo2", {"system": "frodo", "registries": 1}),
    "frodo3": ("frodo3", {"system": "frodo", "registries": 1}),
    "upnp": ("upnp", {"system": "upnp", "registries": 1}),
    "jini1": ("jini1", {"system": "jini", "registries": 1}),
    "jini2": ("jini2", {"system": "jini", "registries": 2}),
    # The parameterised family defaults to k=1, the paper's jini1 profile.
    "jini": ("jini1", {"system": "jini", "registries": 1}),
}

_zero_runs = {}


def zero_failure_run(system):
    """One shared zero-failure run (result + full context) per system."""
    if system not in _zero_runs:
        runner = ExperimentRunner()
        context = runner.setup(ScenarioSpec(system=system, failure_rate=0.0, seed=1234))
        result = runner.execute(context)
        _zero_runs[system] = (result, context)
    return _zero_runs[system]


def test_paper_comparison_systems_are_registered():
    assert set(ALL_SYSTEMS) >= {"frodo2", "frodo3", "upnp", "jini1", "jini2"}


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_zero_failure_baseline_hits_m_prime(system):
    result, context = zero_failure_run(system)
    m_prime = SYSTEMS.get(system).m_prime_at(5)
    # The registry metadata and the deployment must agree on m'.
    assert context.deployment.m_prime == m_prime
    # y = m' exactly: the declared baseline is the measured baseline.
    assert result.update_message_count == m_prime
    assert sum(result.details["update_counts_by_kind"].values()) == m_prime


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_zero_failure_users_all_consistent_before_deadline(system):
    result, _ = zero_failure_run(system)
    assert result.n_users == 5
    assert result.details["changed_version"] == 2
    for when in result.user_update_times.values():
        assert when is not None
        assert result.change_time <= when < result.deadline


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_zero_failure_metrics_are_perfect(system):
    result, _ = zero_failure_run(system)
    summary = MetricSummary.from_runs([result], m_prime=SYSTEMS.get(system).m_prime_at(5))
    assert summary.effectiveness == 1.0
    assert summary.efficiency_degradation == 1.0
    assert summary.responsiveness > 0.999
    if SYSTEMS.get(system).m_prime_at(5) == PAPER_GLOBAL_MINIMUM_MESSAGES:
        assert summary.update_efficiency == 1.0


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_no_update_messages_counted_before_change(system):
    result, context = zero_failure_run(system)
    records = context.network.stats.sent
    counted = [
        rec
        for rec in records
        if rec.update_related
        and rec.layer is MessageLayer.DISCOVERY
        and rec.time >= result.change_time
    ]
    assert len(counted) == result.update_message_count
    # Initial discovery does send update-related messages (registrations,
    # queries, responses) — they exist but fall outside the counting window.
    early = [
        rec
        for rec in records
        if rec.update_related
        and rec.layer is MessageLayer.DISCOVERY
        and rec.time < result.change_time
    ]
    assert early, f"{system}: expected update-related discovery traffic before the change"


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_update_tagging_matches_protocol_declaration(system):
    _, context = zero_failure_run(system)
    for rec in context.network.stats.sent:
        if rec.layer is not MessageLayer.DISCOVERY:
            continue
        declared = rec.kind in update_related_kinds(rec.protocol)
        assert rec.update_related == declared, (
            f"{system}: {rec.protocol}.{rec.kind} tagged update_related={rec.update_related} "
            f"but the protocol declaration says {declared}"
        )


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_declared_m_prime_matches_paper_tables(system):
    profile_key, form = TABLE2_FORMS[system]
    entry = SYSTEMS.get(system)
    assert entry.m_prime_at(5) == PROTOCOL_PROFILES[profile_key].m_prime
    assert entry.m_prime_at(5) == expected_update_messages(n_users=5, **form)


@pytest.mark.parametrize(
    "system,n_users,expected_m_prime",
    [("upnp", 3, 9), ("jini2", 3, 10), ("frodo3", 8, 10)],
)
def test_m_prime_scales_with_topology_size(system, n_users, expected_m_prime):
    # The registry's m' documents the N=5 topology; a sweep with a different
    # --users must stay calibrated to the deployment's own closed form.
    spec = SweepSpec(
        systems=(system,),
        failure_rates=(0.0,),
        runs_per_cell=1,
        n_users=n_users,
        base_seed=21,
    )
    result = sweep(spec)
    (summary,) = result.summaries
    assert result.runs[0].details["m_prime"] == expected_m_prime
    assert result.runs[0].update_message_count == expected_m_prime
    assert summary.effectiveness == 1.0
    assert summary.efficiency_degradation == 1.0


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_efficiency_ratios_never_exceed_one(system):
    spec = SweepSpec(
        systems=(system,), failure_rates=(0.0, 0.3), runs_per_cell=2, base_seed=77
    )
    result = sweep(spec)
    m_prime = SYSTEMS.get(system).m_prime_at(5)
    for summary in result.summaries:
        assert 0.0 <= summary.update_efficiency <= 1.0
        assert 0.0 <= summary.efficiency_degradation <= 1.0
    for run in result.runs:
        y = run.update_message_count
        ratio = 0.0 if y <= 0 else min(1.0, m_prime / y)
        assert ratio <= 1.0
