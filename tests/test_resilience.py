"""Fault-tolerant sweep execution: timeouts, retries, quarantine, recovery.

The invariant under test throughout: however bumpy the execution — retried
cells, poisoned cells quarantined under a failure budget, workers killed
mid-sweep, a Ctrl-C — the cells that *do* complete are byte-identical to an
undisturbed serial sweep, and an interrupted/degraded sweep plus a resume
converges to exactly the undisturbed output.
"""

import json
import signal
import threading
import time

import pytest

from repro.experiments import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    FailureBudgetExceededError,
    InjectedFaultError,
    ParallelExecutor,
    PoolRecoveryError,
    ResiliencePolicy,
    SerialExecutor,
    SweepSpec,
    load_checkpoint,
    sweep,
)
from repro.experiments.report import sweep_to_dict, to_json
from repro.experiments.resilience import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    cell_deadline,
    parse_fault_directives,
    run_cell_guarded,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenario import ScenarioSpec
from repro.__main__ import main

SPEC = SweepSpec(
    systems=("frodo3",),
    failure_rates=(0.0, 0.2),
    runs_per_cell=2,
    base_seed=7,
)

#: The third cell of SPEC's expansion (grid order: 0.0#0, 0.0#1, 0.2#0, 0.2#1).
POISON_KEY = "frodo3~5u@0.2#0"


def _sweep_json(spec, **kwargs):
    return to_json(sweep_to_dict(sweep(spec, **kwargs), include_runs=True))


class _FlakyRunner:
    """Fails the first ``failures`` calls, then delegates to a real runner."""

    def __init__(self, failures, exc=None):
        self.failures = failures
        self.exc = exc or RuntimeError("transient")
        self.calls = 0
        self._real = ExperimentRunner()

    def run(self, scenario):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self._real.run(scenario)


# --------------------------------------------------------------------------- policy
def test_policy_validation_rejects_bad_values():
    assert ResiliencePolicy().validate() == ResiliencePolicy()
    for bad in (
        ResiliencePolicy(cell_timeout=0.0),
        ResiliencePolicy(cell_timeout=-1.0),
        ResiliencePolicy(max_retries=-1),
        ResiliencePolicy(retry_backoff=-0.1),
        ResiliencePolicy(max_cell_failures=-1),
        ResiliencePolicy(max_pool_rebuilds=-1),
    ):
        with pytest.raises(ValueError):
            bad.validate()


def test_parse_fault_directives():
    assert parse_fault_directives("kill:frodo3~5u@0.2#1;poison:upnp") == [
        ("kill", "frodo3~5u@0.2#1"),
        ("poison", "upnp"),
    ]
    assert parse_fault_directives("") == []
    for bad in ("explode:x", "kill:", "justakey"):
        with pytest.raises(ValueError, match=FAULT_ENV):
            parse_fault_directives(bad)


# --------------------------------------------------------------------------- guarded runs
def test_retry_recovers_and_is_byte_identical_to_first_try():
    scenario = ScenarioSpec(system="frodo3", failure_rate=0.2, seed=3)
    clean = ExperimentRunner().run(scenario)
    flaky = _FlakyRunner(failures=2)
    policy = ResiliencePolicy(max_retries=2, retry_backoff=0.0)
    result, attempts = run_cell_guarded(flaky, scenario, "k", policy)
    assert attempts == 3
    # Determinism rule: a retried cell equals a first-try cell exactly —
    # every attempt rebuilds the stack from the cell's own seed, so retries
    # consume no scenario RNG and leave no trace in the result.
    assert result == clean


def test_exhausted_retries_raise_typed_cell_execution_error():
    flaky = _FlakyRunner(failures=99, exc=InjectedFaultError("boom"))
    scenario = ScenarioSpec(system="frodo3", failure_rate=0.0, seed=0)
    policy = ResiliencePolicy(max_retries=1, retry_backoff=0.0)
    with pytest.raises(CellExecutionError) as excinfo:
        run_cell_guarded(flaky, scenario, "the-key", policy)
    assert excinfo.value.key == "the-key"
    assert excinfo.value.attempts == 2
    failure = excinfo.value.failure()
    assert failure.error == "InjectedFaultError"
    assert failure.message == "boom"
    assert CellFailure.from_dict(failure.to_dict()) == failure


def test_keyboard_interrupt_is_never_retried():
    flaky = _FlakyRunner(failures=99, exc=KeyboardInterrupt())
    scenario = ScenarioSpec(system="frodo3", failure_rate=0.0, seed=0)
    with pytest.raises(KeyboardInterrupt):
        run_cell_guarded(
            flaky, scenario, "k", ResiliencePolicy(max_retries=5, retry_backoff=0.0)
        )
    assert flaky.calls == 1


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs SIGALRM")
def test_cell_deadline_times_out_and_restores_handler():
    previous = signal.getsignal(signal.SIGALRM)
    with pytest.raises(CellTimeoutError, match="0.05"):
        with cell_deadline(0.05):
            time.sleep(5.0)
    assert signal.getsignal(signal.SIGALRM) is previous


def test_cell_deadline_is_inert_off_the_main_thread():
    outcome = {}

    def body():
        with cell_deadline(0.01):
            time.sleep(0.05)
        outcome["ok"] = True

    worker = threading.Thread(target=body)
    worker.start()
    worker.join()
    assert outcome.get("ok")  # unguarded, not crashed


# --------------------------------------------------------------------------- quarantine
def test_serial_executor_routes_failures_to_on_error(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    cells = SPEC.expand()
    scenarios = [cell.scenario for cell in cells]
    keys = [cell.key for cell in cells]
    executor = SerialExecutor()
    errors = []
    results = executor.run_scenarios(
        scenarios,
        keys=keys,
        on_error=lambda index, failure: errors.append((index, failure)),
    )
    assert len(results) == len(cells) - 1
    assert [(index, failure.key) for index, failure in errors] == [(2, POISON_KEY)]
    assert errors[0][1].error == "InjectedFaultError"
    assert executor.last_stats.failed_cells == 1
    # Legacy contract without on_error: the cell's own exception propagates.
    with pytest.raises(InjectedFaultError):
        executor.run_scenarios(scenarios, keys=keys)


def test_sweep_quarantines_within_budget_and_resume_fills_the_gap(
    tmp_path, monkeypatch
):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    policy = ResiliencePolicy(max_cell_failures=1)
    result = sweep(SPEC, checkpoint=str(ck), policy=policy)
    # The poisoned cell is an explicit gap, not an abort and not a fake row.
    assert [failure.key for failure in result.failures] == [POISON_KEY]
    assert len(result.runs) == SPEC.total_runs - 1
    assert len(result.summaries) == 2  # the 0.2 summary is built from 1 run
    data = sweep_to_dict(result, include_runs=True)
    assert data["failures"][0]["key"] == POISON_KEY
    # The journal carries a typed cell_error record; the cell stays pending.
    errors = []
    completed = load_checkpoint(str(ck), SPEC, errors_out=errors)
    assert POISON_KEY not in completed
    assert [failure.key for failure in errors] == [POISON_KEY]
    raw = [json.loads(line) for line in ck.read_text().splitlines()[1:]]
    assert any("cell_error" in record for record in raw)
    # Resume with the fault gone: only the gap is re-run, and the final
    # output is byte-identical to a sweep that never saw a fault.
    monkeypatch.delenv(FAULT_ENV)
    executed = []
    resumed = _sweep_json(
        SPEC, checkpoint=str(ck), observer=lambda run: executed.append(run)
    )
    assert len(executed) == 1
    assert resumed == baseline


def test_sweep_aborts_past_the_failure_budget(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    ck = tmp_path / "ck.jsonl"
    with pytest.raises(FailureBudgetExceededError, match="--max-cell-failures"):
        sweep(SPEC, checkpoint=str(ck))  # default budget: 0
    # Cells completed before the abort are checkpointed all the same.
    assert len(load_checkpoint(str(ck), SPEC)) == 2


def test_sweep_retry_heals_a_once_only_fault(tmp_path, monkeypatch):
    baseline = _sweep_json(SPEC)
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path / "faults"))
    executor = SerialExecutor()
    healed = _sweep_json(
        SPEC, executor=executor, policy=ResiliencePolicy(max_retries=1)
    )
    assert healed == baseline
    assert executor.last_stats.retried_cells == 1
    assert executor.last_stats.attempts[POISON_KEY] == 2


# --------------------------------------------------------------------------- worker death
def test_killed_worker_is_recovered_and_output_is_byte_identical(
    tmp_path, monkeypatch
):
    baseline = _sweep_json(SPEC)
    monkeypatch.setenv(FAULT_ENV, f"kill:{POISON_KEY}")
    monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path / "faults"))
    executor = ParallelExecutor(2)
    survived = _sweep_json(SPEC, executor=executor)
    assert survived == baseline
    assert executor.last_stats.pool_rebuilds >= 1


def test_repeatedly_dying_worker_exhausts_the_rebuild_cap(monkeypatch):
    # No state dir: the kill directive fires on *every* attempt, so every
    # rebuilt pool dies again until the cap trips.
    monkeypatch.setenv(FAULT_ENV, f"kill:{POISON_KEY}")
    with pytest.raises(PoolRecoveryError, match="rebuild cap"):
        sweep(
            SPEC,
            executor=ParallelExecutor(2),
            policy=ResiliencePolicy(max_pool_rebuilds=1),
        )


# --------------------------------------------------------------------------- interrupts
def test_keyboard_interrupt_flushes_completed_cells_to_checkpoint(
    tmp_path, monkeypatch
):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    real_run = ExperimentRunner.run

    def interruptible(self, scenario):
        if scenario.failure_rate == 0.2:
            raise KeyboardInterrupt
        return real_run(self, scenario)

    monkeypatch.setattr(ExperimentRunner, "run", interruptible)
    with pytest.raises(KeyboardInterrupt):
        sweep(SPEC, checkpoint=str(ck))
    # Both rate-0 cells finished before the interrupt and were flushed.
    assert sorted(load_checkpoint(str(ck), SPEC)) == [
        "frodo3~5u@0.0#0",
        "frodo3~5u@0.0#1",
    ]
    monkeypatch.setattr(ExperimentRunner, "run", real_run)
    assert _sweep_json(SPEC, checkpoint=str(ck)) == baseline


def test_cli_sigint_prints_the_exact_resume_command(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.__main__.sweep", lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt())
    )
    ck = tmp_path / "ck.jsonl"
    argv = [
        "sweep", "--system", "frodo3", "--rates", "0,20", "--runs", "2",
        "--resume", str(ck), "--out", str(tmp_path / "out.json"),
    ]
    assert main(argv) == 130
    err = capsys.readouterr().err
    assert "python -m repro sweep" in err
    assert f"--resume {ck}" in err  # re-running the printed command resumes


def test_cli_sigint_without_checkpoint_says_progress_is_lost(monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.__main__.sweep", lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt())
    )
    assert main(["sweep", "--system", "frodo3", "--rates", "0", "--runs", "1"]) == 130
    assert "progress is lost" in capsys.readouterr().err


# --------------------------------------------------------------------------- CLI exits
def test_cli_partial_results_exit_3_with_explicit_gaps(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    out = tmp_path / "out.json"
    argv = [
        "sweep", "--system", "frodo3", "--rates", "0,20", "--runs", "2",
        "--seed", "7", "--max-cell-failures", "1", "--per-run", "--out", str(out),
    ]
    assert main(argv) == 3
    err = capsys.readouterr().err
    assert "quarantined" in err and POISON_KEY in err
    data = json.loads(out.read_text())
    assert [failure["key"] for failure in data["failures"]] == [POISON_KEY]
    assert len(data["runs"]) == 3


def test_cli_budget_exhaustion_is_a_clean_error(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(FAULT_ENV, "poison:frodo3")  # poisons every frodo3 cell
    argv = [
        "sweep", "--system", "frodo3", "--rates", "0", "--runs", "2",
        "--max-cell-failures", "1", "--out", str(tmp_path / "out.json"),
    ]
    assert main(argv) == 2
    assert "failure budget" in capsys.readouterr().err


def test_cli_rejects_inconsistent_policy(capsys):
    argv = ["sweep", "--system", "frodo3", "--rates", "0", "--cell-timeout", "0"]
    assert main(argv) == 2
    assert "cell_timeout" in capsys.readouterr().err


# --------------------------------------------------------------------------- degraded observability
def test_ndjson_sink_degrades_to_null_sink_on_unwritable_path(tmp_path, capsys):
    from repro.obs.sinks import NDJSONSink
    from repro.sim.tracing import TraceRecord

    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    sink = NDJSONSink(str(blocker / "trace.ndjson"))
    record = TraceRecord(time=0.0, category="net", event="send", fields={})
    sink.emit(record)
    sink.emit(record)  # the warning prints once, then records are discarded
    sink.close()
    err = capsys.readouterr().err
    assert err.count("tracing disabled") == 1
    assert not (blocker / "trace.ndjson").exists()


def test_sweep_survives_unwritable_trace_dir(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    tiny = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=1)
    result = sweep(tiny, trace_dir=str(blocker / "traces"))
    assert len(result.runs) == 1
    assert "tracing disabled" in capsys.readouterr().err


def test_telemetry_journal_records_attempts_and_quarantine(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, f"poison:{POISON_KEY}")
    trace_dir = tmp_path / "traces"
    result = sweep(
        SPEC,
        trace_dir=str(trace_dir),
        policy=ResiliencePolicy(max_cell_failures=1),
    )
    assert [failure.key for failure in result.failures] == [POISON_KEY]
    lines = (trace_dir / "telemetry.ndjson").read_text().splitlines()
    header = json.loads(lines[0])
    assert header["resilience"]["failed_cells"] == 1
    assert header["resilience"]["quarantined"] == [POISON_KEY]
    records = {record["key"]: record for record in map(json.loads, lines[1:])}
    assert records[POISON_KEY]["error"] == "InjectedFaultError"
    assert records[POISON_KEY]["telemetry"] is None  # the gap stays explicit
    assert records["frodo3~5u@0.0#0"]["attempts"] == 1
    assert records["frodo3~5u@0.0#0"]["error"] is None
