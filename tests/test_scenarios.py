"""The scenario library: registry, CLI tokens, cell keys, conformance.

Three contracts pinned here:

* **Byte identity** — the default ``table4`` sweep reproduces the pre-scenario
  harness output exactly (fixtures captured before the scenario layer
  existed), serially and under ``--jobs 2``.
* **Determinism** — every family's runs depend only on the spec (identical
  results across re-runs and executors).
* **Conformance** — each family's invariants hold on a smoke cell of every
  registered system (the battery CI runs).
"""

import json

import pytest

from repro.experiments import (
    SCENARIOS,
    CheckpointMismatchError,
    ScenarioFamily,
    ScenarioRegistry,
    ScenarioSpec,
    SweepSpec,
    UnknownScenarioError,
    cell_key,
    load_checkpoint,
    parse_scenario,
    save_checkpoint,
    scenario_token,
    sweep,
)
from repro.experiments.runner import run_scenario
from repro.experiments.sweep import CHECKPOINT_VERSION
from repro.net.failures import DisruptionPlan
from repro.protocols.registry import SYSTEMS
from repro.__main__ import main

FIXTURE_DIR = "tests/data"
#: The grid both pre-PR fixtures were captured with (seed 0, runs 2).
FIXTURE_ARGS = ["--system", "frodo3,upnp,jini2", "--rates", "0,20,40", "--runs", "2"]


# --------------------------------------------------------------------------- registry
def test_standard_families_are_registered():
    assert SCENARIOS.names() == [
        "cascade",
        "churn",
        "correlated",
        "lossy",
        "multichange",
        "overlap",
        "partition",
        "restart",
        "table4",
    ]
    assert "churn" in SCENARIOS
    assert len(SCENARIOS) == 9
    assert all(isinstance(family, ScenarioFamily) for family in SCENARIOS)


def test_unknown_scenario_error_names_the_alternatives():
    with pytest.raises(UnknownScenarioError) as excinfo:
        SCENARIOS.get("bogus")
    message = str(excinfo.value)
    assert "bogus" in message and "table4" in message and "churn" in message


def test_register_rejects_duplicates_unless_replace():
    registry = ScenarioRegistry()
    family = ScenarioFamily(name="x", builder=lambda *a: DisruptionPlan())
    registry.register(family)
    with pytest.raises(ValueError):
        registry.register(family)
    registry.register(family, replace=True)
    registry.unregister("x")
    assert "x" not in registry


def test_validate_options_rejects_unknown_and_mistyped():
    churn = SCENARIOS.get("churn")
    assert churn.validate_options({}) == {"rate": 0.1, "gap": 600.0}
    assert churn.validate_options({"rate": 0.3})["rate"] == 0.3
    with pytest.raises(ValueError, match="does not accept"):
        churn.validate_options({"rte": 0.3})
    with pytest.raises(ValueError, match="must be a number"):
        churn.validate_options({"rate": "fast"})
    with pytest.raises(ValueError, match="must be a number"):
        churn.validate_options({"rate": True})


# --------------------------------------------------------------------------- CLI tokens
def test_parse_scenario_round_trips_through_token():
    name, options = parse_scenario("churn@rate=0.1,gap=600")
    assert name == "churn"
    assert options == {"rate": 0.1, "gap": 600}
    token = scenario_token(name, options)
    assert parse_scenario(token) == (name, options)


def test_scenario_token_is_canonical():
    assert scenario_token("table4", {}) == "table4"
    # Sorted keys: option order never changes the token (or the cell key).
    assert scenario_token("churn", {"gap": 600.0, "rate": 0.1}) == scenario_token(
        "churn", {"rate": 0.1, "gap": 600.0}
    )
    assert scenario_token("lossy", {"p": 0.2}) == "lossy@p=0.2"
    assert scenario_token("x", {"flag": True}) == "x@flag=true"


def test_parse_scenario_error_cases():
    with pytest.raises(ValueError, match="no name"):
        parse_scenario("")
    with pytest.raises(ValueError, match="dangling"):
        parse_scenario("churn@")
    with pytest.raises(ValueError, match="key=value"):
        parse_scenario("churn@rate")
    with pytest.raises(ValueError, match="duplicate"):
        parse_scenario("churn@rate=0.1,rate=0.2")


def test_spec_validation_resolves_the_scenario():
    ScenarioSpec(system="frodo3", scenario="churn").validate()
    with pytest.raises(UnknownScenarioError):
        ScenarioSpec(system="frodo3", scenario="bogus").validate()
    with pytest.raises(ValueError, match="does not accept"):
        ScenarioSpec(
            system="frodo3", scenario="churn", scenario_options={"x": 1}
        ).validate()


# --------------------------------------------------------------------------- cell keys
def test_table4_cell_keys_keep_the_bare_v2_shape():
    assert cell_key("frodo3", 0.2, 1) == "frodo3~5u@0.2#1"
    assert cell_key("frodo3", 0.2, 1, scenario="table4") == "frodo3~5u@0.2#1"


def test_non_default_scenarios_extend_the_cell_key():
    churn_key = cell_key("frodo3", 0.2, 1, scenario="churn@rate=0.1")
    assert churn_key == "frodo3~5u@0.2#1!churn@rate=0.1"
    keys = {
        cell_key("frodo3", 0.2, 1, scenario=token)
        for token in ("table4", "churn", "churn@rate=0.1", "lossy")
    }
    assert len(keys) == 4  # scenarios can never collide in a journal


def test_sweep_cells_carry_the_scenario_token():
    spec = SweepSpec(
        systems=("frodo3",),
        failure_rates=(0.2,),
        runs_per_cell=1,
        scenario_name="churn",
        scenario_options={"rate": 0.2},
    )
    (cell,) = spec.expand()
    assert cell.key.endswith("!churn@rate=0.2")
    assert cell.scenario.scenario == "churn"
    assert cell.scenario.scenario_options == {"rate": 0.2}
    assert spec.grid_dict()["scenario"] == "churn@rate=0.2"
    # ... while the default keeps the pre-scenario grid dict exactly.
    assert "scenario" not in SweepSpec(systems=("frodo3",)).grid_dict()


# --------------------------------------------------------------------------- checkpoints
def test_pre_scenario_checkpoints_fail_loudly(tmp_path):
    spec = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=1)
    ck = tmp_path / "old.jsonl"
    header = {"version": 2, "spec": spec.grid_dict(), "builder_options": {}, "registry": []}
    ck.write_text(json.dumps(header) + "\n")
    with pytest.raises(ValueError, match="version 2"):
        load_checkpoint(str(ck), spec)


def test_checkpoints_from_different_scenarios_do_not_mix(tmp_path):
    table4 = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=1)
    churn = SweepSpec(
        systems=("frodo3",),
        failure_rates=(0.0,),
        runs_per_cell=1,
        scenario_name="churn",
    )
    ck = tmp_path / "ck.jsonl"
    save_checkpoint(str(ck), churn, {})
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(ck), table4)
    assert load_checkpoint(str(ck), churn) == {}


# --------------------------------------------------------------------------- byte identity
def _strip_scenario_telemetry(data):
    """Remove the fields the scenario layer added to per-run telemetry.

    The simulation itself must be untouched by the scenario layer; only the
    *reporting* grew (schema version 2: a ``failures`` section and the
    ``net.link_losses`` counter).  Everything else must match the pre-PR
    fixture exactly.
    """
    for run in data["runs"]:
        telemetry = run["details"]["telemetry"]
        assert telemetry["version"] == 2
        telemetry["version"] = 1
        telemetry.pop("failures", None)
        assert telemetry["net"].pop("link_losses") == 0  # table4 has no loss windows
    return data


def test_default_sweep_is_byte_identical_to_pre_scenario_fixture(tmp_path):
    serial = tmp_path / "serial.json"
    jobs2 = tmp_path / "jobs2.json"
    explicit = tmp_path / "explicit.json"
    assert main(["sweep", *FIXTURE_ARGS, "--out", str(serial)]) == 0
    assert main(["sweep", *FIXTURE_ARGS, "--jobs", "2", "--out", str(jobs2)]) == 0
    assert main(["sweep", *FIXTURE_ARGS, "--scenario", "table4", "--out", str(explicit)]) == 0
    fixture = open(f"{FIXTURE_DIR}/table4_pre_pr_sweep.json", "rb").read()
    assert serial.read_bytes() == fixture
    assert jobs2.read_bytes() == fixture
    assert explicit.read_bytes() == fixture


def test_default_per_run_output_matches_fixture_modulo_telemetry_schema(tmp_path):
    out = tmp_path / "per_run.json"
    assert main(["sweep", *FIXTURE_ARGS, "--per-run", "--out", str(out)]) == 0
    produced = _strip_scenario_telemetry(json.loads(out.read_text()))
    fixture = json.loads(open(f"{FIXTURE_DIR}/table4_pre_pr_per_run.json").read())
    assert produced == fixture


# --------------------------------------------------------------------------- determinism
def test_churn_sweep_is_deterministic_across_reruns_and_executors(tmp_path):
    argv = [
        "sweep",
        "--system",
        "frodo3,jini2",
        "--rates",
        "0,20",
        "--runs",
        "2",
        "--scenario",
        "churn@rate=0.2",
        "--per-run",
    ]
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    parallel = tmp_path / "parallel.json"
    assert main([*argv, "--out", str(first)]) == 0
    assert main([*argv, "--out", str(second)]) == 0
    assert main([*argv, "--jobs", "2", "--out", str(parallel)]) == 0
    assert first.read_bytes() == second.read_bytes() == parallel.read_bytes()
    data = json.loads(first.read_text())
    assert data["spec"]["scenario"] == "churn@rate=0.2"
    churned = [
        run["details"]["telemetry"]["failures"]["departed"] for run in data["runs"]
    ]
    assert any(churned)  # the scenario actually did something


def test_families_share_table4_baseline_outages_at_equal_seeds():
    """Families layered on the paper's outage plan (churn, lossy, multichange)
    draw it from the same ``failures`` stream: per-node outage schedules match
    table4 exactly at equal seeds — paired comparisons across scenarios."""
    results = {}
    for scenario in ("table4", "lossy", "multichange"):
        spec = ScenarioSpec(
            system="frodo3", failure_rate=0.4, seed=11, scenario=scenario
        )
        run = run_scenario(spec)
        results[scenario] = run.details["telemetry"]["failures"]["realized_downtime"]
    assert results["table4"] == results["lossy"] == results["multichange"]


# --------------------------------------------------------------------------- conformance
SMOKE_RATE = 0.2


@pytest.mark.parametrize("system", SYSTEMS.names())
@pytest.mark.parametrize("family_name", SCENARIOS.names())
def test_conformance_battery(family_name, system):
    """Every family x system smoke cell satisfies the family's invariants
    (and the shared recovery invariant)."""
    family = SCENARIOS.get(family_name)
    spec = ScenarioSpec(
        system=system, failure_rate=SMOKE_RATE, seed=3, scenario=family_name
    ).validate()
    result = run_scenario(spec)
    assert family.check(spec, result) == []


def test_conformance_check_catches_violations():
    """The battery is not vacuous: feed a family a result produced by a
    different family and its invariants must trip."""
    spec = ScenarioSpec(
        system="frodo3", failure_rate=SMOKE_RATE, seed=3, scenario="churn",
        scenario_options={"rate": 0.4},
    )
    churned = run_scenario(spec)
    assert SCENARIOS.get("table4").check(spec, churned)  # churn events present
    table4 = run_scenario(
        ScenarioSpec(system="frodo3", failure_rate=SMOKE_RATE, seed=3)
    )
    lossy_spec = ScenarioSpec(
        system="frodo3", failure_rate=SMOKE_RATE, seed=3, scenario="lossy"
    )
    assert SCENARIOS.get("lossy").check(lossy_spec, table4)  # no loss windows


def test_multichange_versions_and_change_time():
    spec = ScenarioSpec(
        system="frodo3",
        failure_rate=0.0,
        seed=5,
        scenario="multichange",
        scenario_options={"changes": 4, "spacing": 300.0},
    )
    result = run_scenario(spec)
    assert result.details["changed_version"] == 5  # initial 1 + 4 changes
    assert result.change_time == spec.change_time + 3 * 300.0
    assert SCENARIOS.get("multichange").check(spec, result) == []


def test_restart_rediscovery_recovers_full_effectiveness():
    """The flash-crowd case the issue calls out: a Registry restart must not
    leave stale state — everyone is consistent again by the deadline."""
    for system in ("jini2", "upnp", "frodo3"):
        spec = ScenarioSpec(system=system, failure_rate=0.0, seed=9, scenario="restart")
        result = run_scenario(spec)
        assert result.users_updated() == result.n_users
        failures = result.details["telemetry"]["failures"]
        assert failures["n_churn"] >= 1
        assert failures["departed"] == failures["rejoined"]


# --------------------------------------------------------------------------- CLI surface
def test_cli_lists_scenarios():
    assert main(["scenarios"]) == 0


def test_cli_rejects_unknown_scenario(capsys):
    assert main(["run", "--system", "frodo3", "--scenario", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'bogus'" in err and "table4" in err


def test_cli_rejects_malformed_scenario_token(capsys):
    assert main(["run", "--system", "frodo3", "--scenario", "churn@rate"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_sweep_accepts_scenario_in_library_api():
    spec = SweepSpec(
        systems=("frodo3",),
        failure_rates=(0.0,),
        runs_per_cell=1,
        base_seed=2,
        scenario_name="multichange",
        scenario_options={"changes": 2},
    )
    result = sweep(spec)
    assert result.summaries[0].effectiveness == 1.0
    assert CHECKPOINT_VERSION == 5
