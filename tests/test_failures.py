"""Failure layer: depth-counted interfaces, disruption plans, the injector.

The regression core of the scenario PR: overlapping outages must not restore
a direction early (the old boolean ``tx_up``/``rx_up`` did exactly that),
outage windows overrunning the run must be accounted against the deadline,
and outage/restore operations targeting a node departed by churn must be
skipped instead of raising mid-run.
"""

import random

import pytest

from repro.net.failures import (
    DisruptionPlan,
    FailureInjector,
    FailureModelConfig,
    InterfaceOutage,
    LossWindow,
    NodeChurn,
    build_interface_failure_plan,
    merged_downtime,
)
from repro.net.interfaces import Endpoint, NetworkInterface
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


def make_network(n_nodes=3, seed=1234, trace=False):
    sim = Simulator(tracer=Tracer(enabled=trace))
    network = Network(sim, RngRegistry(seed))
    inboxes = {}
    for index in range(n_nodes):
        address = f"node-{index}"
        inbox = []
        inboxes[address] = inbox
        network.join(Endpoint(address, handler=inbox.append))
    return sim, network, inboxes


def msg(sender, receiver, kind="ping"):
    return Message(sender=sender, receiver=receiver, protocol="test", kind=kind)


# --------------------------------------------------------------------------- depth counters
def test_overlapping_outages_keep_direction_down_until_last_restore():
    """Regression: with boolean up/down state, restoring the first of two
    overlapping outages brought the direction back up while the second was
    still active.  Depth counting keeps it down."""
    interface = NetworkInterface("n")
    interface.fail(rx=True)  # outage A
    interface.fail(rx=True)  # outage B, overlapping A
    assert not interface.rx_up
    interface.restore(rx=True)  # A ends first
    assert not interface.rx_up  # the old boolean implementation failed here
    assert interface.rx_fail_depth == 1
    interface.restore(rx=True)  # B ends
    assert interface.rx_up
    assert interface.rx_fail_depth == 0


def test_overlapping_outages_through_injector_drop_messages_in_the_overlap_tail():
    """End-to-end form of the regression: two overlapping rx outages on one
    node; a message sent after the first restore but during the second outage
    must still be dropped."""
    sim, network, inboxes = make_network(2)
    plan = [
        InterfaceOutage(node="node-1", start=10.0, duration=20.0, mode="rx"),
        InterfaceOutage(node="node-1", start=20.0, duration=25.0, mode="rx"),
    ]
    injector = FailureInjector(sim, network, plan)
    injector.start()
    sim.schedule_at(35.0, network.transmit_unicast, msg("node-0", "node-1"))  # overlap tail
    sim.schedule_at(50.0, network.transmit_unicast, msg("node-0", "node-1"))  # all restored
    sim.run(until=60.0)
    assert len(inboxes["node-1"]) == 1  # only the t=50 message arrived


def test_unmatched_restore_is_clamped_at_depth_zero():
    interface = NetworkInterface("n")
    interface.restore(tx=True, rx=True)  # nothing to undo
    assert interface.tx_up and interface.rx_up
    assert interface.tx_fail_depth == 0 and interface.rx_fail_depth == 0
    interface.fail(tx=True)
    interface.restore(tx=True)
    interface.restore(tx=True)  # extra restore must not go negative
    interface.fail(tx=True)
    assert not interface.tx_up  # a fresh fail still takes the direction down


def test_interface_reset_clears_all_depth():
    interface = NetworkInterface("n")
    interface.fail(tx=True, rx=True)
    interface.fail(rx=True)
    interface.reset()
    assert interface.tx_up and interface.rx_up
    assert interface.tx_fail_depth == 0 and interface.rx_fail_depth == 0


def test_node_down_requires_both_directions():
    interface = NetworkInterface("n")
    assert not interface.node_down
    interface.fail(tx=True)
    assert not interface.node_down
    interface.fail(rx=True)
    assert interface.node_down
    interface.restore(tx=True)
    assert not interface.node_down


# --------------------------------------------------------------------------- outage dataclass
def test_interface_outage_covers_is_half_open():
    outage = InterfaceOutage(node="n", start=100.0, duration=50.0, mode="both")
    assert outage.end == 150.0
    assert not outage.covers(99.999)
    assert outage.covers(100.0)  # inclusive start
    assert outage.covers(149.999)
    assert not outage.covers(150.0)  # exclusive end
    assert outage.fails_tx and outage.fails_rx


def test_interface_outage_clamped_against_deadline():
    outage = InterfaceOutage(node="n", start=5000.0, duration=1000.0, mode="tx")
    assert outage.clamped(5400.0) == (5000.0, 5400.0)
    assert outage.clamped(6500.0) == (5000.0, 6000.0)
    assert outage.clamped(4000.0) == (4000.0, 4000.0)  # entirely past the run


def test_merged_downtime_merges_overlaps_and_clamps():
    outages = [
        InterfaceOutage(node="a", start=100.0, duration=100.0, mode="tx"),
        InterfaceOutage(node="a", start=150.0, duration=100.0, mode="rx"),  # overlaps
        InterfaceOutage(node="a", start=400.0, duration=50.0, mode="both"),  # disjoint
        InterfaceOutage(node="b", start=900.0, duration=300.0, mode="both"),  # overruns
    ]
    realized = merged_downtime(outages, deadline=1000.0)
    assert realized["a"] == pytest.approx(150.0 + 50.0)  # union [100,250] + [400,450]
    assert realized["b"] == pytest.approx(100.0)  # clamped to [900, 1000]
    unclamped = merged_downtime(outages)
    assert unclamped["b"] == pytest.approx(300.0)


# --------------------------------------------------------------------------- the failure model
def test_fitted_plan_realizes_the_nominal_failure_fraction():
    """Satellite: with ``fit_to_deadline`` the whole outage fits inside the
    run, so mean realized downtime equals nominal lambda exactly.  Without it,
    windows drawn near the deadline overrun and realized downtime
    undershoots."""
    rng = random.Random(7)
    deadline = 5400.0
    rate = 0.4
    nodes = [f"n{i}" for i in range(200)]

    fitted = build_interface_failure_plan(
        nodes,
        rate,
        rng,
        FailureModelConfig(sim_duration=deadline, latest_onset=deadline, fit_to_deadline=True),
    )
    realized = merged_downtime(fitted, deadline=deadline)
    fractions = [realized[node] / deadline for node in nodes]
    assert min(fractions) == pytest.approx(rate)
    assert max(fractions) == pytest.approx(rate)
    assert all(outage.end <= deadline + 1e-9 for outage in fitted)

    unfitted = build_interface_failure_plan(
        nodes,
        rate,
        random.Random(7),
        FailureModelConfig(sim_duration=deadline, latest_onset=deadline),
    )
    realized_unfitted = merged_downtime(unfitted, deadline=deadline)
    mean = sum(realized_unfitted[node] / deadline for node in nodes) / len(nodes)
    assert mean < rate  # the paper's draw silently undershoots nominal lambda
    assert any(outage.end > deadline for outage in unfitted)


def test_injector_telemetry_reports_clamped_realized_downtime():
    sim, network, _ = make_network(2)
    plan = [
        InterfaceOutage(node="node-0", start=50.0, duration=100.0, mode="tx"),
        InterfaceOutage(node="node-1", start=150.0, duration=100.0, mode="both"),
    ]
    injector = FailureInjector(sim, network, plan, deadline=200.0)
    injector.start()
    sim.run(until=200.0)
    telemetry = injector.failure_telemetry()
    assert telemetry["n_outages"] == 2
    assert telemetry["realized_downtime"] == {"node-0": 100.0, "node-1": 50.0}
    assert telemetry["realized_fraction_mean"] == pytest.approx((0.5 + 0.25) / 2)
    assert telemetry["last_outage_end"] == 200.0  # clamped, not 250
    assert telemetry["skipped_ops"] == 0


# --------------------------------------------------------------------------- departed endpoints
def test_outage_on_departed_node_is_skipped_not_raised():
    sim, network, _ = make_network(2, trace=True)
    plan = [InterfaceOutage(node="node-1", start=20.0, duration=30.0, mode="both")]
    injector = FailureInjector(sim, network, plan)
    injector.start()
    sim.schedule_at(10.0, network.leave, "node-1")
    sim.run(until=100.0)  # the old unguarded _apply raised KeyError here
    assert injector.skipped_ops == 1
    skipped = sim.tracer.filter(event="failure_skipped")
    assert len(skipped) == 1
    assert skipped[0].fields["operation"] == "apply"
    assert skipped[0].fields["node"] == "node-1"


def test_restore_on_node_departed_mid_outage_is_skipped():
    sim, network, _ = make_network(2, trace=True)
    plan = [InterfaceOutage(node="node-1", start=20.0, duration=30.0, mode="rx")]
    injector = FailureInjector(sim, network, plan)
    injector.start()
    sim.schedule_at(30.0, network.leave, "node-1")  # departs while failed
    sim.run(until=100.0)
    assert injector.skipped_ops == 1
    skipped = sim.tracer.filter(event="failure_skipped")
    assert skipped[0].fields["operation"] == "restore"


class _ToyNode(Process):
    """Minimal churn target: counts bootstraps, owns an endpoint."""

    def __init__(self, sim, network, node_id):
        super().__init__(sim, node_id)
        self.node_id = node_id
        self.endpoint = Endpoint(node_id, handler=lambda message: None)
        network.join(self.endpoint)
        self.bootstraps = 0

    def on_start(self):
        self.bootstraps += 1


def test_churn_leave_and_rejoin_restarts_node_with_fresh_interface():
    sim = Simulator(tracer=Tracer(enabled=True))
    network = Network(sim, RngRegistry(5))
    node = _ToyNode(sim, network, "peer")
    nodes = {"peer": node}
    node.start()
    # An outage overlapping the absence: its restore is skipped, so only the
    # rejoin's interface reset may bring the radio back.
    plan = [InterfaceOutage(node="peer", start=50.0, duration=200.0, mode="both")]
    churn = [NodeChurn(node="peer", leave=100.0, rejoin=400.0)]
    injector = FailureInjector(
        sim, network, plan, churn=churn, deadline=1000.0, node_resolver=nodes.get
    )
    injector.start()
    sim.run(until=1000.0)
    assert injector.departed == ["peer"] and injector.rejoined == ["peer"]
    assert injector.skipped_ops == 1  # the restore at t=250 hit a departed node
    assert network.has_endpoint("peer")
    assert node.endpoint.interface.tx_up and node.endpoint.interface.rx_up
    assert node.bootstraps == 2  # initial start + churn restart
    assert not node.stopped
    telemetry = injector.failure_telemetry()
    assert telemetry["last_churn_end"] == 400.0


def test_churn_without_rejoin_leaves_node_out():
    sim = Simulator()
    network = Network(sim, RngRegistry(5))
    node = _ToyNode(sim, network, "peer")
    node.start()
    injector = FailureInjector(
        sim, network, [], churn=[NodeChurn(node="peer", leave=10.0)],
        deadline=100.0, node_resolver={"peer": node}.get,
    )
    injector.start()
    sim.run(until=100.0)
    assert not network.has_endpoint("peer")
    assert node.stopped
    assert injector.departed == ["peer"] and injector.rejoined == []


def test_departed_sender_transmissions_fail_silently():
    sim, network, inboxes = make_network(2)
    network.leave("node-0")
    assert network.transmit_unicast(msg("node-0", "node-1")) is False
    sim.run()
    assert inboxes["node-1"] == []
    assert len(network.stats) == 0  # a ghost emits no traffic


def test_churn_event_validation():
    with pytest.raises(ValueError):
        NodeChurn(node="n", leave=-1.0).validate()
    with pytest.raises(ValueError):
        NodeChurn(node="n", leave=100.0, rejoin=100.0).validate()
    assert NodeChurn(node="n", leave=0.0, rejoin=1.0).validate().rejoin == 1.0


# --------------------------------------------------------------------------- lossy links
def test_loss_window_drops_deliveries_with_given_probability():
    sim, network, inboxes = make_network(2, seed=42)
    injector = FailureInjector(
        sim,
        network,
        [],
        loss_windows=[LossWindow(start=0.0, duration=10.0, drop_probability=0.5)],
        deadline=100.0,
    )
    injector.start()
    for index in range(200):
        sim.schedule_at(1.0 + index * 0.01, network.transmit_unicast, msg("node-0", "node-1"))
    sim.run(until=100.0)
    delivered = len(inboxes["node-1"])
    assert delivered + network.link_losses == 200
    assert 60 <= delivered <= 140  # p=0.5, 200 trials
    assert len(network.stats) == 200  # drops happen on the wire, after the send


def test_loss_window_closes_and_later_sends_all_arrive():
    sim, network, inboxes = make_network(2, seed=42)
    injector = FailureInjector(
        sim,
        network,
        [],
        loss_windows=[LossWindow(start=0.0, duration=10.0, drop_probability=1.0)],
        deadline=100.0,
    )
    injector.start()
    sim.schedule_at(5.0, network.transmit_unicast, msg("node-0", "node-1"))  # inside: dropped
    sim.schedule_at(20.0, network.transmit_unicast, msg("node-0", "node-1"))  # after: arrives
    sim.run(until=100.0)
    assert len(inboxes["node-1"]) == 1
    assert network.link_losses == 1
    assert network.loss_probability == 0.0


def test_nested_loss_windows_compose_as_independent_drops():
    sim, network, _ = make_network(2)
    network.push_loss(0.5)
    network.push_loss(0.5)
    assert network.loss_probability == pytest.approx(0.75)
    network.pop_loss(0.5)
    assert network.loss_probability == pytest.approx(0.5)
    network.pop_loss(0.5)
    assert network.loss_probability == 0.0
    with pytest.raises(ValueError):
        network.pop_loss(0.5)
    with pytest.raises(ValueError):
        network.push_loss(1.5)


def test_loss_draws_never_perturb_the_delay_stream():
    """The loss stream is separate: a run with a zero-width loss window set
    up but never transmitting through it keeps delay draws identical."""
    def delays(with_loss):
        sim = Simulator()
        network = Network(sim, RngRegistry(99))
        if with_loss:
            network.push_loss(0.5)
            network.pop_loss(0.5)
        return [network.transmission_delay() for _ in range(20)]

    assert delays(False) == delays(True)


def test_loss_window_validation():
    with pytest.raises(ValueError):
        LossWindow(start=0.0, duration=0.0, drop_probability=0.5).validate()
    with pytest.raises(ValueError):
        LossWindow(start=0.0, duration=1.0, drop_probability=1.5).validate()


# --------------------------------------------------------------------------- plans
def test_disruption_plan_counts_events():
    plan = DisruptionPlan(
        outages=(InterfaceOutage(node="a", start=1.0, duration=1.0, mode="tx"),),
        churn=(NodeChurn(node="b", leave=2.0),),
        loss_windows=(LossWindow(start=3.0, duration=1.0, drop_probability=0.1),),
        extra_change_times=(4.0, 5.0),
    )
    assert plan.n_events == 5
    assert DisruptionPlan().n_events == 0
