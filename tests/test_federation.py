"""Federated-registry conformance battery.

Covers the federation tentpole end to end:

* zero-failure exactness — ``y = m' = (N + 2) * K`` for the push family at
  K in {1, 2, 4, 8};
* the legacy ``jini1``/``jini2`` aliases stay byte-identical to the
  pre-redesign sweep output (serial and ``--jobs 2``);
* partitioned vs multi-homed user assignment is deterministic across
  executors (``--jobs 1`` vs ``--jobs 4``);
* pull/gossip bounded-staleness invariants (cache-TTL and
  topology-diameter convergence bounds);
* federation x scenario interaction (``churn``, ``restart``).
"""

import json

import pytest

from repro.experiments import ExperimentRunner, ScenarioSpec
from repro.protocols.federation.topology import diameter, max_degree, neighbor_indices
from repro.protocols.registry import SYSTEMS
from repro.__main__ import main

FIXTURE = "tests/data/jini_alias_pre_pr_sweep.json"
ALIAS_ARGS = ["--system", "jini1,jini2", "--rates", "0,20", "--runs", "2"]

N_USERS = 5
GOSSIP_INTERVAL = 120.0
TTL = 600.0
RENEWAL_INTERVAL = 900.0  # JiniConfig: lease 1800 x renewal_fraction 0.5


def zero_failure_run(system, seed=1234, n_users=N_USERS):
    """One zero-failure run of ``system``; returns (result, context)."""
    runner = ExperimentRunner()
    context = runner.setup(
        ScenarioSpec(system=system, failure_rate=0.0, seed=seed, n_users=n_users)
    )
    try:
        return runner.execute(context), context
    finally:
        context.deployment.stop()
        context.injector.stop()
        context.sim.tracer.close()


# --------------------------------------------------------------------------- topology
def test_topologies_have_the_expected_shapes():
    assert neighbor_indices("mesh", 4) == [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]]
    assert neighbor_indices("star", 4) == [[1, 2, 3], [0], [0], [0]]
    assert neighbor_indices("ring", 4) == [[1, 3], [0, 2], [1, 3], [0, 2]]
    assert neighbor_indices("line", 4) == [[1], [0, 2], [1, 3], [2]]
    for topology in ("mesh", "star", "ring", "line"):
        assert neighbor_indices(topology, 1) == [[]]
        assert diameter(topology, 1) == 0
        # Undirected: every edge appears in both adjacency lists.
        adjacency = neighbor_indices(topology, 6)
        for i, peers in enumerate(adjacency):
            for j in peers:
                assert i in adjacency[j]
    assert diameter("mesh", 8) == 1
    assert diameter("star", 8) == 2
    assert diameter("ring", 8) == 4
    assert diameter("line", 8) == 7


def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        neighbor_indices("torus", 4)


# --------------------------------------------------------------------------- push exactness
@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_zero_failure_y_equals_m_prime_for_every_k(k):
    system = f"jini@k={k}" if k != 1 else "jini"
    result, context = zero_failure_run(system)
    expected = (N_USERS + 2) * k
    assert context.deployment.m_prime == expected
    assert SYSTEMS.resolve(system).m_prime(N_USERS) == expected
    assert result.update_message_count == expected
    # No inter-registry traffic in push mode: the Manager replicates itself.
    assert not any(
        kind.startswith("jini.fed_") for kind in result.details["update_counts_by_kind"]
    )
    for when in result.user_update_times.values():
        assert when is not None and result.change_time <= when < result.deadline


def test_push_federation_reports_converged_consistency_metrics():
    result, _ = zero_failure_run("jini@k=4")
    fed = result.details["federation"]
    assert fed["k"] == 4 and fed["mode"] == "push"
    assert fed["converged_registries"] == 4
    assert fed["convergence_time"] is not None and fed["convergence_time"] < 60.0
    assert set(fed["per_registry_update_messages"]) == {
        f"jini-lus-{i}" for i in range(1, 5)
    }
    # Push: each registry forwards its own (N + 2) share minus the Manager's
    # sends; the per-registry split still sums below the total y.
    assert sum(fed["per_registry_update_messages"].values()) <= result.update_message_count


def test_legacy_aliases_do_not_report_federation_details():
    for system in ("jini1", "jini2"):
        result, _ = zero_failure_run(system)
        assert "federation" not in result.details


# --------------------------------------------------------------------------- alias byte identity
def test_alias_sweep_byte_identical_to_pre_pr_fixture(tmp_path):
    serial = tmp_path / "serial.json"
    jobs2 = tmp_path / "jobs2.json"
    assert main(["sweep", *ALIAS_ARGS, "--out", str(serial)]) == 0
    assert main(["sweep", *ALIAS_ARGS, "--jobs", "2", "--out", str(jobs2)]) == 0
    fixture = open(FIXTURE, "rb").read()
    assert serial.read_bytes() == fixture
    assert jobs2.read_bytes() == fixture


def test_frozen_alias_rejects_options_from_the_cli(tmp_path, capsys):
    out = tmp_path / "never.json"
    argv = ["sweep", "--system", "jini2@k=3", "--rates", "0", "--runs", "1"]
    assert main([*argv, "--out", str(out)]) == 2
    err = capsys.readouterr().err
    assert "frozen alias" in err and not out.exists()


def test_malformed_system_tokens_fail_cleanly(tmp_path, capsys):
    for token in ("jini@", "jini@k", "jini@nope=1", "jini@k=2.5"):
        assert main(["sweep", "--system", token, "--rates", "0", "--runs", "1"]) == 2
    assert "error:" in capsys.readouterr().err


# --------------------------------------------------------------------------- determinism
@pytest.mark.parametrize("assign", ["multi", "partition"])
def test_assignment_modes_deterministic_across_executors(tmp_path, assign):
    argv = [
        "sweep",
        "--system",
        f"jini@assign={assign},k=4,mode=gossip,topology=ring",
        "--rates",
        "0,20",
        "--runs",
        "2",
        "--per-run",
    ]
    serial = tmp_path / "serial.json"
    jobs4 = tmp_path / "jobs4.json"
    assert main([*argv, "--jobs", "1", "--out", str(serial)]) == 0
    assert main([*argv, "--jobs", "4", "--out", str(jobs4)]) == 0
    assert serial.read_bytes() == jobs4.read_bytes()
    data = json.loads(serial.read_text())
    token = f"jini@assign={assign},k=4,mode=gossip,topology=ring"
    assert data["spec"]["systems"] == [token]
    assert all(run["details"]["federation"]["assign"] == assign for run in data["runs"])


# --------------------------------------------------------------------------- pull/gossip invariants
@pytest.mark.parametrize("topology", ["mesh", "star", "ring", "line"])
def test_gossip_convergence_respects_the_topology_bound(topology):
    k = 4
    result, _ = zero_failure_run(f"jini@assign=partition,k={k},mode=gossip,topology={topology}")
    fed = result.details["federation"]
    assert fed["converged_registries"] == k
    # An update crosses one hop in at most max_degree round-robin ticks;
    # the extra interval covers tick phase, the slack covers deliveries.
    bound = diameter(topology, k) * max_degree(topology, k) * GOSSIP_INTERVAL
    bound += GOSSIP_INTERVAL + 60.0
    assert fed["convergence_time"] is not None and fed["convergence_time"] <= bound
    # Gossip traffic exists and is counted as update-related.
    assert any(
        kind in ("jini.fed_gossip", "jini.fed_gossip_ack")
        for kind in result.details["update_counts_by_kind"]
    )
    for when in result.user_update_times.values():
        assert when is not None and when < result.deadline


def test_pull_staleness_window_is_bounded_by_ttl_plus_renewal():
    k = 4
    result, _ = zero_failure_run(f"jini@assign=partition,k={k},mode=pull,topology=star")
    fed = result.details["federation"]
    assert fed["converged_registries"] == k
    bound = TTL + RENEWAL_INTERVAL + 120.0
    assert fed["convergence_time"] is not None and fed["convergence_time"] <= bound
    for registry_id, window in fed["staleness"].items():
        assert window is not None, registry_id
        assert window <= bound
    # Pull traffic exists and is counted as update-related.
    assert any(
        kind in ("jini.fed_pull", "jini.fed_pull_response")
        for kind in result.details["update_counts_by_kind"]
    )
    for when in result.user_update_times.values():
        assert when is not None and when < result.deadline


def test_pull_ttl_parameter_tightens_the_bound():
    result, _ = zero_failure_run("jini@assign=partition,k=2,mode=pull,ttl=60.0")
    fed = result.details["federation"]
    assert fed["converged_registries"] == 2
    assert fed["convergence_time"] <= 60.0 + RENEWAL_INTERVAL + 120.0


# --------------------------------------------------------------------------- scenario interaction
@pytest.mark.parametrize("scenario", ["churn@rate=0.2", "restart"])
def test_federation_composes_with_disruption_scenarios(tmp_path, scenario):
    argv = [
        "sweep",
        "--system",
        "jini@assign=partition,k=4,mode=gossip",
        "--rates",
        "20",
        "--runs",
        "2",
        "--scenario",
        scenario,
        "--per-run",
    ]
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main([*argv, "--out", str(first)]) == 0
    assert main([*argv, "--jobs", "2", "--out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    data = json.loads(first.read_text())
    (summary,) = data["summaries"]
    assert summary["effectiveness"] > 0.0
    for run in data["runs"]:
        fed = run["details"]["federation"]
        assert fed["k"] == 4 and fed["mode"] == "gossip"
