"""Checkpoint/resume of partial sweeps.

The checkpoint is an append-only JSONL journal (header line with the grid
parameters, then one line per finished cell).  A resumed sweep must produce
exactly the output an uninterrupted sweep would have produced, execute only
the cells the journal does not already contain, tolerate a torn final line
(interrupted append), and refuse journals written by a different grid.
"""

import json
import os
from dataclasses import replace

import pytest

from repro.experiments import (
    CheckpointMismatchError,
    ParallelExecutor,
    SweepSpec,
    load_checkpoint,
    save_checkpoint,
    sweep,
)
from repro.experiments.report import sweep_to_dict, to_json
from repro.experiments.sweep import CHECKPOINT_VERSION
from repro.protocols.registry import DeploymentRegistry
from repro.__main__ import main

SPEC = SweepSpec(
    systems=("frodo3",),
    failure_rates=(0.0, 0.2),
    runs_per_cell=2,
    base_seed=5,
)


def _sweep_json(spec, **kwargs):
    return to_json(sweep_to_dict(sweep(spec, **kwargs), include_runs=True))


def _journal_lines(path):
    return [line for line in path.read_text().splitlines() if line.strip()]


def _truncate_checkpoint(path, keep):
    """Drop all but ``keep`` completed cells, simulating an interrupted sweep."""
    lines = _journal_lines(path)
    path.write_text("\n".join(lines[: 1 + keep]) + "\n")
    return [json.loads(line)["key"] for line in lines[1 : 1 + keep]]


def test_fresh_sweep_creates_checkpoint_with_every_cell(tmp_path):
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    lines = _journal_lines(ck)
    header = json.loads(lines[0])
    assert header["version"] == CHECKPOINT_VERSION
    assert header["spec"] == SPEC.grid_dict()
    assert len(lines) - 1 == SPEC.total_runs


def test_resume_from_partial_checkpoint_is_byte_identical(tmp_path):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    kept = _truncate_checkpoint(ck, keep=1)

    executed = []
    resumed = _sweep_json(SPEC, checkpoint=str(ck), observer=lambda run: executed.append(run))
    assert resumed == baseline
    # Only the cells missing from the checkpoint were executed.
    assert len(executed) == SPEC.total_runs - len(kept)
    # The journal is complete again afterwards.
    assert len(_journal_lines(ck)) - 1 == SPEC.total_runs


def test_resume_composes_with_parallel_executor(tmp_path):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    _truncate_checkpoint(ck, keep=2)
    resumed = _sweep_json(SPEC, checkpoint=str(ck), executor=ParallelExecutor(2))
    assert resumed == baseline


def test_torn_final_line_is_dropped_on_load(tmp_path):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    # Simulate a crash mid-append: the last record is cut off.
    torn = ck.read_text()[:-40]
    ck.write_text(torn)
    loaded = load_checkpoint(str(ck), SPEC)
    assert len(loaded) == SPEC.total_runs - 1
    assert _sweep_json(SPEC, checkpoint=str(ck)) == baseline
    # The resume compacted the journal: the torn fragment is gone, the
    # re-run cell was re-appended as its own clean line, and a further
    # resume loads every cell (nothing merged into a corrupt record).
    assert len(_journal_lines(ck)) - 1 == SPEC.total_runs
    assert len(load_checkpoint(str(ck), SPEC)) == SPEC.total_runs


def test_torn_header_is_treated_as_fresh_journal(tmp_path):
    baseline = _sweep_json(SPEC)
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    header_line = _journal_lines(ck)[0]
    # Simulate a crash during the very first append: only part of the
    # header made it to disk.
    ck.write_text(header_line[: len(header_line) // 2])
    assert load_checkpoint(str(ck), SPEC) == {}
    assert _sweep_json(SPEC, checkpoint=str(ck)) == baseline
    assert len(_journal_lines(ck)) - 1 == SPEC.total_runs


def test_checkpoint_from_different_grid_is_rejected(tmp_path):
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    other = SweepSpec(systems=("upnp",), failure_rates=(0.0,), runs_per_cell=1)
    with pytest.raises(CheckpointMismatchError):
        sweep(other, checkpoint=str(ck))


def test_checkpoint_with_different_builder_options_is_rejected(tmp_path):
    # Same grid, different deployment configuration: must not mix results.
    ck = tmp_path / "ck.jsonl"
    save_checkpoint(str(ck), SPEC, {})
    tweaked = replace(SPEC, builder_options={"n_registries": 2})
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(ck), tweaked)


def test_checkpoint_from_different_registry_is_rejected(tmp_path):
    # Same grid, different deployment registry: must not mix results.
    ck = tmp_path / "ck.jsonl"
    save_checkpoint(str(ck), SPEC, {})
    private = DeploymentRegistry()
    private.register("frodo3", lambda *a, **k: None, m_prime=99)
    with pytest.raises(CheckpointMismatchError, match="different deployment registry"):
        load_checkpoint(str(ck), SPEC, private)


def test_corrupt_and_foreign_checkpoint_files_are_rejected(tmp_path):
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_checkpoint(str(corrupt), SPEC)
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text(json.dumps({"something": "else"}) + "\n")
    with pytest.raises(ValueError, match="not a sweep checkpoint"):
        load_checkpoint(str(foreign), SPEC)
    wrong_version = tmp_path / "old.jsonl"
    wrong_version.write_text(json.dumps({"version": 0, "spec": SPEC.grid_dict()}) + "\n")
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(str(wrong_version), SPEC)


@pytest.mark.parametrize("fixture", ["checkpoint_v3.jsonl", "checkpoint_v4.jsonl"])
def test_old_checkpoint_versions_fail_with_actionable_message(fixture):
    """Journals written by earlier harness versions (fixture files captured
    from their formats) must fail with a message naming the offending path,
    both version numbers, and what to do about it — not a spec-mismatch
    error or a traceback."""
    path = os.path.join(os.path.dirname(__file__), "data", fixture)
    old_version = fixture.split("_v")[1].split(".")[0]
    with pytest.raises(ValueError) as excinfo:
        load_checkpoint(path, SPEC)
    assert not isinstance(excinfo.value, CheckpointMismatchError)
    message = str(excinfo.value)
    assert fixture in message  # names the offending journal
    assert f"has version {old_version}" in message
    assert f"reads version {CHECKPOINT_VERSION}" in message
    assert "--resume" in message  # says how to recover


def test_corrupt_middle_record_is_rejected(tmp_path):
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    lines = _journal_lines(ck)
    lines[1] = "{garbage"  # not the final line: corruption, not a torn append
    ck.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt at line 2"):
        load_checkpoint(str(ck), SPEC)


def test_wrong_shape_record_is_rejected_not_a_traceback(tmp_path):
    # Valid JSON of the wrong shape (hand-edited / foreign JSONL) must raise
    # the clean corruption error, not KeyError/TypeError.
    ck = tmp_path / "ck.jsonl"
    sweep(SPEC, checkpoint=str(ck))
    lines = _journal_lines(ck)
    for bad in ('"x"', '{"foo": 1}', '{"key": "a", "run": {}}'):
        ck.write_text("\n".join([lines[0], bad, lines[1]]) + "\n")
        with pytest.raises(ValueError, match="corrupt at line 2"):
            load_checkpoint(str(ck), SPEC)


def test_checkpoint_round_trip_preserves_runs(tmp_path):
    result = sweep(SPEC)
    completed = {f"cell{i}": run for i, run in enumerate(result.runs)}
    path = tmp_path / "ck.jsonl"
    save_checkpoint(str(path), SPEC, completed)
    loaded = load_checkpoint(str(path), SPEC)
    assert loaded == completed


def test_missing_or_empty_checkpoint_file_means_fresh_sweep(tmp_path):
    ck = tmp_path / "absent.jsonl"
    assert load_checkpoint(str(ck), SPEC) == {}
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert load_checkpoint(str(empty), SPEC) == {}
    assert _sweep_json(SPEC, checkpoint=str(ck)) == _sweep_json(SPEC)
    assert ck.exists()


def test_cli_resume_flag_round_trip(tmp_path):
    ck = tmp_path / "ck.jsonl"
    out_first = tmp_path / "first.json"
    out_second = tmp_path / "second.json"
    argv = ["sweep", "--system", "frodo3", "--rates", "0,20", "--runs", "2", "--per-run"]
    assert main(argv + ["--resume", str(ck), "--out", str(out_first)]) == 0
    _truncate_checkpoint(ck, keep=1)
    assert main(argv + ["--resume", str(ck), "--out", str(out_second)]) == 0
    assert out_first.read_bytes() == out_second.read_bytes()
