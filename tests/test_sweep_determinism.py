"""Property-style determinism guarantees of the sweep machinery.

The sweep contract (EXPERIMENTS.md) is that per-run seeds derive from the
cell coordinates alone, so (a) extending a grid — more systems, rates or
replications — leaves every previously-existing cell byte-identical, and
(b) seeds never collide across distinct cells of a realistic grid.
"""

import json

from repro.__main__ import main
from repro.experiments import SweepSpec, run_seed, sweep
from repro.experiments.report import run_to_dict, to_json


def _cell_json(result, system, rate):
    return [to_json(run_to_dict(run)) for run in result.cell_runs(system, rate)]


def test_extending_grid_keeps_existing_cells_byte_identical():
    base = SweepSpec(
        systems=("frodo3", "upnp"),
        failure_rates=(0.0, 0.2),
        runs_per_cell=2,
        base_seed=13,
    )
    extended = SweepSpec(
        systems=("frodo3", "upnp", "jini1"),
        failure_rates=(0.0, 0.2, 0.4),
        runs_per_cell=3,
        base_seed=13,
    )
    small = sweep(base)
    big = sweep(extended)
    for system, _n_users, rate in base.cells():
        before = _cell_json(small, system, rate)
        after = _cell_json(big, system, rate)[: base.runs_per_cell]
        assert before == after, f"cell ({system}, {rate}) changed when the grid grew"


def test_run_seeds_never_collide_on_realistic_grid():
    systems = ("frodo2", "frodo3", "upnp", "jini1", "jini2")
    rates = tuple(i / 10.0 for i in range(9))  # 0 % .. 80 %
    replications = 20
    seeds = {
        run_seed(0, system, rate, index)
        for system in systems
        for rate in rates
        for index in range(replications)
    }
    assert len(seeds) == len(systems) * len(rates) * replications


def test_cli_full_cross_system_sweep_is_deterministic(tmp_path):
    """The paper's full comparison runs through the CLI with zero runner changes."""
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    argv = [
        "sweep",
        "--system",
        "upnp,jini1,jini2,frodo2,frodo3",
        "--rates",
        "0",
        "--runs",
        "2",
    ]
    assert main(argv + ["--out", str(out_a)]) == 0
    assert main(argv + ["--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    data = json.loads(out_a.read_text())
    summaries = {s["system"]: s for s in data["summaries"]}
    assert set(summaries) == {"upnp", "jini1", "jini2", "frodo2", "frodo3"}
    for system, summary in summaries.items():
        assert summary["effectiveness"] == 1.0, system
        assert summary["efficiency_degradation"] == 1.0, system
