"""Tests for the pluggable deployment registry."""

import pytest

from repro.core.consistency import ConsistencyTracker
from repro.net.network import Network
from repro.protocols.base import ProtocolDeployment
from repro.protocols.registry import (
    SYSTEMS,
    DeploymentRegistry,
    UnknownSystemError,
    build_system,
    system_names,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def make_substrate():
    sim = Simulator()
    rng = RngRegistry(7)
    return sim, Network(sim, rng), ConsistencyTracker()


def test_standard_systems_registered():
    assert "frodo3" in SYSTEMS
    assert "frodo2" in SYSTEMS
    assert set(system_names()) >= {"frodo2", "frodo3", "jini", "jini1", "jini2", "upnp"}
    assert SYSTEMS.get("frodo3").m_prime_at(5) == 7


def test_m_prime_is_a_closed_form():
    # Table 2 shapes, evaluated at arbitrary N instead of pinned at 5.
    assert SYSTEMS.get("frodo3").m_prime_at(100) == 102
    assert SYSTEMS.get("upnp").m_prime_at(100) == 300
    assert SYSTEMS.get("jini").m_prime_at(100) == 102
    assert SYSTEMS.get("jini").m_prime_at(100, {"k": 4}) == 408
    assert SYSTEMS.get("jini2").m_prime_at(100) == 204


def test_resolve_bare_name_keeps_token_bare():
    resolved = SYSTEMS.resolve("jini2")
    assert resolved.token == "jini2"
    assert resolved.name == "jini2"
    assert resolved.m_prime(5) == 14


def test_resolve_canonicalises_parameter_tokens():
    a = SYSTEMS.resolve("jini@mode=gossip,k=8")
    b = SYSTEMS.resolve("jini@k=8, mode=gossip")
    assert a.token == b.token == "jini@k=8,mode=gossip"
    assert a.m_prime(5) == 56


def test_resolve_rejects_unknown_and_mistyped_options():
    with pytest.raises(ValueError, match="does not accept"):
        SYSTEMS.resolve("jini@nope=1")
    with pytest.raises(ValueError, match="must be an integer"):
        SYSTEMS.resolve("jini@k=2.5")
    with pytest.raises(ValueError, match="must be a string"):
        SYSTEMS.resolve("jini@mode=3")
    with pytest.raises(ValueError, match="must be a bool"):
        SYSTEMS.resolve("jini@report=2")


def test_frozen_aliases_reject_options():
    for name in ("jini1", "jini2"):
        entry = SYSTEMS.get(name)
        assert entry.frozen
        with pytest.raises(ValueError, match="frozen alias"):
            SYSTEMS.resolve(f"{name}@k=3")
    assert SYSTEMS.get("jini1").alias_of == "jini@k=1,report=false"
    assert SYSTEMS.get("jini2").alias_of == "jini@k=2,report=false"


def test_register_alias_pins_target_parameters():
    registry = DeploymentRegistry()
    builder = lambda sim, network, tracker, **kw: ProtocolDeployment(sim, network, tracker)
    registry.register(
        "fam",
        builder,
        m_prime=lambda n, k=1, **_: (n + 2) * k,
        params={"k": 1},
    )
    alias = registry.register_alias("fam4", "fam@k=4")
    assert alias.frozen
    assert alias.alias_of == "fam@k=4"
    assert alias.m_prime_at(5) == 28
    assert registry.resolve("fam4").m_prime(10) == 48


def test_build_system_constructs_expected_topology():
    sim, network, tracker = make_substrate()
    deployment = build_system("frodo3", sim, network, tracker, n_users=3)
    assert deployment.system == "frodo3"
    assert len(deployment.users) == 3
    assert len(deployment.managers) == 1
    assert len(deployment.registries) == 1
    assert len(deployment.node_ids()) == len(deployment.all_nodes)


def test_builder_does_not_mutate_caller_config():
    from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode

    config = FrodoConfig(subscription_mode=SubscriptionMode.TWO_PARTY)
    sim, network, tracker = make_substrate()
    deployment = build_system("frodo3", sim, network, tracker, config=config)
    assert deployment.system == "frodo3"  # the registry name pins the mode ...
    assert config.subscription_mode is SubscriptionMode.TWO_PARTY  # ... on a copy


def test_unknown_system_error_lists_known_names():
    with pytest.raises(UnknownSystemError) as excinfo:
        SYSTEMS.get("upnp-nope")
    message = str(excinfo.value)
    assert "upnp-nope" in message
    assert "frodo3" in message


def test_duplicate_registration_rejected_unless_replace():
    registry = DeploymentRegistry()
    builder = lambda sim, network, tracker, **kw: ProtocolDeployment(sim, network, tracker)
    registry.register("x", builder)
    with pytest.raises(ValueError):
        registry.register("x", builder)
    registry.register("x", builder, replace=True)
    assert len(registry) == 1


def test_builder_must_return_deployment():
    registry = DeploymentRegistry()
    registry.register("bad", lambda sim, network, tracker, **kw: object())
    sim, network, tracker = make_substrate()
    with pytest.raises(TypeError):
        registry.build("bad", sim, network, tracker)


def test_registry_validates_metadata():
    registry = DeploymentRegistry()
    builder = lambda sim, network, tracker, **kw: ProtocolDeployment(sim, network, tracker)
    with pytest.raises(ValueError):
        registry.register("", builder)
    with pytest.raises(ValueError):
        registry.register("y", builder, m_prime=0)
