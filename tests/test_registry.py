"""Tests for the pluggable deployment registry."""

import pytest

from repro.core.consistency import ConsistencyTracker
from repro.net.network import Network
from repro.protocols.base import ProtocolDeployment
from repro.protocols.registry import (
    SYSTEMS,
    DeploymentRegistry,
    UnknownSystemError,
    build_system,
    system_names,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def make_substrate():
    sim = Simulator()
    rng = RngRegistry(7)
    return sim, Network(sim, rng), ConsistencyTracker()


def test_standard_systems_registered():
    assert "frodo3" in SYSTEMS
    assert "frodo2" in SYSTEMS
    assert set(system_names()) >= {"frodo2", "frodo3"}
    assert SYSTEMS.get("frodo3").m_prime == 7


def test_build_system_constructs_expected_topology():
    sim, network, tracker = make_substrate()
    deployment = build_system("frodo3", sim, network, tracker, n_users=3)
    assert deployment.system == "frodo3"
    assert len(deployment.users) == 3
    assert len(deployment.managers) == 1
    assert len(deployment.registries) == 1
    assert len(deployment.node_ids()) == len(deployment.all_nodes)


def test_builder_does_not_mutate_caller_config():
    from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode

    config = FrodoConfig(subscription_mode=SubscriptionMode.TWO_PARTY)
    sim, network, tracker = make_substrate()
    deployment = build_system("frodo3", sim, network, tracker, config=config)
    assert deployment.system == "frodo3"  # the registry name pins the mode ...
    assert config.subscription_mode is SubscriptionMode.TWO_PARTY  # ... on a copy


def test_unknown_system_error_lists_known_names():
    with pytest.raises(UnknownSystemError) as excinfo:
        SYSTEMS.get("upnp-nope")
    message = str(excinfo.value)
    assert "upnp-nope" in message
    assert "frodo3" in message


def test_duplicate_registration_rejected_unless_replace():
    registry = DeploymentRegistry()
    builder = lambda sim, network, tracker, **kw: ProtocolDeployment(sim, network, tracker)
    registry.register("x", builder)
    with pytest.raises(ValueError):
        registry.register("x", builder)
    registry.register("x", builder, replace=True)
    assert len(registry) == 1


def test_builder_must_return_deployment():
    registry = DeploymentRegistry()
    registry.register("bad", lambda sim, network, tracker, **kw: object())
    sim, network, tracker = make_substrate()
    with pytest.raises(TypeError):
        registry.build("bad", sim, network, tracker)


def test_registry_validates_metadata():
    registry = DeploymentRegistry()
    builder = lambda sim, network, tracker, **kw: ProtocolDeployment(sim, network, tracker)
    with pytest.raises(ValueError):
        registry.register("", builder)
    with pytest.raises(ValueError):
        registry.register("y", builder, m_prime=0)
