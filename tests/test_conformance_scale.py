"""Large-topology conformance battery (N = 100 users, every system).

The paper's experiments run at N = 5; the large-N hot path must not change
what the protocols *do*, only how fast the simulator executes them.  This
battery re-asserts the core zero-failure invariants at N = 100 for every
registered system:

* every one of the 100 Users reaches the changed version before the deadline
  (effectiveness 1.0),
* the measured update-message count *y* equals the closed-form m′ evaluated
  at N = 100 (Efficiency Degradation 1.0) — FRODO's N + 2, UPnP's 3N, and
  Jini's (N + 2) x registries all scale with N, so a lease/renewal bug that
  only shows at scale (e.g. subscriptions silently expiring) fails here
  loudly.

One run per system is shared across the assertions; at N = 100 the runs cost
fractions of a second to a couple of seconds each.
"""

import pytest

from repro.core.metrics import MetricSummary
from repro.experiments import ExperimentRunner, ScenarioSpec
from repro.protocols.registry import SYSTEMS

N_USERS = 100

#: Closed-form m' at N users (Table 2 shapes at registries used by each system).
M_PRIME_AT_N = {
    "frodo2": lambda n: n + 2,
    "frodo3": lambda n: n + 2,
    "upnp": lambda n: 3 * n,
    "jini": lambda n: n + 2,
    "jini1": lambda n: n + 2,
    "jini2": lambda n: 2 * (n + 2),
}

ALL_SYSTEMS = SYSTEMS.names()

_runs = {}


def scale_run(system):
    """One shared zero-failure N=100 run (result + context) per system."""
    if system not in _runs:
        runner = ExperimentRunner()
        context = runner.setup(
            ScenarioSpec(system=system, failure_rate=0.0, seed=1234, n_users=N_USERS)
        )
        _runs[system] = (runner.execute(context), context)
    return _runs[system]


def test_battery_covers_the_paper_comparison():
    assert set(M_PRIME_AT_N) == {"frodo2", "frodo3", "upnp", "jini", "jini1", "jini2"}
    assert set(ALL_SYSTEMS) >= set(M_PRIME_AT_N)


@pytest.mark.parametrize("system", ALL_SYSTEMS)
@pytest.mark.parametrize("n_users", [5, N_USERS])
def test_registry_m_prime_matches_deployment(system, n_users):
    """The registry's closed form and the built deployment agree at every N
    (the metadata-drift regression the callable m' redesign fixed)."""
    runner = ExperimentRunner()
    context = runner.setup(
        ScenarioSpec(system=system, failure_rate=0.0, seed=99, n_users=n_users)
    )
    try:
        assert SYSTEMS.resolve(system).m_prime(n_users) == context.deployment.m_prime
    finally:
        context.deployment.stop()
        context.injector.stop()
        context.sim.tracer.close()


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_scale_run_updates_every_user(system):
    result, _ = scale_run(system)
    assert result.n_users == N_USERS
    assert result.details["changed_version"] == 2
    for when in result.user_update_times.values():
        assert when is not None
        assert result.change_time <= when < result.deadline


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_scale_run_hits_closed_form_m_prime(system):
    result, context = scale_run(system)
    expected = M_PRIME_AT_N[system](N_USERS)
    assert context.deployment.m_prime == expected
    assert result.update_message_count == expected


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_scale_run_metrics_are_perfect(system):
    result, context = scale_run(system)
    summary = MetricSummary.from_runs([result], context.deployment.m_prime)
    assert summary.n_users == N_USERS
    assert summary.effectiveness == 1.0
    assert summary.efficiency_degradation == 1.0
    assert summary.responsiveness > 0.0
