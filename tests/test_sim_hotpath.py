"""Regression battery for the flattened simulator core.

Pins the semantics the large-N hot path must preserve: the two-way merge of
the timer-wheel heap with the event calendar (identical firing order to a
single flat calendar), Event cancel/fired state transitions, fire-and-forget
posting, and — critically — that lazy heap compaction keeps the *same list
object*, because the engine's run loop aliases both heaps for the whole run.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.timers import OneShotTimer, PeriodicTimer, TimerWheel


# --------------------------------------------------------------- Event record
def test_event_cancel_and_fired_state_transitions():
    event = Event(1.0, 0, 7, lambda: None)
    assert not event.cancelled and not event.fired
    assert event.key == (1.0, 0, 7)
    assert event.fire() is None  # callback returns None
    assert event.fired
    cancelled = Event(2.0, 0, 8, lambda: pytest.fail("must not run"))
    cancelled.cancelled = True
    assert cancelled.fire() is None  # cancelled events never execute
    assert not cancelled.fired


def test_event_ordering_is_time_then_priority_then_sequence():
    a = Event(1.0, 0, 1, lambda: None)
    b = Event(1.0, 0, 2, lambda: None)
    c = Event(1.0, -1, 3, lambda: None)
    d = Event(0.5, 5, 4, lambda: None)
    assert d < c < a < b


# -------------------------------------------------- wheel/calendar merge order
def test_timers_and_events_fire_in_one_total_order():
    """The wheel shares the calendar's sequence counter: interleaved schedules
    at the same instant fire in program order, exactly as a flat calendar."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "event-1")
    sim.timers.schedule(1.0, fired.append, "timer-1")
    sim.post(1.0, fired.append, "post-1")
    sim.timers.schedule(1.0, fired.append, "timer-2")
    sim.schedule(1.0, fired.append, "event-2")
    sim.run()
    assert fired == ["event-1", "timer-1", "post-1", "timer-2", "event-2"]
    assert sim.executed_events == 5


def test_timer_priority_beats_insertion_order_across_heaps():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "normal-event")
    sim.timers.schedule(1.0, fired.append, "urgent-timer", priority=-1)
    sim.run()
    assert fired == ["urgent-timer", "normal-event"]


def test_step_merges_both_heaps():
    sim = Simulator()
    fired = []
    sim.timers.schedule(1.0, fired.append, "timer")
    sim.schedule(2.0, fired.append, "event")
    assert sim.step() is True
    assert fired == ["timer"] and sim.now == 1.0
    assert sim.step() is True
    assert fired == ["timer", "event"] and sim.now == 2.0
    assert sim.step() is False


def test_run_until_leaves_future_timers_armed():
    sim = Simulator()
    fired = []
    sim.timers.schedule(10.0, fired.append, "late-timer")
    sim.schedule(1.0, fired.append, "early")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late-timer"]


def test_timer_wheel_rejects_past_and_negative_times():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.timers.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.timers.schedule_at(9.0, lambda: None)


def test_timer_cancellation_and_live_count():
    sim = Simulator()
    wheel = sim.timers
    fired = []
    keep = wheel.schedule(2.0, fired.append, "kept")
    drop = wheel.schedule(1.0, fired.append, "dropped")
    assert len(wheel) == 2
    assert wheel.cancel(drop) is True
    assert wheel.cancel(drop) is False
    assert len(wheel) == 1
    assert wheel.peek_time() == 2.0
    sim.run()
    assert fired == ["kept"]
    assert len(wheel) == 0
    assert wheel.cancel(keep) is False  # fired timers cannot be cancelled


# ------------------------------------------------- compaction aliasing (bugfix)
def _trigger_compaction(schedule, cancel, count=200):
    """Arm ``count`` timers and cancel them all, crossing the compaction
    threshold (dead > 64 and dead > half the heap)."""
    handles = [schedule(float(i + 1)) for i in range(count)]
    for handle in handles:
        cancel(handle)


def test_wheel_compaction_keeps_heap_list_identity():
    """Compaction must mutate the heap in place: the run loop aliases the
    list, so rebinding it silently orphans every later-scheduled timer."""
    sim = Simulator()
    wheel = sim.timers
    alias = wheel._heap
    _trigger_compaction(
        lambda t: wheel.schedule(t, lambda: None),
        wheel.cancel,
    )
    assert wheel._heap is alias
    assert len(wheel) == 0


def test_queue_compaction_keeps_heap_list_identity():
    queue = EventQueue()
    alias = queue._heap
    _trigger_compaction(
        lambda t: queue.push(t, lambda: None),
        queue.cancel,
    )
    assert queue._heap is alias
    assert len(queue) == 0


def test_timers_scheduled_after_mid_run_compaction_still_fire():
    """End-to-end form of the aliasing regression: cross the compaction
    threshold while the run loop is active, then re-arm — the re-armed
    timers must still fire."""
    sim = Simulator()
    fired = []

    def churn() -> None:
        _trigger_compaction(
            lambda t: sim.timers.schedule(t + 50.0, lambda: None),
            sim.timers.cancel,
        )
        sim.timers.schedule(1.0, fired.append, "after-wheel-compaction")
        handles = [sim.schedule(60.0, lambda: None) for _ in range(200)]
        for handle in handles:
            handle.cancel()
        sim.post(2.0, fired.append, "after-queue-compaction")

    sim.schedule(1.0, churn)
    sim.run(until=100.0)
    assert fired == ["after-wheel-compaction", "after-queue-compaction"]


def test_periodic_timer_survives_heavy_cancellation_churn():
    """A renewal-style periodic timer must keep ticking while other nodes'
    timers are cancelled en masse (the FRODO large-N pattern)."""
    sim = Simulator()
    ticks = []
    renewal = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
    renewal.start()

    churn_timer = PeriodicTimer(sim, 7.0, lambda: _trigger_compaction(
        lambda t: sim.timers.schedule(t + 100.0, lambda: None),
        sim.timers.cancel,
        count=80,
    ))
    churn_timer.start()
    sim.run(until=100.0)
    assert ticks == [10.0 * i for i in range(1, 11)]


# ----------------------------------------------------------- timer helpers
def test_one_shot_timer_restart_replaces_deadline():
    sim = Simulator()
    fired = []
    timer = OneShotTimer(sim, lambda tag: fired.append((sim.now, tag)))
    timer.start(5.0, "first")
    assert timer.armed
    timer.start(2.0, "second")  # re-arm replaces the pending deadline
    sim.run()
    assert fired == [(2.0, "second")]
    assert not timer.armed


def test_one_shot_timer_cancel_disarms():
    sim = Simulator()
    timer = OneShotTimer(sim, lambda: pytest.fail("must not fire"))
    timer.start(1.0)
    timer.cancel()
    assert not timer.armed
    sim.run()


def test_periodic_timer_initial_delay_and_stop():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
    timer.start(initial_delay=3.0)
    assert timer.running
    sim.schedule(25.0, timer.stop)
    sim.run(until=100.0)
    assert ticks == [3.0, 13.0, 23.0]
    assert not timer.running


def test_fresh_wheel_belongs_to_its_simulator():
    sim = Simulator()
    assert isinstance(sim.timers, TimerWheel)
    other = Simulator()
    assert other.timers is not sim.timers
