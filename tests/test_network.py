"""Unit tests for the network substrate: delays, interface outages, multicast."""

import pytest

from repro.net.addressing import MULTICAST_GROUP
from repro.net.interfaces import Endpoint
from repro.net.messages import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def make_network(n_nodes=3):
    sim = Simulator()
    network = Network(sim, RngRegistry(1234))
    inboxes = {}
    for index in range(n_nodes):
        address = f"node-{index}"
        inbox = []
        inboxes[address] = inbox
        network.join(Endpoint(address, handler=inbox.append))
    return sim, network, inboxes


def msg(sender, receiver, kind="ping", update_related=False):
    return Message(
        sender=sender, receiver=receiver, protocol="test", kind=kind, update_related=update_related
    )


def test_unicast_delay_within_table3_bounds():
    sim, network, inboxes = make_network(2)
    for _ in range(50):
        network.transmit_unicast(msg("node-0", "node-1"))
    sim.run()
    assert len(inboxes["node-1"]) == 50
    # Every delivery event happened between 10 and 100 microseconds after t=0.
    assert network.config.min_delay == pytest.approx(10e-6)
    assert network.config.max_delay == pytest.approx(100e-6)
    assert sim.now <= network.config.max_delay
    for _ in range(200):
        delay = network.transmission_delay()
        assert network.config.min_delay <= delay <= network.config.max_delay


def test_unicast_dropped_when_sender_tx_down():
    sim, network, inboxes = make_network(2)
    network.endpoint("node-0").interface.fail(tx=True)
    sent = network.transmit_unicast(msg("node-0", "node-1"))
    sim.run()
    assert sent is False
    assert inboxes["node-1"] == []
    assert network.endpoint("node-0").interface.counters.dropped_tx == 1
    # Nothing left the transmitter, so no traffic was recorded.
    assert len(network.stats) == 0


def test_unicast_dropped_when_receiver_rx_down_at_delivery():
    sim, network, inboxes = make_network(2)
    network.endpoint("node-1").interface.fail(rx=True)
    sent = network.transmit_unicast(msg("node-0", "node-1"))
    sim.run()
    # The message left the wire (and is counted as traffic) but was not delivered.
    assert sent is True
    assert inboxes["node-1"] == []
    assert network.endpoint("node-1").interface.counters.dropped_rx == 1
    assert len(network.stats) == 1


def test_interface_restore_resumes_delivery():
    sim, network, inboxes = make_network(2)
    interface = network.endpoint("node-1").interface
    interface.fail(rx=True)
    interface.restore(rx=True)
    network.transmit_unicast(msg("node-0", "node-1"))
    sim.run()
    assert len(inboxes["node-1"]) == 1


def test_multicast_reaches_all_other_nodes():
    sim, network, inboxes = make_network(4)
    sent = network.transmit_multicast(msg("node-0", MULTICAST_GROUP))
    sim.run()
    assert sent is True
    assert inboxes["node-0"] == []  # the sender does not hear itself
    for address in ("node-1", "node-2", "node-3"):
        assert len(inboxes[address]) == 1


def test_multicast_return_value_honest_when_tx_down():
    """Satellite fix: transmit_multicast must not report success blindly."""
    sim, network, inboxes = make_network(3)
    network.endpoint("node-0").interface.fail(tx=True)
    sent = network.transmit_multicast(msg("node-0", MULTICAST_GROUP))
    sim.run()
    assert sent is False
    assert all(inbox == [] for inbox in inboxes.values())
    assert network.endpoint("node-0").interface.counters.dropped_tx == 1
    # Nothing left the transmitter, so no traffic was recorded (unicast rule).
    assert len(network.stats) == 0


def test_multicast_recorded_once_by_first_copy_that_leaves():
    sim, network, inboxes = make_network(2)
    interface = network.endpoint("node-0").interface
    interface.fail(tx=True)
    # Restore the transmitter between the first and second redundant copy.
    sim.schedule(network.config.multicast_copy_spacing / 2, interface.restore, True)
    sent = network.transmit_multicast(msg("node-0", MULTICAST_GROUP), copies=3)
    sim.run()
    assert sent is False  # the first copy was blocked ...
    assert len(inboxes["node-1"]) == 2  # ... but copies 2 and 3 got through
    assert network.stats.total_sent() == 1  # logical send recorded exactly once
    assert interface.counters.dropped_tx == 1


def test_multicast_redundant_copies_recorded_once():
    sim, network, inboxes = make_network(2)
    network.transmit_multicast(msg("node-0", MULTICAST_GROUP), copies=3)
    sim.run()
    # Three copies arrive, spaced by the copy interval ...
    assert len(inboxes["node-1"]) == 3
    spacing = network.config.multicast_copy_spacing
    assert sim.now == pytest.approx(2 * spacing, abs=network.config.max_delay)
    # ... but the logical announcement is recorded once, with its copy count.
    assert network.stats.total_sent() == 1
    assert network.stats.total_sent(count_copies=True) == 3


def test_multicast_requires_group_address():
    sim, network, _ = make_network(2)
    with pytest.raises(ValueError):
        network.transmit_multicast(msg("node-0", "node-1"))


def test_duplicate_join_rejected():
    sim, network, _ = make_network(2)
    with pytest.raises(ValueError):
        network.join(Endpoint("node-0", handler=lambda m: None))
