"""Tests for the shared ``name@key=value,...`` token grammar.

One grammar backs both the ``--scenario`` and ``--system`` front ends
(:mod:`repro.experiments.tokens`); these tests pin its parsing, canonical
formatting, error wording, and the comma-disambiguation of token lists.
"""

import pytest

from repro.experiments.scenarios import parse_scenario, scenario_token
from repro.experiments.tokens import (
    canonical_token,
    format_option_value,
    parse_option_value,
    parse_token,
    split_token_list,
)
from repro.protocols.registry import parse_system, system_token


# --------------------------------------------------------------------------- values
def test_option_values_parse_by_shape():
    assert parse_option_value("true") is True
    assert parse_option_value("False") is False
    assert parse_option_value("8") == 8
    assert parse_option_value("0.25") == 0.25
    assert parse_option_value("gossip") == "gossip"


def test_option_values_format_canonically():
    assert format_option_value(True) == "true"
    assert format_option_value(False) == "false"
    assert format_option_value(8) == "8"
    assert format_option_value(0.25) == "0.25"
    assert format_option_value("gossip") == "gossip"


def test_value_round_trip():
    for value in (True, False, 8, 0.25, "gossip"):
        assert parse_option_value(format_option_value(value)) == value


# --------------------------------------------------------------------------- parse/canonical
def test_parse_token_bare_name():
    assert parse_token("jini") == ("jini", {})
    assert parse_token("  jini  ") == ("jini", {})


def test_parse_token_with_options():
    name, options = parse_token("jini@k=8, mode=gossip, ttl=30.0")
    assert name == "jini"
    assert options == {"k": 8, "mode": "gossip", "ttl": 30.0}


def test_canonical_token_sorts_and_formats():
    assert canonical_token("jini", {}) == "jini"
    assert (
        canonical_token("jini", {"mode": "gossip", "k": 8, "report": False})
        == "jini@k=8,mode=gossip,report=false"
    )


def test_parse_canonical_round_trip():
    token = "jini@gossip_interval=60.0,k=4,mode=gossip"
    assert canonical_token(*parse_token(token)) == token


# --------------------------------------------------------------------------- errors
@pytest.mark.parametrize(
    "text,fragment",
    [
        ("", "has no name"),
        ("@k=1", "has no name"),
        ("jini@", "dangling '@'"),
        ("jini@k", "must look like key=value"),
        ("jini@k=", "must look like key=value"),
        ("jini@=1", "must look like key=value"),
        ("jini@k=1,k=2", "duplicate"),
    ],
)
def test_parse_token_rejects_malformed_input(text, fragment):
    with pytest.raises(ValueError, match=fragment):
        parse_token(text)


def test_error_wording_carries_the_front_end_label():
    with pytest.raises(ValueError, match="scenario token '@' has no name"):
        parse_scenario("@")
    with pytest.raises(ValueError, match="system token '@' has no name"):
        parse_system("@")


def test_front_ends_share_the_grammar():
    # Identical parsing and canonicalisation through both wrappers.
    assert parse_scenario("churn@rate=0.2") == ("churn", {"rate": 0.2})
    assert parse_system("jini@k=2") == ("jini", {"k": 2})
    assert scenario_token("churn", {"rate": 0.2}) == "churn@rate=0.2"
    assert system_token("jini", {"k": 2}) == "jini@k=2"


# --------------------------------------------------------------------------- token lists
def test_split_token_list_plain_names():
    assert split_token_list("frodo3,upnp,jini2") == ["frodo3", "upnp", "jini2"]


def test_split_token_list_keeps_option_commas_with_their_token():
    assert split_token_list("upnp,jini@k=8,mode=gossip,frodo3") == [
        "upnp",
        "jini@k=8,mode=gossip",
        "frodo3",
    ]


def test_split_token_list_tolerates_whitespace_and_empties():
    assert split_token_list(" frodo3 , , jini@k=2 ") == ["frodo3", "jini@k=2"]
    assert split_token_list("") == []
