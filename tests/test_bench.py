"""Bench subsystem: workload catalogue, timing harness, BENCH_sweep.json."""

import json

import pytest

from repro.bench import (
    BenchWorkload,
    bench_to_dict,
    find_workload,
    format_bench_table,
    run_bench,
    standard_workloads,
    time_workload,
    write_bench_json,
)
from repro.bench.workloads import FULL_RATES, FULL_RUNS, QUICK_RATES, QUICK_RUNS
from repro.experiments import SweepSpec
from repro.protocols.registry import SYSTEMS
from repro.__main__ import main

TINY = BenchWorkload(
    name="tiny",
    spec=SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=1, base_seed=3),
)


def test_standard_workloads_cover_every_system_and_the_full_grid():
    for quick, rates, runs in ((True, QUICK_RATES, QUICK_RUNS), (False, FULL_RATES, FULL_RUNS)):
        workloads = standard_workloads(quick=quick)
        names = [workload.name for workload in workloads]
        for system in SYSTEMS.names():
            assert f"system:{system}" in names
        grid = workloads[-1]
        assert grid.name == f"grid:{len(SYSTEMS.names())}-system"
        assert tuple(grid.spec.systems) == tuple(SYSTEMS.names())
        for workload in workloads:
            assert tuple(workload.spec.failure_rates) == tuple(rates)
            assert workload.spec.runs_per_cell == runs
            assert workload.cells == workload.spec.total_runs


def test_find_workload_rejects_unknown_names():
    workloads = standard_workloads(quick=True)
    assert find_workload("system:frodo3", workloads).name == "system:frodo3"
    with pytest.raises(ValueError, match="unknown bench workload"):
        find_workload("nope", workloads)


def test_time_workload_measures_both_paths_and_checks_identity():
    record = time_workload(TINY, jobs=2)
    assert record.name == "tiny"
    assert record.cells == 1
    assert record.jobs == 2
    assert record.identical is True
    assert record.serial_seconds > 0 and record.parallel_seconds > 0
    assert record.speedup == pytest.approx(record.serial_seconds / record.parallel_seconds)
    assert record.serial_cells_per_sec == pytest.approx(1.0 / record.serial_seconds)


def test_time_workload_validates_arguments():
    with pytest.raises(ValueError, match="jobs >= 2"):
        time_workload(TINY, jobs=1)
    with pytest.raises(ValueError, match="repeats"):
        time_workload(TINY, jobs=2, repeats=0)


def test_bench_payload_shape_and_file_output(tmp_path):
    seen = []
    records = run_bench([TINY], jobs=2, observer=seen.append)
    assert [record.name for record in seen] == ["tiny"]
    data = bench_to_dict(records, quick=True, repeats=1)
    assert data["schema"] == 1
    assert data["quick"] is True
    assert set(data["environment"]) == {"python", "machine", "cpus"}
    assert data["totals"]["cells"] == 1
    assert data["totals"]["all_identical"] is True
    (workload,) = data["workloads"]
    assert workload["name"] == "tiny"
    path = tmp_path / "bench.json"
    text = write_bench_json(data, str(path))
    assert json.loads(path.read_text()) == data
    assert text.endswith("\n")
    table = format_bench_table(records)
    assert "tiny" in table and "speedup" in table


def test_cli_bench_subcommand(tmp_path, capsys):
    out = tmp_path / "BENCH_sweep.json"
    argv = [
        "bench",
        "--quick",
        "--jobs",
        "2",
        "--workload",
        "system:frodo3",
        "--out",
        str(out),
        "--table",
    ]
    assert main(argv) == 0
    data = json.loads(out.read_text())
    assert data["workloads"][0]["name"] == "system:frodo3"
    assert data["workloads"][0]["identical"] is True
    assert "system:frodo3" in capsys.readouterr().err
