"""Bench subsystem: workload catalogue, timing harness, BENCH_sweep.json."""

import json

import pytest

from repro.bench import (
    BenchWorkload,
    bench_to_dict,
    check_regression,
    find_workload,
    format_bench_table,
    load_baseline,
    run_bench,
    standard_workloads,
    time_workload,
    write_bench_json,
)
from repro.bench.workloads import FULL_RATES, FULL_RUNS, QUICK_RATES, QUICK_RUNS
from repro.experiments import SweepSpec
from repro.protocols.registry import SYSTEMS
from repro.__main__ import main

TINY = BenchWorkload(
    name="tiny",
    spec=SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=1, base_seed=3),
)


def test_standard_workloads_cover_every_system_and_the_full_grid():
    for quick, rates, runs in ((True, QUICK_RATES, QUICK_RUNS), (False, FULL_RATES, FULL_RUNS)):
        workloads = standard_workloads(quick=quick)
        names = [workload.name for workload in workloads]
        for system in SYSTEMS.names():
            assert f"system:{system}" in names
            assert f"system:{system}@100" in names
        grid = find_workload(f"grid:{len(SYSTEMS.names())}-system", workloads)
        assert tuple(grid.spec.systems) == tuple(SYSTEMS.names())
        assert tuple(grid.spec.failure_rates) == tuple(rates)
        assert grid.spec.runs_per_cell == runs
        for workload in workloads:
            assert workload.cells == workload.spec.total_runs


def test_scale_workloads_pin_topology_sizes():
    full = standard_workloads(quick=False)
    quick = standard_workloads(quick=True)
    assert find_workload("system:frodo3@1000", full).users == [1000]
    assert find_workload("system:frodo3@10000", full).users == [10000]
    assert find_workload("system:upnp@100", full).users == [100]
    assert find_workload("users-scaling", full).users == [5, 100, 1000]
    # The multi-minute N=10000 cell stays out of CI's quick variant.
    quick_names = [workload.name for workload in quick]
    assert "system:frodo3@10000" not in quick_names
    assert find_workload("users-scaling", quick).users == [5, 100]


def test_federation_workloads_cover_the_k_grid():
    for quick in (True, False):
        workloads = standard_workloads(quick=quick)
        for k in (2, 4, 8):
            workload = find_workload(f"federation:jini@k={k}", workloads)
            assert workload.spec.systems == (f"jini@k={k}",)
        gossip = find_workload(
            "federation:jini@assign=partition,k=4,mode=gossip,topology=ring", workloads
        )
        assert gossip.spec.systems == ("jini@assign=partition,k=4,mode=gossip,topology=ring",)


def test_find_workload_rejects_unknown_names():
    workloads = standard_workloads(quick=True)
    assert find_workload("system:frodo3", workloads).name == "system:frodo3"
    with pytest.raises(ValueError, match="unknown bench workload"):
        find_workload("nope", workloads)


def test_time_workload_measures_both_paths_and_checks_identity():
    record = time_workload(TINY, jobs=2)
    assert record.name == "tiny"
    assert record.cells == 1
    assert record.jobs == 2
    assert record.identical is True
    assert record.serial_seconds > 0 and record.parallel_seconds > 0
    assert record.speedup == pytest.approx(record.serial_seconds / record.parallel_seconds)
    assert record.serial_cells_per_sec == pytest.approx(1.0 / record.serial_seconds)


def test_time_workload_validates_arguments():
    with pytest.raises(ValueError, match="jobs >= 2"):
        time_workload(TINY, jobs=1)
    with pytest.raises(ValueError, match="repeats"):
        time_workload(TINY, jobs=2, repeats=0)


def test_bench_payload_shape_and_file_output(tmp_path):
    seen = []
    records = run_bench([TINY], jobs=2, observer=seen.append)
    assert [record.name for record in seen] == ["tiny"]
    data = bench_to_dict(records, quick=True, repeats=1)
    assert data["schema"] == 3
    assert data["quick"] is True
    assert set(data["environment"]) == {"python", "machine", "cpus"}
    assert data["totals"]["cells"] == 1
    assert data["totals"]["all_identical"] is True
    (workload,) = data["workloads"]
    assert workload["name"] == "tiny"
    path = tmp_path / "bench.json"
    text = write_bench_json(data, str(path))
    assert json.loads(path.read_text()) == data
    assert text.endswith("\n")
    table = format_bench_table(records)
    assert "tiny" in table and "speedup" in table


def _fake_record(name, serial_cps, users=(5,)):
    from repro.bench.harness import BenchRecord

    return BenchRecord(
        name=name,
        cells=10,
        jobs=2,
        serial_seconds=10.0 / serial_cps,
        parallel_seconds=5.0 / serial_cps,
        serial_cells_per_sec=serial_cps,
        parallel_cells_per_sec=2 * serial_cps,
        speedup=2.0,
        identical=True,
        users=tuple(users),
    )


def test_schema_two_records_per_workload_users():
    record = _fake_record("system:frodo3@1000", 1.0, users=(1000,))
    assert record.to_dict()["users"] == [1000]
    data = bench_to_dict([record])
    assert data["schema"] == 3
    assert data["workloads"][0]["users"] == [1000]


def test_check_regression_flags_slowdowns_beyond_tolerance():
    baseline = bench_to_dict([_fake_record("grid:5-system", 100.0)])
    # 15% slower: within the default 20% tolerance.
    assert check_regression([_fake_record("grid:5-system", 85.0)], baseline) == []
    # 30% slower: flagged.
    failures = check_regression([_fake_record("grid:5-system", 70.0)], baseline)
    assert len(failures) == 1 and "grid:5-system" in failures[0]
    # Unknown workloads on either side are ignored (catalogue may grow).
    assert check_regression([_fake_record("system:new@100", 1.0)], baseline) == []
    with pytest.raises(ValueError, match="tolerance"):
        check_regression([], baseline, tolerance=1.5)


def test_load_baseline_round_trip_and_validation(tmp_path):
    data = bench_to_dict([_fake_record("tiny", 10.0)])
    path = tmp_path / "baseline.json"
    write_bench_json(data, str(path))
    assert load_baseline(str(path)) == data
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(ValueError, match="workloads"):
        load_baseline(str(bad))


def test_cli_bench_baseline_gate(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    out = tmp_path / "bench.json"
    argv = [
        "bench",
        "--quick",
        "--jobs",
        "2",
        "--workload",
        "system:frodo3",
        "--out",
        str(out),
    ]
    # Baseline claiming an absurdly high throughput: the gate must fail.
    write_bench_json(
        bench_to_dict([_fake_record("system:frodo3", 1e9)]), str(baseline_path)
    )
    assert main(argv + ["--baseline", str(baseline_path)]) == 1
    assert "perf regression" in capsys.readouterr().err
    # Baseline with a tiny throughput: the gate must pass.
    write_bench_json(
        bench_to_dict([_fake_record("system:frodo3", 1e-9)]), str(baseline_path)
    )
    assert main(argv + ["--baseline", str(baseline_path)]) == 0
    assert "baseline check passed" in capsys.readouterr().err


def test_cli_profile_subcommand(tmp_path):
    out = tmp_path / "profile.txt"
    argv = [
        "profile",
        "--system",
        "frodo3",
        "--users",
        "20",
        "--rate",
        "20",
        "--top",
        "5",
        "--out",
        str(out),
    ]
    assert main(argv) == 0
    text = out.read_text()
    assert text.startswith("# profile frodo3")
    assert "events executed" in text
    assert "cumulative" in text


def test_cli_bench_subcommand(tmp_path, capsys):
    out = tmp_path / "BENCH_sweep.json"
    argv = [
        "bench",
        "--quick",
        "--jobs",
        "2",
        "--workload",
        "system:frodo3",
        "--out",
        str(out),
        "--table",
    ]
    assert main(argv) == 0
    data = json.loads(out.read_text())
    assert data["workloads"][0]["name"] == "system:frodo3"
    assert data["workloads"][0]["identical"] is True
    assert "system:frodo3" in capsys.readouterr().err
