"""CLI regression tests: bad input exits non-zero with a clean error.

Every failure mode must surface as ``error: ...`` on stderr and exit code 2
— never a traceback — including the paths added with the executor layer
(``--jobs``, ``--resume``) and the bench subcommand.
"""

import json

from repro.__main__ import main


def _run(argv, capsys):
    code = main(argv)
    err = capsys.readouterr().err
    return code, err


def test_sweep_unknown_system_is_a_clean_error(capsys):
    code, err = _run(["sweep", "--system", "nope", "--rates", "0", "--runs", "1"], capsys)
    assert code == 2
    assert "unknown system" in err and "Traceback" not in err


def test_sweep_unknown_system_in_comma_list_with_jobs(capsys):
    # Validation happens before any worker process is spawned.
    argv = ["sweep", "--system", "frodo3,nope", "--rates", "0", "--runs", "1", "--jobs", "2"]
    code, err = _run(argv, capsys)
    assert code == 2
    assert "unknown system" in err and "Traceback" not in err


def test_run_unknown_system_is_a_clean_error(capsys):
    code, err = _run(["run", "--system", "nope"], capsys)
    assert code == 2
    assert "unknown system" in err


def test_sweep_invalid_jobs_is_a_clean_error(capsys):
    argv = ["sweep", "--system", "frodo3", "--rates", "0", "--runs", "1", "--jobs", "0"]
    code, err = _run(argv, capsys)
    assert code == 2
    assert "jobs" in err and "Traceback" not in err


def test_sweep_resume_spec_mismatch_is_a_clean_error(tmp_path, capsys):
    ck = tmp_path / "ck.json"
    base = ["--rates", "0", "--runs", "1", "--resume", str(ck), "--out", str(tmp_path / "o.json")]
    assert main(["sweep", "--system", "frodo3"] + base) == 0
    capsys.readouterr()
    code, err = _run(["sweep", "--system", "upnp"] + base, capsys)
    assert code == 2
    assert "different sweep spec" in err and "Traceback" not in err


def test_sweep_resume_corrupt_checkpoint_is_a_clean_error(tmp_path, capsys):
    ck = tmp_path / "ck.json"
    ck.write_text("{broken")
    argv = ["sweep", "--system", "frodo3", "--rates", "0", "--runs", "1", "--resume", str(ck)]
    code, err = _run(argv, capsys)
    assert code == 2
    assert "not valid JSON" in err


def test_bench_unknown_workload_is_a_clean_error(tmp_path, capsys):
    code, err = _run(["bench", "--workload", "nope", "--out", str(tmp_path / "b.json")], capsys)
    assert code == 2
    assert "unknown bench workload" in err


def test_bench_invalid_jobs_is_a_clean_error(tmp_path, capsys):
    code, err = _run(["bench", "--jobs", "1", "--out", str(tmp_path / "b.json")], capsys)
    assert code == 2
    assert "jobs" in err and "Traceback" not in err


def test_sweep_out_still_written_when_resume_used(tmp_path):
    out = tmp_path / "out.json"
    ck = tmp_path / "ck.json"
    argv = [
        "sweep",
        "--system",
        "frodo3",
        "--rates",
        "0",
        "--runs",
        "1",
        "--resume",
        str(ck),
        "--out",
        str(out),
    ]
    assert main(argv) == 0
    assert json.loads(out.read_text())["summaries"][0]["system"] == "frodo3"
