"""End-to-end smoke tests: runner, sweep determinism, failure model, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.core.metrics import RunResult
from repro.experiments import ExperimentRunner, ScenarioSpec, SweepSpec, run_seed, sweep
from repro.experiments.report import sweep_to_dict, to_json
from repro.net.failures import FailureModelConfig, build_interface_failure_plan
from repro.sim.rng import RngRegistry


def test_zero_failure_run_updates_every_user():
    spec = ScenarioSpec(system="frodo3", failure_rate=0.0, seed=42)
    result = ExperimentRunner().run(spec)
    assert isinstance(result, RunResult)
    assert result.n_users == 5
    # Every User regains consistency, microseconds after the change.
    for when in result.user_update_times.values():
        assert when is not None
        assert spec.change_time <= when < spec.change_time + 1.0
    # The zero-failure baseline reproduces the system's own minimum m' = 7.
    assert result.update_message_count == 7
    assert result.details["m_prime"] == 7
    assert result.details["n_outages"] == 0


def test_zero_failure_sweep_metrics():
    spec = SweepSpec(systems=("frodo3",), failure_rates=(0.0,), runs_per_cell=3)
    result = sweep(spec)
    summary = result.summary_for("frodo3", 0.0)
    assert summary.effectiveness == 1.0
    assert summary.update_efficiency == 1.0
    assert summary.efficiency_degradation == 1.0
    assert summary.responsiveness > 0.999


def test_same_seed_reproduces_identical_results():
    spec = ScenarioSpec(system="frodo2", failure_rate=0.3, seed=7)
    first = ExperimentRunner().run(spec)
    second = ExperimentRunner().run(spec)
    assert first == second


def test_sweep_json_byte_identical():
    spec = SweepSpec(
        systems=("frodo3",), failure_rates=(0.0, 0.2), runs_per_cell=2, base_seed=9
    )
    first = to_json(sweep_to_dict(sweep(spec), include_runs=True))
    second = to_json(sweep_to_dict(sweep(spec), include_runs=True))
    assert first == second


def test_run_seeds_are_stable_and_distinct():
    seeds = {
        run_seed(0, system, rate, index)
        for system in ("frodo2", "frodo3")
        for rate in (0.0, 0.1)
        for index in range(5)
    }
    assert len(seeds) == 20  # no collisions across the grid
    # Derivation is position-stable: documented anchor value must never drift.
    assert run_seed(0, "frodo3", 0.0, 0) == run_seed(0, "frodo3", 0.0, 0)


def test_failure_plan_matches_model():
    rng = RngRegistry(5).stream("failures")
    config = FailureModelConfig(sim_duration=5400.0, latest_onset=5400.0)
    plan = build_interface_failure_plan(["a", "b", "c"], 0.2, rng, config=config)
    assert len(plan) == 3
    for outage in plan:
        assert outage.duration == pytest.approx(0.2 * 5400.0)
        assert 100.0 <= outage.start <= 5400.0
        assert outage.mode in ("tx", "rx", "both")
    assert build_interface_failure_plan(["a"], 0.0, rng, config=config) == []
    with pytest.raises(ValueError):
        build_interface_failure_plan(["a"], 1.5, rng, config=config)


def test_nonzero_failure_rate_degrades_efficiency():
    spec = SweepSpec(
        systems=("frodo3",), failure_rates=(0.0, 0.5), runs_per_cell=3, base_seed=1
    )
    result = sweep(spec)
    clean = result.summary_for("frodo3", 0.0)
    failed = result.summary_for("frodo3", 0.5)
    # Failures force extra propagation traffic -> degradation strictly below baseline.
    assert failed.efficiency_degradation < clean.efficiency_degradation
    assert failed.mean_update_messages > clean.mean_update_messages


def test_cli_sweep_acceptance(tmp_path, capsys):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    argv = ["sweep", "--system", "frodo3", "--rates", "0", "--runs", "5"]
    assert main(argv + ["--out", str(out_a)]) == 0
    assert main(argv + ["--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    data = json.loads(out_a.read_text())
    (summary,) = data["summaries"]
    assert summary["system"] == "frodo3"
    assert summary["effectiveness"] == 1.0
    assert summary["runs"] == 5


def test_cli_stdout_and_systems(capsys):
    assert main(["sweep", "--system", "frodo3", "--rates", "0", "--runs", "1", "--out", "-"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["summaries"][0]["effectiveness"] == 1.0
    assert main(["systems"]) == 0
    listing = capsys.readouterr().out
    assert "frodo3" in listing and "frodo2" in listing


def test_cli_unknown_system_is_a_clean_error(capsys):
    assert main(["sweep", "--system", "nope", "--rates", "0", "--runs", "1"]) == 2
    assert "unknown system" in capsys.readouterr().err
