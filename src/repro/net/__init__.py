"""Network substrate.

Implements the transport behaviour of Table 3 in the paper:

* unicast/multicast delivery with a uniform 10-100 microsecond delay,
* UDP: messages lost during interface outages are silently discarded,
* redundant multicast (UPnP/Jini announcements are transmitted 6 times),
* TCP: connection set-up with the 6 s / 24 s / 24 s / 24 s retry schedule and
  a Remote Exception (REX) on failure; data transfer retransmitted until
  success with the retransmission time-out growing 25 % per retry,
* interface failure injection (transmitter and/or receiver outages).
"""

from repro.net.addressing import Address, MULTICAST_GROUP
from repro.net.messages import Message, MessageLayer
from repro.net.interfaces import NetworkInterface, Endpoint
from repro.net.stats import MessageStats
from repro.net.network import Network, NetworkConfig
from repro.net.udp import UdpTransport
from repro.net.tcp import TcpTransport, TcpConfig, RemoteException
from repro.net.multicast import MulticastService
from repro.net.failures import (
    InterfaceOutage,
    FailureModelConfig,
    build_interface_failure_plan,
    FailureInjector,
)

__all__ = [
    "Address",
    "MULTICAST_GROUP",
    "Message",
    "MessageLayer",
    "NetworkInterface",
    "Endpoint",
    "MessageStats",
    "Network",
    "NetworkConfig",
    "UdpTransport",
    "TcpTransport",
    "TcpConfig",
    "RemoteException",
    "MulticastService",
    "InterfaceOutage",
    "FailureModelConfig",
    "build_interface_failure_plan",
    "FailureInjector",
]
