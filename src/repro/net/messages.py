"""Message record passed between nodes.

Messages carry a protocol-specific ``kind`` string plus an arbitrary payload
dictionary.  Two flags drive the paper's message accounting:

* ``layer`` distinguishes service-discovery-layer messages from transport
  overhead (TCP segments, acknowledgements).  Table 2 and the Efficiency
  Degradation metric of the paper count only discovery-layer messages for
  UPnP and Jini ("the ... models do not take into account the messages used
  by the transmission layers").
* ``update_related`` marks messages that are part of propagating a changed
  service description; these are the messages counted as *y* in the Update
  Efficiency / Efficiency Degradation metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.net.addressing import Address, MULTICAST_GROUP

_MSG_COUNTER = itertools.count(1)


class MessageLayer(str, Enum):
    """Which layer a message belongs to for accounting purposes."""

    DISCOVERY = "discovery"
    TRANSPORT = "transport"


@dataclass
class Message:
    """A single protocol message.

    Attributes
    ----------
    sender / receiver:
        Node addresses.  ``receiver`` is :data:`MULTICAST_GROUP` for
        multicast messages.
    protocol:
        Short protocol tag (``"frodo"``, ``"jini"``, ``"upnp"``).
    kind:
        Protocol-specific message type, e.g. ``"service_update"``.
    payload:
        Arbitrary content (service descriptions, lease durations, ...).
    update_related:
        Counted towards *y* in the efficiency metrics when sent at or after
        the service-change time.
    layer:
        Discovery-layer vs transport-layer message (see module docstring).
    size_bytes:
        Nominal size; only used for reporting, not for timing.
    """

    sender: Address
    receiver: Address
    protocol: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    update_related: bool = False
    layer: MessageLayer = MessageLayer.DISCOVERY
    size_bytes: int = 256
    msg_id: int = field(default_factory=lambda: next(_MSG_COUNTER))
    in_reply_to: Optional[int] = None

    @property
    def is_multicast(self) -> bool:
        """``True`` when addressed to the multicast group."""
        return self.receiver == MULTICAST_GROUP

    def reply(
        self,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        update_related: bool = False,
        **extra: Any,
    ) -> "Message":
        """Build a unicast reply from the receiver back to the sender."""
        return Message(
            sender=self.receiver if not self.is_multicast else extra.pop("sender"),
            receiver=self.sender,
            protocol=self.protocol,
            kind=kind,
            payload=dict(payload or {}),
            update_related=update_related,
            in_reply_to=self.msg_id,
            **extra,
        )

    def clone(self) -> "Message":
        """Copy of this message with a fresh message id (used for retransmissions)."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            protocol=self.protocol,
            kind=self.kind,
            payload=dict(self.payload),
            update_related=self.update_related,
            layer=self.layer,
            size_bytes=self.size_bytes,
            in_reply_to=self.in_reply_to,
        )

    def describe(self) -> str:
        """Short human-readable summary used in traces and logs."""
        target = "multicast" if self.is_multicast else self.receiver
        return f"{self.protocol}.{self.kind} {self.sender} -> {target}"
