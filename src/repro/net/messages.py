"""Message record passed between nodes.

Messages carry a protocol-specific ``kind`` string plus an arbitrary payload
mapping.  Two flags drive the paper's message accounting:

* ``layer`` distinguishes service-discovery-layer messages from transport
  overhead (TCP segments, acknowledgements).  Table 2 and the Efficiency
  Degradation metric of the paper count only discovery-layer messages for
  UPnP and Jini ("the ... models do not take into account the messages used
  by the transmission layers").
* ``update_related`` marks messages that are part of propagating a changed
  service description; these are the messages counted as *y* in the Update
  Efficiency / Efficiency Degradation metrics.

:class:`Message` is a ``__slots__`` class on the simulation hot path: a
large-N run allocates one per delivery attempt, so it avoids a ``__dict__``
and shares a single immutable empty mapping for the (very common) payloadless
message.

Message ids are normally drawn from the run-scoped counter owned by
:class:`~repro.net.network.Network` (``network.msg_ids``) so that ids are
deterministic per run; the module-level fallback counter exists only for
messages constructed without a network at hand (tests, :meth:`Message.reply`
/ :meth:`Message.clone` without an explicit id).
"""

from __future__ import annotations

import itertools
from enum import Enum
from types import MappingProxyType
from typing import Any, Mapping, Optional

from repro.net.addressing import Address, MULTICAST_GROUP

#: Process-wide fallback id source; run paths use ``Network.msg_ids`` instead.
_MSG_COUNTER = itertools.count(1)

#: Shared read-only payload for messages that carry no content.  Payloads are
#: never mutated after construction, so one instance can back them all.
EMPTY_PAYLOAD: Mapping[str, Any] = MappingProxyType({})


class MessageLayer(str, Enum):
    """Which layer a message belongs to for accounting purposes."""

    DISCOVERY = "discovery"
    TRANSPORT = "transport"


class Message:
    """A single protocol message.

    Attributes
    ----------
    sender / receiver:
        Node addresses.  ``receiver`` is :data:`MULTICAST_GROUP` for
        multicast messages.
    protocol:
        Short protocol tag (``"frodo"``, ``"jini"``, ``"upnp"``).
    kind:
        Protocol-specific message type, e.g. ``"service_update"``.
    payload:
        Arbitrary content (service descriptions, lease durations, ...).
        Treat as read-only; payloadless messages share :data:`EMPTY_PAYLOAD`.
    update_related:
        Counted towards *y* in the efficiency metrics when sent at or after
        the service-change time.
    layer:
        Discovery-layer vs transport-layer message (see module docstring).
    size_bytes:
        Nominal size; only used for reporting, not for timing.
    msg_id:
        Unique id; pass one drawn from ``network.msg_ids`` for run-scoped
        determinism (the fallback counter is process-wide).
    """

    __slots__ = (
        "sender",
        "receiver",
        "protocol",
        "kind",
        "payload",
        "update_related",
        "layer",
        "size_bytes",
        "msg_id",
        "in_reply_to",
    )

    def __init__(
        self,
        sender: Address,
        receiver: Address,
        protocol: str,
        kind: str,
        payload: Optional[Mapping[str, Any]] = None,
        update_related: bool = False,
        layer: MessageLayer = MessageLayer.DISCOVERY,
        size_bytes: int = 256,
        msg_id: Optional[int] = None,
        in_reply_to: Optional[int] = None,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.protocol = protocol
        self.kind = kind
        self.payload = EMPTY_PAYLOAD if payload is None else payload
        self.update_related = update_related
        self.layer = layer
        self.size_bytes = size_bytes
        self.msg_id = next(_MSG_COUNTER) if msg_id is None else msg_id
        self.in_reply_to = in_reply_to

    @property
    def is_multicast(self) -> bool:
        """``True`` when addressed to the multicast group."""
        return self.receiver == MULTICAST_GROUP

    def reply(
        self,
        kind: str,
        payload: Optional[Mapping[str, Any]] = None,
        update_related: bool = False,
        **extra: Any,
    ) -> "Message":
        """Build a unicast reply from the receiver back to the sender."""
        return Message(
            sender=self.receiver if not self.is_multicast else extra.pop("sender"),
            receiver=self.sender,
            protocol=self.protocol,
            kind=kind,
            payload=payload,
            update_related=update_related,
            in_reply_to=self.msg_id,
            **extra,
        )

    def clone(self, msg_id: Optional[int] = None) -> "Message":
        """Copy of this message with a fresh message id (used for retransmissions)."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            protocol=self.protocol,
            kind=self.kind,
            payload=self.payload,
            update_related=self.update_related,
            layer=self.layer,
            size_bytes=self.size_bytes,
            msg_id=msg_id,
            in_reply_to=self.in_reply_to,
        )

    def describe(self) -> str:
        """Short human-readable summary used in traces and logs."""
        target = "multicast" if self.is_multicast else self.receiver
        return f"{self.protocol}.{self.kind} {self.sender} -> {target}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Message({self.describe()}, id={self.msg_id})"
