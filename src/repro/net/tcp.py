"""TCP transport model (Table 3).

UPnP and Jini send their unicast messages over TCP and rely on its recovery
behaviour.  The model reproduces the failure response described in Table 3 of
the paper:

* **Connection set-up** - the initial attempt plus 4 retransmission attempts
  spaced 6 s, 24 s, 24 s and 24 s apart.  If none succeeds, a *Remote
  Exception* (REX) is raised to the service-discovery layer, which then
  abandons the operation.
* **Data transfer** - once connected, the application message is
  retransmitted until success; the retransmission time-out starts at the
  round-trip time and grows by 25 % on each retry.

A severed link (partition scenarios) behaves like a dead path: connection
set-up runs its retry schedule into a REX, and an already-established
transfer keeps retransmitting until the link heals.

Transport segments (SYN, SYN-ACK, data retransmissions, acknowledgements) are
recorded as :class:`~repro.net.messages.MessageLayer.TRANSPORT` messages so
that they can be reported separately; the paper's efficiency metrics for
UPnP/Jini "do not take into account the messages used by the transmission
layers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.net.messages import Message, MessageLayer
from repro.net.network import Network


@dataclass(frozen=True)
class RemoteException:
    """Signal delivered to the discovery layer when a TCP operation fails."""

    message: Message
    reason: str
    time: float


@dataclass
class TcpConfig:
    """Parameters of the TCP failure response (Table 3)."""

    #: Delays between connection set-up attempts, in seconds.
    connection_retry_delays: Tuple[float, ...] = (6.0, 24.0, 24.0, 24.0)
    #: Multiplicative growth of the data-retransmission time-out per retry.
    data_backoff_factor: float = 1.25
    #: First data retransmission time-out; ``None`` means "use the round-trip time".
    initial_rto: Optional[float] = None
    #: Safety bound on data retransmissions (the paper retransmits until success).
    max_data_retries: int = 500


class _TcpExchange:
    """State machine for one application message sent over TCP."""

    def __init__(
        self,
        transport: "TcpTransport",
        message: Message,
        on_delivered: Optional[Callable[[Message], None]],
        on_rex: Optional[Callable[[RemoteException], None]],
    ) -> None:
        self.transport = transport
        self.network = transport.network
        self.sim = transport.network.sim
        self.config = transport.config
        self.message = message
        self.on_delivered = on_delivered
        self.on_rex = on_rex
        self.setup_attempt = 0
        self.data_attempt = 0
        self.finished = False

    # --------------------------------------------------------------- connection
    def start(self) -> None:
        self._attempt_connection()

    def _attempt_connection(self) -> None:
        if self.finished:
            return
        self.setup_attempt += 1
        handshake_ok = self._record_handshake_segments()
        rtt = 2.0 * self.network.transmission_delay()
        if handshake_ok:
            self.sim.post(rtt, self._start_data_transfer)
            return
        retries = self.config.connection_retry_delays
        if self.setup_attempt > len(retries):
            self._fail("connection_setup_failed")
            return
        delay = retries[self.setup_attempt - 1]
        self.sim.post(delay, self._attempt_connection)

    def _record_handshake_segments(self) -> bool:
        """Emit SYN / SYN-ACK transport segments; return ``True`` if the handshake completes."""
        src = self.message.sender
        dst = self.message.receiver
        syn = Message(
            sender=src,
            receiver=dst,
            protocol=self.message.protocol,
            kind="tcp_syn",
            layer=MessageLayer.TRANSPORT,
            size_bytes=40,
            msg_id=next(self.network.msg_ids),
        )
        sent = self.network.transmit_unicast(syn)
        if not sent:
            return False
        if self.network.link_is_cut(src, dst):
            # Severed link (partition scenarios): the SYN died on the wire, so
            # the peer never answers and the setup retry schedule takes over.
            return False
        dst_ep = self.network.endpoint(dst) if self.network.has_endpoint(dst) else None
        if dst_ep is None or not dst_ep.interface.can_receive() or not dst_ep.interface.can_send():
            return False
        synack = Message(
            sender=dst,
            receiver=src,
            protocol=self.message.protocol,
            kind="tcp_synack",
            layer=MessageLayer.TRANSPORT,
            size_bytes=40,
            msg_id=next(self.network.msg_ids),
        )
        self.network.transmit_unicast(synack)
        src_ep = self.network.endpoint(src)
        return src_ep.interface.can_receive()

    # --------------------------------------------------------------- data phase
    def _start_data_transfer(self) -> None:
        if self.finished:
            return
        # The application-layer message is accounted exactly once, when the
        # established connection first carries it.
        self.network.stats.record_send(self.sim.now, self.message)
        self._attempt_data(first=True)

    def _attempt_data(self, first: bool = False) -> None:
        if self.finished:
            return
        self.data_attempt += 1
        if not first:
            retrans = Message(
                sender=self.message.sender,
                receiver=self.message.receiver,
                protocol=self.message.protocol,
                kind="tcp_data_retransmit",
                layer=MessageLayer.TRANSPORT,
                size_bytes=self.message.size_bytes,
                msg_id=next(self.network.msg_ids),
            )
            self.network.stats.record_send(self.sim.now, retrans)

        src = self.message.sender
        dst = self.message.receiver
        delay = self.network.transmission_delay()
        success = (
            not self.network.link_is_cut(src, dst)
            and self.network.interfaces_up(src, dst)
            and self.network.interfaces_up(dst, src)
        )
        if success:
            ack = Message(
                sender=dst,
                receiver=src,
                protocol=self.message.protocol,
                kind="tcp_ack",
                layer=MessageLayer.TRANSPORT,
                size_bytes=40,
                msg_id=next(self.network.msg_ids),
            )
            self.network.stats.record_send(self.sim.now, ack)
            self.sim.post(delay, self._deliver)
            return
        if self.data_attempt >= self.config.max_data_retries:
            self._fail("data_transfer_aborted")
            return
        rto = self._current_rto()
        self.sim.post(rto, self._attempt_data)

    def _current_rto(self) -> float:
        base = self.config.initial_rto
        if base is None:
            base = 2.0 * self.network.transmission_delay()
        return base * (self.config.data_backoff_factor ** max(0, self.data_attempt - 1))

    def _deliver(self) -> None:
        if self.finished:
            return
        self.finished = True
        endpoint = (
            self.network.endpoint(self.message.receiver)
            if self.network.has_endpoint(self.message.receiver)
            else None
        )
        delivered = endpoint.deliver(self.message) if endpoint is not None else False
        if delivered and self.on_delivered is not None:
            self.on_delivered(self.message)
        elif not delivered:
            # The receiver vanished between the acknowledgement and delivery
            # (possible only at microsecond granularity); treat as a REX.
            if self.on_rex is not None:
                self.on_rex(RemoteException(self.message, "receiver_unreachable", self.sim.now))

    def _fail(self, reason: str) -> None:
        if self.finished:
            return
        self.finished = True
        self.sim.trace(
            "tcp",
            "rex",
            sender=self.message.sender,
            receiver=self.message.receiver,
            kind=self.message.kind,
            reason=reason,
        )
        if self.on_rex is not None:
            self.on_rex(RemoteException(self.message, reason, self.sim.now))


class TcpTransport:
    """Reliable unicast transport with the Table 3 failure response."""

    def __init__(self, network: Network, config: Optional[TcpConfig] = None) -> None:
        self.network = network
        self.config = config if config is not None else TcpConfig()

    def send(
        self,
        message: Message,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_rex: Optional[Callable[[RemoteException], None]] = None,
    ) -> None:
        """Send ``message`` reliably; exactly one of the callbacks eventually fires.

        ``on_delivered`` is invoked at the simulation time the receiver's
        discovery layer gets the message; ``on_rex`` is invoked when TCP gives
        up (connection set-up failed after the retry schedule).
        """
        _TcpExchange(self, message, on_delivered, on_rex).start()
