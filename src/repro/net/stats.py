"""Message accounting.

The Update Efficiency and Efficiency Degradation metrics need, per run, the
total number of update-related discovery-layer messages sent at or after the
service-change time (*y* in the paper).  :class:`MessageStats` records every
transmission attempt with its time, kind, layer and flags, and provides the
aggregation queries used by :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.net.messages import Message, MessageLayer


class SentMessage:
    """A single recorded transmission attempt.

    A ``__slots__`` class (not a dataclass): one is allocated per
    transmission attempt, which makes it hot-path state at large N.
    """

    __slots__ = (
        "time",
        "sender",
        "receiver",
        "protocol",
        "kind",
        "layer",
        "update_related",
        "multicast",
        "copies",
    )

    def __init__(
        self,
        time: float,
        sender: str,
        receiver: str,
        protocol: str,
        kind: str,
        layer: MessageLayer,
        update_related: bool,
        multicast: bool,
        copies: int = 1,
    ) -> None:
        self.time = time
        self.sender = sender
        self.receiver = receiver
        self.protocol = protocol
        self.kind = kind
        self.layer = layer
        self.update_related = update_related
        self.multicast = multicast
        self.copies = copies

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SentMessage(t={self.time:g}, {self.protocol}.{self.kind} "
            f"{self.sender} -> {self.receiver}, copies={self.copies})"
        )


class MessageStats:
    """Accumulates every transmission attempt made on a :class:`~repro.net.network.Network`.

    The unfiltered aggregates (``total_sent()`` / ``update_messages()``
    without a ``since`` bound) are maintained *incrementally* at record time,
    so the hot aggregate queries are O(1) instead of rescanning the full
    send list; only time-windowed queries walk the list.
    """

    def __init__(self) -> None:
        self._sent: List[SentMessage] = []
        # Incremental aggregates, updated once per record_send.  Each entry
        # is a [count, copies] pair so count_copies toggles cost nothing.
        self._copies_total = 0
        self._multicast_total = 0
        self._by_layer: Dict[MessageLayer, List[int]] = {}
        self._update_discovery = [0, 0]  # update-related, discovery layer only
        self._update_any = [0, 0]  # update-related, transport included

    def __len__(self) -> int:
        return len(self._sent)

    @property
    def sent(self) -> List[SentMessage]:
        """All recorded transmissions in send order."""
        return self._sent

    @property
    def total_copies(self) -> int:
        """Physical copies sent, multicast redundancy included (O(1))."""
        return self._copies_total

    @property
    def multicast_sends(self) -> int:
        """Logical multicast announcements recorded (O(1))."""
        return self._multicast_total

    def counts_by_layer(self) -> Dict[str, int]:
        """Logical send counts per accounting layer (O(1); telemetry)."""
        return {layer.value: pair[0] for layer, pair in sorted(self._by_layer.items())}

    def record_send(self, time: float, message: Message, copies: int = 1) -> None:
        """Record a transmission attempt (``copies`` > 1 for redundant multicast)."""
        layer = message.layer
        update_related = message.update_related
        self._sent.append(
            SentMessage(
                time=time,
                sender=message.sender,
                receiver=message.receiver,
                protocol=message.protocol,
                kind=message.kind,
                layer=layer,
                update_related=update_related,
                multicast=message.is_multicast,
                copies=copies,
            )
        )
        self._copies_total += copies
        if message.is_multicast:
            self._multicast_total += 1
        pair = self._by_layer.get(layer)
        if pair is None:
            pair = self._by_layer[layer] = [0, 0]
        pair[0] += 1
        pair[1] += copies
        if update_related:
            self._update_any[0] += 1
            self._update_any[1] += copies
            if layer == MessageLayer.DISCOVERY:
                self._update_discovery[0] += 1
                self._update_discovery[1] += copies

    # ------------------------------------------------------------------ queries
    def total_sent(
        self,
        layer: Optional[MessageLayer] = None,
        since: Optional[float] = None,
        count_copies: bool = False,
    ) -> int:
        """Total transmissions, optionally restricted by layer and start time.

        Unwindowed queries (``since is None``) are answered from the
        incremental counters in O(1); a ``since`` bound falls back to the
        list scan.
        """
        if since is None:
            index = 1 if count_copies else 0
            if layer is None:
                return self._copies_total if count_copies else len(self._sent)
            pair = self._by_layer.get(layer)
            return 0 if pair is None else pair[index]
        total = 0
        for rec in self._sent:
            if layer is not None and rec.layer != layer:
                continue
            if rec.time < since:
                continue
            total += rec.copies if count_copies else 1
        return total

    def update_messages(
        self,
        since: Optional[float] = None,
        include_transport: bool = False,
        count_copies: bool = False,
    ) -> int:
        """Number of update-related messages (*y* in the efficiency metrics).

        O(1) when unwindowed (``since is None``); the change-time-windowed
        form used by the metrics scans the list.
        """
        if since is None:
            pair = self._update_any if include_transport else self._update_discovery
            return pair[1] if count_copies else pair[0]
        total = 0
        for rec in self._sent:
            if not rec.update_related:
                continue
            if not include_transport and rec.layer != MessageLayer.DISCOVERY:
                continue
            if rec.time < since:
                continue
            total += rec.copies if count_copies else 1
        return total

    def counts_by_kind(
        self,
        layer: Optional[MessageLayer] = None,
        since: Optional[float] = None,
        update_related: Optional[bool] = None,
    ) -> Dict[str, int]:
        """Histogram of message kinds (``protocol.kind`` keys).

        ``update_related`` restricts the histogram to messages with (``True``)
        or without (``False``) the accounting flag; ``None`` counts both.
        """
        counter: Counter = Counter()
        for rec in self._sent:
            if layer is not None and rec.layer != layer:
                continue
            if since is not None and rec.time < since:
                continue
            if update_related is not None and rec.update_related != update_related:
                continue
            counter[f"{rec.protocol}.{rec.kind}"] += 1
        return dict(counter)

    def transport_overhead(self, since: Optional[float] = None) -> int:
        """Number of transport-layer messages (TCP segments and acknowledgements)."""
        return self.total_sent(layer=MessageLayer.TRANSPORT, since=since)

    def clear(self) -> None:
        """Reset all counters."""
        self._sent.clear()
        self._copies_total = 0
        self._multicast_total = 0
        self._by_layer.clear()
        self._update_discovery = [0, 0]
        self._update_any = [0, 0]
