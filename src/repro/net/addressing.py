"""Addressing helpers.

Nodes are addressed by plain string identifiers (e.g. ``"user-3"``,
``"registry-1"``).  A single logical multicast group is modelled, matching
the paper's local-area-network setting where every node receives every
multicast announcement (subject to its receiver interface being up).
"""

from __future__ import annotations

Address = str

#: The single multicast group used by announcements and multicast queries.
MULTICAST_GROUP: Address = "<multicast>"


def is_multicast(address: Address) -> bool:
    """Return ``True`` when ``address`` denotes the multicast group."""
    return address == MULTICAST_GROUP


def validate_address(address: Address) -> Address:
    """Validate a unicast address (non-empty, not the multicast group)."""
    if not isinstance(address, str) or not address:
        raise ValueError(f"invalid address: {address!r}")
    if address == MULTICAST_GROUP:
        raise ValueError("the multicast group is not a valid unicast address")
    return address
