"""Node network interfaces and endpoints.

Each node owns a :class:`NetworkInterface` with independent transmitter and
receiver state.  The interface-failure model of the paper (Section 5, Step 2)
fails the transmitter, the receiver, or both for a contiguous window of the
run; while a direction is down, messages in that direction are lost silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.addressing import Address
from repro.net.messages import Message


@dataclass
class InterfaceCounters:
    """Per-interface message counters (sent/received/dropped)."""

    sent: int = 0
    received: int = 0
    dropped_tx: int = 0
    dropped_rx: int = 0


class NetworkInterface:
    """Transmitter/receiver pair with independent up/down state.

    Outages nest: each direction carries a *fail depth* — :meth:`fail`
    increments it, :meth:`restore` decrements it, and the direction is up iff
    its depth is zero.  Two overlapping outages on the same node therefore
    keep the direction down until the *last* one ends (a plain boolean would
    restore it the moment the first outage ended).  ``tx_up``/``rx_up``
    remain plain attributes, kept in sync by fail/restore, so the per-message
    delivery path still reads a single attribute.
    """

    def __init__(self, address: Address) -> None:
        self.address = address
        self.tx_up = True
        self.rx_up = True
        self._tx_depth = 0
        self._rx_depth = 0
        self.counters = InterfaceCounters()

    # ------------------------------------------------------------------ control
    def fail(self, tx: bool = False, rx: bool = False) -> None:
        """Bring down the transmitter and/or receiver (one nesting level)."""
        if tx:
            self._tx_depth += 1
            self.tx_up = False
        if rx:
            self._rx_depth += 1
            self.rx_up = False

    def restore(self, tx: bool = False, rx: bool = False) -> None:
        """Undo one :meth:`fail` of the transmitter and/or receiver.

        A direction comes back up only when every overlapping outage that
        failed it has been restored.  Unmatched restores are clamped at depth
        zero (an already-up direction stays up).
        """
        if tx and self._tx_depth > 0:
            self._tx_depth -= 1
            self.tx_up = self._tx_depth == 0
        if rx and self._rx_depth > 0:
            self._rx_depth -= 1
            self.rx_up = self._rx_depth == 0

    def reset(self) -> None:
        """Forget all outage state (both directions up, depths zero).

        Used when a churned node rejoins the network: the rejoining node
        comes back with a fresh radio, regardless of outages that applied —
        or were skipped — while it was away.
        """
        self._tx_depth = 0
        self._rx_depth = 0
        self.tx_up = True
        self.rx_up = True

    @property
    def tx_fail_depth(self) -> int:
        """Number of unrestored outages currently failing the transmitter."""
        return self._tx_depth

    @property
    def rx_fail_depth(self) -> int:
        """Number of unrestored outages currently failing the receiver."""
        return self._rx_depth

    @property
    def node_down(self) -> bool:
        """``True`` when both directions are down (node failure)."""
        return not self.tx_up and not self.rx_up

    def can_send(self) -> bool:
        """``True`` when the transmitter is up."""
        return self.tx_up

    def can_receive(self) -> bool:
        """``True`` when the receiver is up."""
        return self.rx_up

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkInterface({self.address!r}, tx={'up' if self.tx_up else 'DOWN'},"
            f" rx={'up' if self.rx_up else 'DOWN'})"
        )


class Endpoint:
    """Binding between an address, an interface and a receive handler.

    The discovery-layer node registers itself with the :class:`~repro.net.network.Network`
    through an endpoint; the network delivers messages by calling
    :meth:`deliver`, which forwards to the registered handler only when the
    receiver interface is up.
    """

    def __init__(
        self,
        address: Address,
        handler: Optional[Callable[[Message], Any]] = None,
        interface: Optional[NetworkInterface] = None,
    ) -> None:
        self.address = address
        self.interface = interface if interface is not None else NetworkInterface(address)
        self._handler = handler

    def bind(self, handler: Callable[[Message], Any]) -> None:
        """Attach (or replace) the receive handler."""
        self._handler = handler

    def deliver(self, message: Message) -> bool:
        """Deliver ``message`` to the handler if the receiver is up.

        Returns ``True`` when the message reached the handler.  Reads the
        interface flags directly — this runs once per delivery attempt.
        """
        interface = self.interface
        if not interface.rx_up:
            interface.counters.dropped_rx += 1
            return False
        interface.counters.received += 1
        handler = self._handler
        if handler is not None:
            handler(message)
        return True
