"""Interface-failure injection (Section 5, Step 2).

For each node the transmitter, the receiver, or both are failed once per run:
the outage begins at a random time drawn uniformly from [100 s, 5400 s] and
lasts for a fraction ``failure_rate`` of the 5400 s run.  Failing only one
direction models a communication failure (the node can still send but not
receive, or vice versa); failing both models a node failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.addressing import Address
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import Process

#: The three outage modes and how they map onto interface directions.
FAILURE_MODES: Dict[str, Dict[str, bool]] = {
    "tx": {"tx": True, "rx": False},
    "rx": {"tx": False, "rx": True},
    "both": {"tx": True, "rx": True},
}


@dataclass(frozen=True)
class InterfaceOutage:
    """One contiguous outage of a node's transmitter and/or receiver."""

    node: Address
    start: float
    duration: float
    mode: str  # "tx", "rx" or "both"

    @property
    def end(self) -> float:
        """Time at which the interface is restored."""
        return self.start + self.duration

    @property
    def fails_tx(self) -> bool:
        """``True`` when the transmitter is down during the outage."""
        return FAILURE_MODES[self.mode]["tx"]

    @property
    def fails_rx(self) -> bool:
        """``True`` when the receiver is down during the outage."""
        return FAILURE_MODES[self.mode]["rx"]

    def covers(self, time: float) -> bool:
        """``True`` when ``time`` falls inside the outage window."""
        return self.start <= time < self.end


@dataclass
class FailureModelConfig:
    """Parameters of the interface-failure model."""

    #: Total run length used to size outages, in seconds.
    sim_duration: float = 5400.0
    #: Failures never start before this time (discovery phase is failure-free).
    earliest_onset: float = 100.0
    #: Failures may start as late as this time.
    latest_onset: float = 5400.0
    #: Outage modes drawn uniformly per node.
    modes: Sequence[str] = ("tx", "rx", "both")
    #: Nodes excluded from failure injection (none by default).
    immune_nodes: Sequence[Address] = field(default_factory=tuple)


def build_interface_failure_plan(
    node_ids: Iterable[Address],
    failure_rate: float,
    rng: random.Random,
    config: Optional[FailureModelConfig] = None,
) -> List[InterfaceOutage]:
    """Draw one outage per node according to the paper's failure model.

    ``failure_rate`` is the paper's lambda (0 <= lambda <= 1): the proportion of the
    run during which the chosen interface directions are down.  A rate of zero
    yields an empty plan.
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate!r}")
    cfg = config if config is not None else FailureModelConfig()
    plan: List[InterfaceOutage] = []
    if failure_rate == 0.0:
        return plan
    duration = failure_rate * cfg.sim_duration
    for node in node_ids:
        if node in cfg.immune_nodes:
            continue
        start = rng.uniform(cfg.earliest_onset, cfg.latest_onset)
        mode = rng.choice(list(cfg.modes))
        plan.append(InterfaceOutage(node=node, start=start, duration=duration, mode=mode))
    return plan


class FailureInjector(Process):
    """Applies an interface-failure plan to the endpoints of a network."""

    def __init__(self, sim: Simulator, network: Network, plan: Sequence[InterfaceOutage]) -> None:
        super().__init__(sim, "failure-injector")
        self.network = network
        self.plan = list(plan)

    def on_start(self) -> None:
        for outage in self.plan:
            if not self.network.has_endpoint(outage.node):
                continue
            start_delay = max(0.0, outage.start - self.now)
            self.after(start_delay, self._apply, outage)

    def _apply(self, outage: InterfaceOutage) -> None:
        endpoint = self.network.endpoint(outage.node)
        endpoint.interface.fail(tx=outage.fails_tx, rx=outage.fails_rx)
        self.trace(
            "interface_failed",
            node=outage.node,
            mode=outage.mode,
            until=outage.end,
        )
        self.after(outage.duration, self._restore, outage)

    def _restore(self, outage: InterfaceOutage) -> None:
        endpoint = self.network.endpoint(outage.node)
        endpoint.interface.restore(tx=outage.fails_tx, rx=outage.fails_rx)
        self.trace("interface_restored", node=outage.node, mode=outage.mode)
