"""Failure injection: interface outages, node churn, lossy links (Section 5, Step 2).

The paper's model fails each node's transmitter, receiver, or both exactly
once per run: the outage begins at a random time drawn uniformly from
[100 s, 5400 s] and lasts for a fraction ``failure_rate`` of the 5400 s run.
Failing only one direction models a communication failure (the node can still
send but not receive, or vice versa); failing both models a node failure.

This module generalises that model into a typed *disruption plan*: a
deterministic, seed-derived list of events —

* :class:`InterfaceOutage` — one contiguous tx/rx/both outage.  Outages may
  repeat and overlap on the same node; the depth-counted
  :class:`~repro.net.interfaces.NetworkInterface` keeps a direction down
  until the last overlapping outage ends.
* :class:`NodeChurn` — a node leaves the network mid-run (its endpoint is
  removed and its process stopped) and optionally rejoins later with a fresh
  interface, re-running its protocol bootstrap (flash-crowd rediscovery).
* :class:`LossWindow` — a window during which every on-wire delivery is
  dropped independently with a fixed probability (lossy-link emulation via
  :meth:`~repro.net.network.Network.push_loss`).
* :class:`LinkCut` — a window during which one point-to-point link is
  severed entirely (network-partition emulation via
  :meth:`~repro.net.network.Network.cut_link`); the partition scenario
  family cuts every cross link of a federation bipartition this way.

A :class:`DisruptionPlan` bundles the three event lists plus any extra
service-change times; :class:`FailureInjector` applies a plan to a network
and accounts the *realized* per-node downtime against the measurement
deadline (an outage window overrunning the run contributes only its
in-run part, so nominal lambda and realized downtime can be compared
honestly — see :meth:`FailureInjector.failure_telemetry`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.addressing import Address
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.process import Process

#: The three outage modes and how they map onto interface directions.
FAILURE_MODES: Dict[str, Dict[str, bool]] = {
    "tx": {"tx": True, "rx": False},
    "rx": {"tx": False, "rx": True},
    "both": {"tx": True, "rx": True},
}


@dataclass(frozen=True)
class InterfaceOutage:
    """One contiguous outage of a node's transmitter and/or receiver."""

    node: Address
    start: float
    duration: float
    mode: str  # "tx", "rx" or "both"

    @property
    def end(self) -> float:
        """Time at which the interface is restored."""
        return self.start + self.duration

    @property
    def fails_tx(self) -> bool:
        """``True`` when the transmitter is down during the outage."""
        return FAILURE_MODES[self.mode]["tx"]

    @property
    def fails_rx(self) -> bool:
        """``True`` when the receiver is down during the outage."""
        return FAILURE_MODES[self.mode]["rx"]

    def covers(self, time: float) -> bool:
        """``True`` when ``time`` falls inside the outage window."""
        return self.start <= time < self.end

    def clamped(self, deadline: float) -> Tuple[float, float]:
        """The effective ``(start, end)`` window within a run ending at ``deadline``."""
        start = min(self.start, deadline)
        return start, max(start, min(self.end, deadline))


@dataclass(frozen=True)
class NodeChurn:
    """One node leaving the network mid-run, optionally rejoining later."""

    node: Address
    leave: float
    #: Rejoin time; ``None`` means the node never returns.
    rejoin: Optional[float] = None

    def validate(self) -> "NodeChurn":
        """Raise :class:`ValueError` on an inconsistent event."""
        if self.leave < 0:
            raise ValueError(f"leave time must be >= 0, got {self.leave!r}")
        if self.rejoin is not None and self.rejoin <= self.leave:
            raise ValueError(
                f"rejoin time {self.rejoin!r} must be after leave time {self.leave!r}"
            )
        return self


@dataclass(frozen=True)
class LossWindow:
    """A window during which on-wire deliveries drop with a fixed probability."""

    start: float
    duration: float
    drop_probability: float

    @property
    def end(self) -> float:
        """Time at which the window closes."""
        return self.start + self.duration

    def validate(self) -> "LossWindow":
        """Raise :class:`ValueError` on an inconsistent window."""
        if self.duration <= 0:
            raise ValueError(f"loss window duration must be positive, got {self.duration!r}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got {self.drop_probability!r}"
            )
        return self


@dataclass(frozen=True)
class LinkCut:
    """A window during which the undirected ``a``-``b`` link is severed."""

    a: Address
    b: Address
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Time at which the link is healed."""
        return self.start + self.duration

    def validate(self) -> "LinkCut":
        """Raise :class:`ValueError` on an inconsistent cut."""
        if self.a == self.b:
            raise ValueError(f"link cut endpoints must differ, got {self.a!r} twice")
        if self.start < 0:
            raise ValueError(f"link cut start must be >= 0, got {self.start!r}")
        if self.duration <= 0:
            raise ValueError(f"link cut duration must be positive, got {self.duration!r}")
        return self


@dataclass(frozen=True)
class DisruptionPlan:
    """Every disruption of one run, as typed, seed-derived events.

    Plans are pure data: building one draws from RNG streams but applying it
    is deterministic, so a plan can be rebuilt from the spec for inspection.
    """

    outages: Tuple[InterfaceOutage, ...] = ()
    churn: Tuple[NodeChurn, ...] = ()
    loss_windows: Tuple[LossWindow, ...] = ()
    #: Additional service-change times on top of the spec's ``change_time``.
    extra_change_times: Tuple[float, ...] = ()
    #: Point-to-point links severed for a window (partition scenarios).
    link_cuts: Tuple[LinkCut, ...] = ()

    @property
    def n_events(self) -> int:
        """Total number of typed disruption events in the plan."""
        return (
            len(self.outages)
            + len(self.churn)
            + len(self.loss_windows)
            + len(self.extra_change_times)
            + len(self.link_cuts)
        )


@dataclass
class FailureModelConfig:
    """Parameters of the interface-failure model."""

    #: Total run length used to size outages, in seconds.
    sim_duration: float = 5400.0
    #: Failures never start before this time (discovery phase is failure-free).
    earliest_onset: float = 100.0
    #: Failures may start as late as this time.
    latest_onset: float = 5400.0
    #: Outage modes drawn uniformly per node.
    modes: Sequence[str] = ("tx", "rx", "both")
    #: Nodes excluded from failure injection (none by default).
    immune_nodes: Sequence[Address] = field(default_factory=tuple)
    #: When ``True``, onset times are drawn so the whole outage fits before
    #: ``sim_duration``: realized downtime then equals nominal downtime
    #: (lambda x duration) instead of silently undershooting it whenever the
    #: window overruns the run.  The paper's Table 4 model keeps the
    #: unrestricted draw, so this defaults to ``False``.
    fit_to_deadline: bool = False

    def onset_window(self, duration: float) -> Tuple[float, float]:
        """The ``[low, high]`` interval outage onsets are drawn from."""
        high = self.latest_onset
        if self.fit_to_deadline:
            high = min(high, self.sim_duration - duration)
        return self.earliest_onset, max(self.earliest_onset, high)


def build_interface_failure_plan(
    node_ids: Iterable[Address],
    failure_rate: float,
    rng: random.Random,
    config: Optional[FailureModelConfig] = None,
) -> List[InterfaceOutage]:
    """Draw one outage per node according to the paper's failure model.

    ``failure_rate`` is the paper's lambda (0 <= lambda <= 1): the proportion of the
    run during which the chosen interface directions are down.  A rate of zero
    yields an empty plan.
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate!r}")
    cfg = config if config is not None else FailureModelConfig()
    plan: List[InterfaceOutage] = []
    if failure_rate == 0.0:
        return plan
    duration = failure_rate * cfg.sim_duration
    low, high = cfg.onset_window(duration)
    for node in node_ids:
        if node in cfg.immune_nodes:
            continue
        start = rng.uniform(low, high)
        mode = rng.choice(list(cfg.modes))
        plan.append(InterfaceOutage(node=node, start=start, duration=duration, mode=mode))
    return plan


def merged_downtime(
    outages: Iterable[InterfaceOutage], deadline: Optional[float] = None
) -> Dict[Address, float]:
    """Realized per-node downtime: the union of each node's outage windows.

    Windows are clamped to ``deadline`` (when given) before merging, so an
    outage that overruns the run contributes only its in-run part.  Overlapping
    and repeated windows on one node count once per covered second — exactly
    the time some chosen direction of the node was forced down.
    """
    windows: Dict[Address, List[Tuple[float, float]]] = {}
    for outage in outages:
        if deadline is None:
            span = (outage.start, outage.end)
        else:
            span = outage.clamped(deadline)
        if span[1] > span[0]:
            windows.setdefault(outage.node, []).append(span)
    realized: Dict[Address, float] = {}
    for node, spans in windows.items():
        spans.sort()
        total = 0.0
        current_start, current_end = spans[0]
        for start, end in spans[1:]:
            if start > current_end:
                total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        total += current_end - current_start
        realized[node] = total
    return realized


class FailureInjector(Process):
    """Applies a disruption plan to the endpoints (and nodes) of a network.

    Backwards compatible with the original interface-outage injector: ``plan``
    is the outage list.  Churn and loss events are optional extras; applying
    churn needs ``node_resolver`` (node id -> :class:`~repro.sim.process.Process`
    with an ``endpoint``) so departed nodes can be stopped and rejoining nodes
    restarted.

    Every endpoint lookup is guarded: an outage (or restore) targeting a node
    that has departed the network is *skipped* — counted in
    :attr:`skipped_ops` and traced as ``failure_skipped`` — instead of
    raising ``KeyError`` mid-run.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        plan: Sequence[InterfaceOutage],
        *,
        churn: Sequence[NodeChurn] = (),
        loss_windows: Sequence[LossWindow] = (),
        link_cuts: Sequence[LinkCut] = (),
        deadline: Optional[float] = None,
        node_resolver: Optional[Callable[[Address], Optional[Process]]] = None,
    ) -> None:
        super().__init__(sim, "failure-injector")
        self.network = network
        self.plan = list(plan)
        self.churn = list(churn)
        self.loss_windows = list(loss_windows)
        self.link_cuts = list(link_cuts)
        self.deadline = deadline
        self.node_resolver = node_resolver
        #: Outage/churn operations skipped because their target had departed.
        self.skipped_ops = 0
        #: Nodes that left the network through churn (in event order).
        self.departed: List[Address] = []
        #: Nodes that rejoined the network through churn (in event order).
        self.rejoined: List[Address] = []

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        deadline = self.deadline
        for outage in self.plan:
            if not self.network.has_endpoint(outage.node):
                continue
            start_delay = max(0.0, outage.start - self.now)
            self.after(start_delay, self._apply, outage)
        for event in self.churn:
            if event.leave >= self.now and (deadline is None or event.leave < deadline):
                self.after(event.leave - self.now, self._leave, event)
            if event.rejoin is not None and (deadline is None or event.rejoin < deadline):
                self.after(max(0.0, event.rejoin - self.now), self._rejoin, event)
        for window in self.loss_windows:
            if deadline is not None and window.start >= deadline:
                continue
            self.after(max(0.0, window.start - self.now), self._loss_start, window)
        for cut in self.link_cuts:
            if deadline is not None and cut.start >= deadline:
                continue
            self.after(max(0.0, cut.start - self.now), self._cut, cut)

    # ------------------------------------------------------------------ outages
    def _apply(self, outage: InterfaceOutage) -> None:
        if not self.network.has_endpoint(outage.node):
            self._skip("apply", outage.node, mode=outage.mode)
            return
        endpoint = self.network.endpoint(outage.node)
        endpoint.interface.fail(tx=outage.fails_tx, rx=outage.fails_rx)
        self.trace(
            "interface_failed",
            node=outage.node,
            mode=outage.mode,
            until=outage.end,
        )
        self.after(outage.duration, self._restore, outage)

    def _restore(self, outage: InterfaceOutage) -> None:
        if not self.network.has_endpoint(outage.node):
            self._skip("restore", outage.node, mode=outage.mode)
            return
        endpoint = self.network.endpoint(outage.node)
        endpoint.interface.restore(tx=outage.fails_tx, rx=outage.fails_rx)
        self.trace("interface_restored", node=outage.node, mode=outage.mode)

    def _skip(self, operation: str, node: Address, **fields: object) -> None:
        self.skipped_ops += 1
        self.trace("failure_skipped", operation=operation, node=node, **fields)

    # ------------------------------------------------------------------ churn
    def _leave(self, event: NodeChurn) -> None:
        if not self.network.has_endpoint(event.node):
            self._skip("leave", event.node)
            return
        node = self.node_resolver(event.node) if self.node_resolver is not None else None
        if node is not None:
            node.stop()
        self.network.leave(event.node)
        self.departed.append(event.node)
        self.trace("node_left", node=event.node, rejoin=event.rejoin)

    def _rejoin(self, event: NodeChurn) -> None:
        node = self.node_resolver(event.node) if self.node_resolver is not None else None
        endpoint = getattr(node, "endpoint", None)
        if endpoint is None or self.network.has_endpoint(event.node):
            self._skip("rejoin", event.node)
            return
        # A rejoining node comes back with a fresh radio: outages applied (or
        # skipped) while it was away must not leave a direction stuck down.
        endpoint.interface.reset()
        self.network.join(endpoint)
        node.restart()
        self.rejoined.append(event.node)
        self.trace("node_rejoined", node=event.node)

    # ------------------------------------------------------------------ lossy links
    def _loss_start(self, window: LossWindow) -> None:
        self.network.push_loss(window.drop_probability)
        self.trace("loss_window_opened", p=window.drop_probability, until=window.end)
        self.after(window.duration, self._loss_end, window)

    def _loss_end(self, window: LossWindow) -> None:
        self.network.pop_loss(window.drop_probability)
        self.trace("loss_window_closed", p=window.drop_probability)

    # ------------------------------------------------------------------ link cuts
    def _cut(self, cut: LinkCut) -> None:
        # Cuts act on the wire, not on endpoints, so no departed-node guard:
        # a cut between departed nodes is simply never exercised.
        self.network.cut_link(cut.a, cut.b)
        self.trace("link_cut", a=cut.a, b=cut.b, until=cut.end)
        self.after(cut.duration, self._heal, cut)

    def _heal(self, cut: LinkCut) -> None:
        self.network.heal_link(cut.a, cut.b)
        self.trace("link_healed", a=cut.a, b=cut.b)

    # ------------------------------------------------------------------ accounting
    def realized_downtime(self) -> Dict[Address, float]:
        """Per-node realized downtime, clamped to the deadline (see :func:`merged_downtime`)."""
        return merged_downtime(self.plan, self.deadline)

    def failure_telemetry(self) -> Dict[str, object]:
        """The deterministic failure counters of one run (RunTelemetry section).

        ``realized_downtime`` maps each failed node to the seconds some
        chosen direction of its interface was down inside the run;
        ``realized_fraction_mean`` is the mean of those figures over the
        failed nodes as a fraction of the deadline (the honest counterpart of
        the nominal lambda); ``last_outage_end`` is the clamped end of the
        latest outage window (the start of the failure-free recovery tail).
        """
        realized = self.realized_downtime()
        deadline = self.deadline
        horizon = deadline if deadline is not None else max(
            (outage.end for outage in self.plan), default=0.0
        )
        last_end = 0.0
        for outage in self.plan:
            end = outage.end if deadline is None else outage.clamped(deadline)[1]
            last_end = max(last_end, end)
        clamp = (lambda t: t) if deadline is None else (lambda t: min(t, deadline))
        last_loss_end = max((clamp(w.end) for w in self.loss_windows), default=0.0)
        last_cut_end = max((clamp(c.end) for c in self.link_cuts), default=0.0)
        last_churn_end = max(
            (
                clamp(e.rejoin if e.rejoin is not None else horizon)
                for e in self.churn
            ),
            default=0.0,
        )
        fractions = [seconds / horizon for seconds in realized.values()] if horizon else []
        return {
            "n_outages": len(self.plan),
            "n_churn": len(self.churn),
            "n_loss_windows": len(self.loss_windows),
            "n_link_cuts": len(self.link_cuts),
            "skipped_ops": self.skipped_ops,
            "departed": sorted(self.departed),
            "rejoined": sorted(self.rejoined),
            "realized_downtime": {node: realized[node] for node in sorted(realized)},
            "realized_fraction_mean": (
                sum(fractions) / len(fractions) if fractions else 0.0
            ),
            "last_outage_end": last_end,
            "last_loss_end": last_loss_end,
            "last_churn_end": last_churn_end,
            "last_cut_end": last_cut_end,
            "link_cut_drops": self.network.link_cut_drops,
        }
