"""Multicast (announce/listen) transport model.

All three protocols use unreliable multicast for announcements and queries.
UPnP and Jini transmit every multicast message redundantly (6 copies,
Table 3); FRODO transmits a single copy because redundancy "does not fit the
resource-aware context".
"""

from __future__ import annotations

from repro.net.addressing import MULTICAST_GROUP
from repro.net.messages import Message
from repro.net.network import Network

#: FRODO transmits multicast messages once (resource-aware, Table 3).
FRODO_MULTICAST_COPIES = 1
#: UPnP and Jini transmit every multicast message 6 times (Table 3).
REDUNDANT_MULTICAST_COPIES = 6


class MulticastService:
    """Sends multicast messages with a configurable redundancy factor."""

    def __init__(self, network: Network, redundancy: int = 1) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1")
        self.network = network
        self.redundancy = redundancy

    def announce(self, message: Message, copies: int | None = None) -> bool:
        """Multicast ``message`` (with redundant copies) to every other node.

        ``copies`` overrides the service-wide redundancy for this one message
        (e.g. FRODO's Registry announcements are sent twice while its other
        multicasts are sent once).
        """
        if message.receiver != MULTICAST_GROUP:
            raise ValueError("multicast message must target MULTICAST_GROUP")
        effective = self.redundancy if copies is None else copies
        if effective < 1:
            raise ValueError("copies must be >= 1")
        return self.network.transmit_multicast(message, copies=effective)
