"""The shared local-area network.

The :class:`Network` owns the set of endpoints, imposes the 10-100 microsecond
transmission delay from Table 3, enforces interface up/down state at both the
sending and the receiving side, and records every transmission attempt in a
:class:`~repro.net.stats.MessageStats` instance.

Transports (:mod:`repro.net.udp`, :mod:`repro.net.tcp`,
:mod:`repro.net.multicast`) are thin policies built on top of the two
primitives :meth:`Network.transmit_unicast` and :meth:`Network.transmit_multicast`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.net.addressing import Address, MULTICAST_GROUP, validate_address
from repro.net.interfaces import Endpoint
from repro.net.messages import Message
from repro.net.stats import MessageStats
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class NetworkConfig:
    """Physical-layer parameters (Table 3)."""

    #: Lower bound of the uniform transmission delay, in seconds (10 microseconds).
    min_delay: float = 10e-6
    #: Upper bound of the uniform transmission delay, in seconds (100 microseconds).
    max_delay: float = 100e-6
    #: Spacing between redundant copies of a multicast transmission, in seconds.
    multicast_copy_spacing: float = 0.1


class Network:
    """Single broadcast-domain network connecting all simulated nodes."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else NetworkConfig()
        self.stats = MessageStats()
        self._endpoints: Dict[Address, Endpoint] = {}
        #: Run-scoped message-id source: every message of a run draws from
        #: this counter (not the process-wide fallback), so ids are
        #: deterministic per run regardless of what ran earlier in-process.
        self.msg_ids = itertools.count(1)
        # Bound methods hoisted once: a delay is drawn per delivery on the
        # hot path.  ``_rand`` is the raw C-level ``random()`` of the same
        # stream; inlining ``a + (b - a) * random()`` at the call sites is
        # bit-identical to ``uniform(a, b)`` while skipping a Python frame.
        delay_stream = rng.stream("network", "delay")
        self._uniform = delay_stream.uniform
        self._rand = delay_stream.random
        # Lossy-link state (scenario library).  ``_loss_p`` is the combined
        # drop probability of the active loss windows; the delivery paths pay
        # one falsy check while it is zero.  The dedicated ``network/loss``
        # RNG stream is created lazily on the first window, so runs without
        # loss windows draw exactly the same random sequence as before the
        # feature existed.
        self._rng = rng
        self._loss_stack: List[float] = []
        self._loss_p = 0.0
        self._loss_rand: Optional[Callable[[], float]] = None
        #: Deliveries dropped on the wire by loss windows (telemetry).
        self.link_losses = 0
        # Severed point-to-point links (partition scenarios).  Undirected
        # pairs as frozensets; the delivery paths pay one falsy check while
        # no link is cut, so runs without partitions are untouched.
        self._cut_links: set = set()
        #: Deliveries dropped on the wire by severed links (telemetry).
        self.link_cut_drops = 0

    # ------------------------------------------------------------------ membership
    def join(self, endpoint: Endpoint) -> Endpoint:
        """Register an endpoint.  Raises on duplicate addresses."""
        address = validate_address(endpoint.address)
        if address in self._endpoints:
            raise ValueError(f"address already joined: {address!r}")
        self._endpoints[address] = endpoint
        return endpoint

    def leave(self, address: Address) -> None:
        """Remove an endpoint from the network."""
        self._endpoints.pop(address, None)

    def endpoint(self, address: Address) -> Endpoint:
        """Return the endpoint registered under ``address``."""
        return self._endpoints[address]

    def has_endpoint(self, address: Address) -> bool:
        """``True`` when ``address`` is registered."""
        return address in self._endpoints

    def addresses(self) -> List[Address]:
        """All registered addresses, in join order."""
        return list(self._endpoints.keys())

    def endpoints(self) -> Iterable[Endpoint]:
        """All registered endpoints, in join order (telemetry aggregation)."""
        return self._endpoints.values()

    # ------------------------------------------------------------------ lossy links
    def push_loss(self, drop_probability: float) -> None:
        """Open a loss window: deliveries drop with ``drop_probability``.

        Windows nest; concurrent windows compose as independent drop chances
        (a delivery survives only when it survives every active window).
        """
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {drop_probability!r}")
        self._loss_stack.append(drop_probability)
        self._recompute_loss()

    def pop_loss(self, drop_probability: float) -> None:
        """Close one loss window previously opened with :meth:`push_loss`."""
        try:
            # Remove the most recent matching window (windows may share p).
            index = len(self._loss_stack) - 1 - self._loss_stack[::-1].index(drop_probability)
        except ValueError:
            raise ValueError(f"no active loss window with p={drop_probability!r}") from None
        del self._loss_stack[index]
        self._recompute_loss()

    def _recompute_loss(self) -> None:
        survive = 1.0
        for p in self._loss_stack:
            survive *= 1.0 - p
        self._loss_p = 1.0 - survive
        if self._loss_p and self._loss_rand is None:
            self._loss_rand = self._rng.stream("network", "loss").random

    @property
    def loss_probability(self) -> float:
        """Combined drop probability of the currently active loss windows."""
        return self._loss_p

    # ------------------------------------------------------------------ link cuts
    def cut_link(self, a: Address, b: Address) -> None:
        """Sever the undirected link between ``a`` and ``b``.

        While cut, every delivery between the pair — either direction,
        unicast or multicast — dies on the wire: the send is still spent and
        recorded (the sender cannot tell), but nothing arrives.  Transports
        see it as ordinary message loss and run their usual retry/REX
        machinery, which is exactly how a network partition presents itself
        to the protocols under test.
        """
        if a == b:
            raise ValueError(f"cannot cut a link from a node to itself: {a!r}")
        self._cut_links.add(frozenset((a, b)))

    def heal_link(self, a: Address, b: Address) -> None:
        """Restore a link previously severed with :meth:`cut_link`."""
        self._cut_links.discard(frozenset((a, b)))

    def link_is_cut(self, a: Address, b: Address) -> bool:
        """``True`` while the ``a``-``b`` link is severed."""
        return bool(self._cut_links) and frozenset((a, b)) in self._cut_links

    # ------------------------------------------------------------------ helpers
    def transmission_delay(self) -> float:
        """Draw one transmission delay from the uniform 10-100 microsecond range."""
        return self._uniform(self.config.min_delay, self.config.max_delay)

    def interfaces_up(self, sender: Address, receiver: Address) -> bool:
        """``True`` when the sender can transmit and the receiver can receive *right now*."""
        src = self._endpoints.get(sender)
        dst = self._endpoints.get(receiver)
        if src is None or dst is None:
            return False
        return src.interface.can_send() and dst.interface.can_receive()

    # ------------------------------------------------------------------ primitives
    def transmit_unicast(
        self,
        message: Message,
        on_delivered: Optional[Callable[[Message], None]] = None,
        record: bool = True,
    ) -> bool:
        """Attempt a single unicast transmission.

        The attempt is recorded in the statistics regardless of outcome (a
        node that transmits into a failed receiver still spent the message).
        Returns ``True`` when the message left the sender's transmitter; the
        eventual delivery happens one transmission delay later and only if
        the receiver interface is up at that instant.
        """
        sender_ep = self._endpoints.get(message.sender)
        if sender_ep is None:
            # Sender departed (churn): its radio is gone, nothing is emitted.
            # In-flight transport machinery (e.g. a TCP handshake scheduled
            # before the node left) sees an ordinary send failure and runs
            # its normal retry/REX response.
            return False
        receiver_ep = self._endpoints.get(message.receiver)

        if not sender_ep.interface.can_send():
            sender_ep.interface.counters.dropped_tx += 1
            # The node tried to send but its transmitter is down: nothing is
            # emitted on the wire, so the attempt is not counted as traffic.
            return False

        if record:
            self.stats.record_send(self.sim.now, message)
            tracer = self.sim.tracer
            if tracer.enabled:
                self._trace_send(tracer, message, copies=1)
        sender_ep.interface.counters.sent += 1

        if receiver_ep is None:
            # Destination unknown / departed: message is lost on the wire.
            return True

        if self._cut_links and frozenset((message.sender, message.receiver)) in self._cut_links:
            # Severed link (partition scenarios): the send was spent but the
            # message dies on the wire, exactly like a loss-window drop.  The
            # cut check comes before the loss draw so cut-dropped deliveries
            # never consume the loss stream.
            self.link_cut_drops += 1
            return True

        if self._loss_p and self._loss_rand() < self._loss_p:
            # Lost on the wire inside an active loss window: the send was
            # spent (recorded above) but nothing arrives.
            self.link_losses += 1
            return True

        config = self.config
        min_delay = config.min_delay
        delay = min_delay + (config.max_delay - min_delay) * self._rand()
        if on_delivered is None:
            # Hot path: no closure, no Event allocation.
            self.sim.post(delay, receiver_ep.deliver, message)
        else:
            self.sim.post(delay, self._deliver_with_callback, receiver_ep, message, on_delivered)
        return True

    def _trace_send(self, tracer: Any, message: Message, copies: int) -> None:
        """Mirror one recorded send into the trace (``net/send`` records).

        Emitted exactly where :meth:`~repro.net.stats.MessageStats.record_send`
        records the logical send, so a captured trace's message-kind counts
        agree with the in-memory statistics (the ``trace summarize``
        contract).  Only runs when tracing is enabled — the hot path pays a
        single branch.
        """
        tracer.record(
            self.sim.now,
            "net",
            "send",
            protocol=message.protocol,
            kind=message.kind,
            sender=message.sender,
            receiver=message.receiver,
            layer=message.layer.value,
            update_related=message.update_related,
            multicast=message.is_multicast,
            copies=copies,
            msg_id=message.msg_id,
        )

    @staticmethod
    def _deliver_with_callback(
        receiver_ep: Endpoint,
        message: Message,
        on_delivered: Callable[[Message], None],
    ) -> None:
        if receiver_ep.deliver(message):
            on_delivered(message)

    def transmit_multicast(
        self,
        message: Message,
        copies: int = 1,
        record: bool = True,
    ) -> bool:
        """Transmit a multicast message to every other endpoint.

        ``copies`` models the redundant transmissions used by UPnP and Jini
        announcements (Table 3); copies are spaced by
        :attr:`NetworkConfig.multicast_copy_spacing` seconds.  The first copy
        is emitted immediately and the return value reports whether it left
        the transmitter; later copies are evaluated against the interface
        state at their own emission times.
        """
        if message.receiver != MULTICAST_GROUP:
            raise ValueError("multicast message must be addressed to MULTICAST_GROUP")
        sender_ep = self._endpoints.get(message.sender)
        if sender_ep is None:
            # Sender departed (churn): see transmit_unicast.
            return False

        # ``recorded`` is shared by all copies so that one logical multicast
        # is recorded at most once — by the first copy that actually leaves
        # the transmitter (matching the unicast rule that a blocked
        # transmitter emits nothing on the wire and is not counted).
        state = {"recorded": not record}
        first_copy_sent = self._emit_multicast_copy(message, sender_ep, state, copies)
        for copy_index in range(1, max(1, copies)):
            offset = copy_index * self.config.multicast_copy_spacing
            self.sim.post(offset, self._emit_multicast_copy, message, sender_ep, state, copies)
        return first_copy_sent

    def _emit_multicast_copy(
        self,
        message: Message,
        sender_ep: Endpoint,
        state: Dict[str, bool],
        copies: int,
    ) -> bool:
        if self._endpoints.get(message.sender) is not sender_ep:
            # The sender departed between redundant copies (churn): the
            # remaining copies die with its radio.
            return False
        if not sender_ep.interface.can_send():
            sender_ep.interface.counters.dropped_tx += 1
            return False
        if not state["recorded"]:
            # One logical multicast send is recorded once, with its copy count,
            # so that Table 2 style accounting counts announcements once while
            # the redundant copies remain visible via ``count_copies=True``.
            state["recorded"] = True
            self.stats.record_send(self.sim.now, message, copies=copies)
            tracer = self.sim.tracer
            if tracer.enabled:
                self._trace_send(tracer, message, copies=copies)
        sender_ep.interface.counters.sent += 1
        rand = self._rand
        config = self.config
        min_delay = config.min_delay
        delay_span = config.max_delay - min_delay
        post = self.sim.post
        sender = message.sender
        loss_p = self._loss_p
        cuts = self._cut_links
        if loss_p or cuts:
            loss_rand = self._loss_rand
            for address, endpoint in self._endpoints.items():
                if address == sender:
                    continue
                if cuts and frozenset((sender, address)) in cuts:
                    self.link_cut_drops += 1
                    continue
                if loss_p and loss_rand() < loss_p:
                    self.link_losses += 1
                    continue
                post(min_delay + delay_span * rand(), endpoint.deliver, message)
        else:
            for address, endpoint in self._endpoints.items():
                if address == sender:
                    continue
                post(min_delay + delay_span * rand(), endpoint.deliver, message)
        return True

    # ------------------------------------------------------------------ queries
    def reachable_nodes(self, sender: Address) -> Iterable[Address]:
        """Addresses whose receiver is currently up, excluding the sender."""
        for address, endpoint in self._endpoints.items():
            if address != sender and endpoint.interface.can_receive():
                yield address
