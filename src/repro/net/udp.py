"""UDP transport model.

Table 3: "Message discarded.  No retransmission."  FRODO uses UDP for both
unicast and multicast; the service-discovery layer itself is responsible for
any acknowledgements and retransmissions (recovery techniques SRN1/SRC1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.messages import Message
from repro.net.network import Network


class UdpTransport:
    """Fire-and-forget unicast transport."""

    def __init__(self, network: Network) -> None:
        self.network = network

    def send(
        self,
        message: Message,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> bool:
        """Send a single datagram.

        The datagram is lost silently when the sender's transmitter or the
        receiver's receiver is down; the sender is *not* informed.  Returns
        ``True`` if the datagram left the transmitter (which says nothing
        about delivery).
        """
        return self.network.transmit_unicast(message, on_delivered=on_delivered)
