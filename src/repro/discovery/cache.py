"""Lease-based service caches.

Users and Registries cache discovered service descriptions together with a
lease.  Entries whose lease expires without a refresh are purged, which is
what triggers the purge-rediscovery techniques (PR1-PR5) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.discovery.lease import Lease
from repro.discovery.service import ServiceDescription, ServiceQuery


@dataclass
class CacheEntry:
    """A cached service description and its registration lease."""

    sd: ServiceDescription
    lease: Lease

    def refresh(self, sd: ServiceDescription, now: float) -> bool:
        """Refresh the lease and adopt ``sd`` if it is at least as new.

        Returns ``True`` when the stored version changed.
        """
        changed = sd.is_newer_than(self.sd)
        if changed or sd.version == self.sd.version:
            self.sd = sd
        self.lease.renew(now)
        return changed


class ServiceCache:
    """Mapping of ``service_id`` to :class:`CacheEntry` with lease enforcement."""

    def __init__(self, default_lease: float = 1800.0) -> None:
        self.default_lease = default_lease
        self._entries: Dict[str, CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._entries

    def service_ids(self) -> List[str]:
        """All cached service identifiers."""
        return list(self._entries.keys())

    def store(
        self,
        sd: ServiceDescription,
        now: float,
        lease_duration: Optional[float] = None,
    ) -> bool:
        """Insert or refresh an entry.  Returns ``True`` when the stored version changed."""
        duration = lease_duration if lease_duration is not None else self.default_lease
        entry = self._entries.get(sd.service_id)
        if entry is None:
            self._entries[sd.service_id] = CacheEntry(sd=sd, lease=Lease(duration, now))
            return True
        if lease_duration is not None:
            entry.lease.duration = lease_duration
        return entry.refresh(sd, now)

    def get(self, service_id: str) -> Optional[CacheEntry]:
        """Return the entry for ``service_id`` or ``None``."""
        return self._entries.get(service_id)

    def get_sd(self, service_id: str) -> Optional[ServiceDescription]:
        """Return the cached SD for ``service_id`` or ``None``."""
        entry = self._entries.get(service_id)
        return entry.sd if entry is not None else None

    def touch(self, service_id: str, now: float) -> bool:
        """Renew the lease of an entry without changing its contents."""
        entry = self._entries.get(service_id)
        if entry is None:
            return False
        entry.lease.renew(now)
        return True

    def remove(self, service_id: str) -> Optional[CacheEntry]:
        """Explicitly purge an entry (e.g. the User purges the Manager, PR5)."""
        return self._entries.pop(service_id, None)

    def purge_expired(self, now: float) -> List[str]:
        """Remove all entries whose lease has expired; return their service ids."""
        expired = [sid for sid, entry in self._entries.items() if not entry.lease.is_valid(now)]
        for sid in expired:
            del self._entries[sid]
        return expired

    def find(self, query: ServiceQuery, now: Optional[float] = None) -> List[ServiceDescription]:
        """Return all cached SDs matching ``query`` (optionally only valid ones)."""
        out = []
        for entry in self._entries.values():
            if now is not None and not entry.lease.is_valid(now):
                continue
            if query.matches(entry.sd):
                out.append(entry.sd)
        return out
