"""Acknowledgement/retransmission helper (SRN1 / SRC1 building block).

FRODO implements its own acknowledgements and retransmissions for selected
messages at the service-discovery layer (it does not rely on TCP).  The
:class:`AckRetryScheduler` keeps one retry state machine per outstanding
exchange: the owner supplies a *send* callable, an acknowledgement time-out
and a retry limit; the scheduler resends until the exchange is acknowledged,
the limit is reached, or the exchange is cancelled (e.g. the subscription
expired or the service changed again).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.sim.engine import EventHandle, Simulator


@dataclass
class _PendingExchange:
    """Book-keeping for one unacknowledged message."""

    key: Hashable
    send: Callable[[int], None]
    attempts: int = 0
    max_retries: int = 3
    timeout: float = 2.0
    on_give_up: Optional[Callable[[Hashable], None]] = None
    timer: Optional[EventHandle] = None
    done: bool = False


class AckRetryScheduler:
    """Tracks outstanding acknowledged exchanges for one node."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._pending: Dict[Hashable, _PendingExchange] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def outstanding(self, key: Hashable) -> bool:
        """``True`` while an exchange with this key awaits acknowledgement."""
        return key in self._pending

    def start(
        self,
        key: Hashable,
        send: Callable[[int], None],
        timeout: float,
        max_retries: int,
        on_give_up: Optional[Callable[[Hashable], None]] = None,
    ) -> None:
        """Begin (or restart) an acknowledged exchange.

        ``send(attempt)`` is called immediately with ``attempt=0`` and again on
        every retransmission with the attempt number; ``on_give_up(key)`` is
        called when the retry limit is exhausted.  ``max_retries`` counts
        retransmissions *after* the initial transmission; a negative value
        means "retransmit indefinitely" (SRC1's unbounded persistence).
        """
        self.cancel(key)
        exchange = _PendingExchange(
            key=key,
            send=send,
            max_retries=max_retries,
            timeout=timeout,
            on_give_up=on_give_up,
        )
        self._pending[key] = exchange
        self._transmit(exchange)

    def acknowledge(self, key: Hashable) -> bool:
        """Mark the exchange as acknowledged; returns ``True`` if it was pending."""
        exchange = self._pending.pop(key, None)
        if exchange is None:
            return False
        exchange.done = True
        if exchange.timer is not None:
            exchange.timer.cancel()
        return True

    def cancel(self, key: Hashable) -> bool:
        """Abandon an exchange without invoking the give-up callback."""
        return self.acknowledge(key)

    def cancel_all(self) -> None:
        """Abandon every outstanding exchange."""
        for key in list(self._pending.keys()):
            self.cancel(key)

    # ------------------------------------------------------------------ internals
    def _transmit(self, exchange: _PendingExchange) -> None:
        if exchange.done:
            return
        exchange.send(exchange.attempts)
        exchange.attempts += 1
        exchange.timer = self._sim.schedule(exchange.timeout, self._on_timeout, exchange)

    def _on_timeout(self, exchange: _PendingExchange) -> None:
        if exchange.done or exchange.key not in self._pending:
            return
        unlimited = exchange.max_retries < 0
        if unlimited or exchange.attempts <= exchange.max_retries:
            self._transmit(exchange)
            return
        self._pending.pop(exchange.key, None)
        exchange.done = True
        if exchange.on_give_up is not None:
            exchange.on_give_up(exchange.key)
