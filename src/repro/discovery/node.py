"""Base machinery for protocol nodes.

Every FRODO / Jini / UPnP entity (User, Manager, Registry) derives from
:class:`DiscoveryNode`, which ties together:

* an :class:`~repro.net.interfaces.Endpoint` on the shared network,
* the transports the protocol uses (UDP, TCP, multicast),
* message dispatch: an incoming message of kind ``"foo_bar"`` is routed to
  the method ``handle_foo_bar(message)`` if it exists,
* trace helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Optional

from repro.net.addressing import Address, MULTICAST_GROUP
from repro.net.interfaces import Endpoint
from repro.net.messages import Message
from repro.net.multicast import MulticastService
from repro.net.network import Network
from repro.net.tcp import RemoteException, TcpTransport
from repro.net.udp import UdpTransport
from repro.sim.engine import Simulator
from repro.sim.process import Process


class NodeRole(str, Enum):
    """The three entity types of a service discovery protocol."""

    USER = "user"
    MANAGER = "manager"
    REGISTRY = "registry"


#: Sentinel distinguishing "kind not looked up yet" from "no handler exists"
#: in the per-node dispatch cache (``None`` is a valid cached answer).
_UNRESOLVED = object()

# ``is_update_related`` is imported lazily (repro.protocols imports this
# module via protocols.base, so a module-level import would be circular) and
# cached here after the first message so later sends skip the import machinery.
_is_update_related: Optional[Callable[[str, str], bool]] = None


@dataclass
class Transports:
    """The transports available to a protocol node."""

    udp: Optional[UdpTransport] = None
    tcp: Optional[TcpTransport] = None
    multicast: Optional[MulticastService] = None


class DiscoveryNode(Process):
    """Common base class for all protocol entities."""

    #: Protocol tag stamped on every message this node sends ("frodo", "jini", "upnp").
    protocol: str = "generic"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        role: NodeRole,
        transports: Transports,
    ) -> None:
        super().__init__(sim, node_id)
        self.network = network
        self.node_id = node_id
        self.role = role
        self.transports = transports
        self.endpoint = Endpoint(node_id, handler=self._on_message)
        #: kind -> bound handler (or ``None`` for unhandled kinds), filled
        #: lazily by :meth:`_on_message`; message dispatch is per delivery.
        self._dispatch: Dict[str, Optional[Callable[[Message], None]]] = {}
        network.join(self.endpoint)

    # ------------------------------------------------------------------ sending
    def make_message(
        self,
        receiver: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        update_related: Optional[bool] = None,
    ) -> Message:
        """Construct a message originating at this node.

        ``update_related`` defaults to the protocol-wide declaration in
        :mod:`repro.protocols.accounting` (each protocol's ``messages`` module
        registers its ``UPDATE_RELATED_KINDS``), so the efficiency-metric
        tagging rule lives in one place per protocol; an explicit ``True`` /
        ``False`` overrides the declaration for a single message.
        """
        if update_related is None:
            global _is_update_related
            if _is_update_related is None:
                from repro.protocols.accounting import is_update_related

                _is_update_related = is_update_related
            update_related = _is_update_related(self.protocol, kind)
        return Message(
            sender=self.node_id,
            receiver=receiver,
            protocol=self.protocol,
            kind=kind,
            payload=None if payload is None else dict(payload),
            update_related=update_related,
            msg_id=next(self.network.msg_ids),
        )

    def send_udp(
        self,
        receiver: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        update_related: Optional[bool] = None,
    ) -> Message:
        """Send a unicast UDP datagram; returns the message object."""
        if self.transports.udp is None:
            raise RuntimeError(f"{self.node_id}: UDP transport not configured")
        message = self.make_message(receiver, kind, payload, update_related)
        self.transports.udp.send(message)
        return message

    def send_tcp(
        self,
        receiver: Address,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        update_related: Optional[bool] = None,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_rex: Optional[Callable[[RemoteException], None]] = None,
    ) -> Message:
        """Send a message over reliable TCP; returns the message object."""
        if self.transports.tcp is None:
            raise RuntimeError(f"{self.node_id}: TCP transport not configured")
        message = self.make_message(receiver, kind, payload, update_related)
        self.transports.tcp.send(message, on_delivered=on_delivered, on_rex=on_rex)
        return message

    def send_multicast(
        self,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        update_related: Optional[bool] = None,
        copies: Optional[int] = None,
    ) -> Message:
        """Multicast a message to every other node; returns the message object."""
        if self.transports.multicast is None:
            raise RuntimeError(f"{self.node_id}: multicast transport not configured")
        message = self.make_message(MULTICAST_GROUP, kind, payload, update_related)
        self.transports.multicast.announce(message, copies=copies)
        return message

    # ------------------------------------------------------------------ receiving
    def _on_message(self, message: Message) -> None:
        if self.stopped:
            return
        kind = message.kind
        handler = self._dispatch.get(kind, _UNRESOLVED)
        if handler is _UNRESOLVED:
            handler = self._dispatch[kind] = getattr(self, f"handle_{kind}", None)
        if handler is None:
            self.on_unhandled(message)
            return
        handler(message)

    def on_unhandled(self, message: Message) -> None:
        """Hook for messages without a dedicated handler (ignored by default)."""
        if self.sim.tracer.enabled:
            self.trace("unhandled_message", kind=message.kind, sender=message.sender)

    # ------------------------------------------------------------------ interface state
    @property
    def can_send(self) -> bool:
        """``True`` when this node's transmitter is up."""
        return self.endpoint.interface.can_send()

    @property
    def can_receive(self) -> bool:
        """``True`` when this node's receiver is up."""
        return self.endpoint.interface.can_receive()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.node_id} ({self.role.value})>"
