"""Subscriptions.

A User subscribes either directly to the Manager (2-party subscription) or to
a Registry (3-party subscription) to receive update notifications.  The
subscription remains valid as long as the subscription lease does not expire;
Users renew periodically with ``SubscriptionRenew`` style messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.discovery.lease import Lease
from repro.net.addressing import Address


@dataclass
class Subscription:
    """One subscriber's interest in updates for one service."""

    subscriber: Address
    service_id: str
    lease: Lease
    #: Version of the service description the subscriber last acknowledged /
    #: is known to hold.  Used by SRN2 (retry on renewal from an inconsistent
    #: User) and SRC2 (monitoring of missed updates).
    acked_version: int = 0
    #: Arbitrary protocol-specific state (e.g. pending-retry flags).
    meta: Dict[str, Any] = field(default_factory=dict)

    def is_valid(self, now: float) -> bool:
        """``True`` while the subscription lease has not expired."""
        return self.lease.is_valid(now)


class SubscriptionTable:
    """All subscriptions held by a Manager or a Registry for its services."""

    def __init__(self, default_lease: float = 1800.0) -> None:
        self.default_lease = default_lease
        self._subs: Dict[tuple, Subscription] = {}

    def __len__(self) -> int:
        return len(self._subs)

    @staticmethod
    def _key(subscriber: Address, service_id: str) -> tuple:
        return (subscriber, service_id)

    def subscribe(
        self,
        subscriber: Address,
        service_id: str,
        now: float,
        lease_duration: Optional[float] = None,
        acked_version: int = 0,
    ) -> Subscription:
        """Create or refresh a subscription; returns the (new) record."""
        duration = lease_duration if lease_duration is not None else self.default_lease
        key = self._key(subscriber, service_id)
        sub = self._subs.get(key)
        if sub is None:
            sub = Subscription(
                subscriber=subscriber,
                service_id=service_id,
                lease=Lease(duration, now),
                acked_version=acked_version,
            )
            self._subs[key] = sub
        else:
            sub.lease.renew(now, duration)
            sub.acked_version = max(sub.acked_version, acked_version)
        return sub

    def renew(self, subscriber: Address, service_id: str, now: float) -> Optional[Subscription]:
        """Renew an existing subscription; returns ``None`` when unknown (purged)."""
        sub = self._subs.get(self._key(subscriber, service_id))
        if sub is None:
            return None
        sub.lease.renew(now)
        return sub

    def get(self, subscriber: Address, service_id: str) -> Optional[Subscription]:
        """Return the subscription record, if any."""
        return self._subs.get(self._key(subscriber, service_id))

    def unsubscribe(self, subscriber: Address, service_id: str) -> Optional[Subscription]:
        """Remove a subscription."""
        return self._subs.pop(self._key(subscriber, service_id), None)

    def purge_expired(self, now: float) -> List[Subscription]:
        """Drop expired subscriptions; return the purged records."""
        expired = [key for key, sub in self._subs.items() if not sub.lease.is_valid(now)]
        purged = []
        for key in expired:
            purged.append(self._subs.pop(key))
        return purged

    def subscribers_for(self, service_id: str, now: Optional[float] = None) -> List[Subscription]:
        """All (valid) subscriptions for ``service_id``."""
        out = []
        for sub in self._subs.values():
            if sub.service_id != service_id:
                continue
            if now is not None and not sub.is_valid(now):
                continue
            out.append(sub)
        return out

    def all(self) -> List[Subscription]:
        """All subscription records."""
        return list(self._subs.values())
