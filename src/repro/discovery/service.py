"""Service descriptions and queries.

A service description (SD) describes a service in terms of device type,
service type and an attribute list (Section 1 of the paper), for example::

    SD = {DeviceType=Printer, ServiceType=ColorPrinter,
          AttributeList{PaperSize=A4, Location=Study}}

Any change to the structure or to an attribute-value pair produces a new
*version* of the SD; consistency maintenance is about propagating the newest
version to all interested Users.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class ServiceDescription:
    """Immutable snapshot of a service at a particular version."""

    service_id: str
    manager_id: str
    device_type: str
    service_type: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    version: int = 1

    def __post_init__(self) -> None:
        # Freeze the attribute mapping so cached copies cannot be mutated in place.
        object.__setattr__(self, "attributes", dict(self.attributes))

    def with_update(
        self,
        service_type: Optional[str] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> "ServiceDescription":
        """Return the next version of this SD with the given fields changed."""
        new_attrs: Dict[str, Any] = dict(self.attributes)
        if attributes:
            new_attrs.update(attributes)
        return replace(
            self,
            service_type=service_type if service_type is not None else self.service_type,
            attributes=new_attrs,
            version=self.version + 1,
        )

    def is_newer_than(self, other: Optional["ServiceDescription"]) -> bool:
        """``True`` when this SD supersedes ``other`` (or ``other`` is ``None``)."""
        if other is None:
            return True
        return self.version > other.version

    def summary(self) -> str:
        """Short human-readable description."""
        return (
            f"{self.service_id} v{self.version} ({self.device_type}/{self.service_type})"
        )


@dataclass(frozen=True)
class ServiceQuery:
    """A User's requirements for the services it needs."""

    device_type: Optional[str] = None
    service_type: Optional[str] = None
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))

    def matches(self, sd: ServiceDescription) -> bool:
        """``True`` when ``sd`` satisfies every constraint of the query.

        Attribute constraints are matched exactly; the service type is *not*
        required to match attribute changes (a query for a printer still
        matches after its service type changes), so only the device type and
        explicitly constrained attributes are compared by default.
        """
        if self.device_type is not None and sd.device_type != self.device_type:
            return False
        if self.service_type is not None and sd.service_type != self.service_type:
            return False
        for key, value in self.attributes.items():
            if sd.attributes.get(key) != value:
                return False
        return True
