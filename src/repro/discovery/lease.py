"""Leases.

Leases (Gray & Cheriton) bound how long cached state remains valid without a
refresh.  All three modelled protocols use a 1800 s lease for registrations
and subscriptions; lessees renew periodically, and when renewals stop (e.g.
because of an interface failure) the lessor purges the state when the lease
expires, after which the purge-rediscovery techniques PR1-PR5 take over.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Lease:
    """A time-bounded grant that can be renewed."""

    duration: float
    granted_at: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("lease duration must be positive")
        self.expires_at = self.granted_at + self.duration

    def is_valid(self, now: float) -> bool:
        """``True`` while the lease has not expired."""
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        """Seconds until expiry (never negative)."""
        return max(0.0, self.expires_at - now)

    def renew(self, now: float, duration: float | None = None) -> None:
        """Extend the lease from ``now`` (optionally with a new duration)."""
        if duration is not None:
            if duration <= 0:
                raise ValueError("lease duration must be positive")
            self.duration = duration
        self.granted_at = now
        self.expires_at = now + self.duration

    def expire(self) -> None:
        """Force immediate expiry (used when a lessor explicitly purges)."""
        self.expires_at = self.granted_at
