"""Common service-discovery abstractions shared by all protocol models.

This package provides the entities that Section 4 of the paper defines:
service descriptions (device type, service type, attribute list), leases,
lease-based caches, subscriptions, and the base node machinery (message
dispatch, transports) used by the FRODO, Jini and UPnP models.
"""

from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.discovery.lease import Lease
from repro.discovery.cache import CacheEntry, ServiceCache
from repro.discovery.subscription import Subscription, SubscriptionTable
from repro.discovery.node import DiscoveryNode, Transports, NodeRole

__all__ = [
    "ServiceDescription",
    "ServiceQuery",
    "Lease",
    "CacheEntry",
    "ServiceCache",
    "Subscription",
    "SubscriptionTable",
    "DiscoveryNode",
    "Transports",
    "NodeRole",
]
