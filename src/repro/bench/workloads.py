"""The benchmark workload catalogue.

A workload is a named :class:`~repro.experiments.sweep.SweepSpec` that the
harness times end to end (grid expansion, cell execution, aggregation).  The
standard catalogue covers

* one ``system:<name>`` workload per registered system — a small per-system
  failure grid, so per-protocol cost regressions are attributable,
* ``grid:<N>-system`` (``grid:5-system`` for the standard registry) — the
  paper's full Table-4 comparison (all registered systems x failure-rate
  grid x replications), the hot path the parallel executor exists for,
* ``system:<name>@N`` — large-topology cells (N = 100 for every system,
  N = 1000 / 10000 for frodo3), which time the simulator core itself rather
  than executor overhead, and
* ``users-scaling`` — one sweep whose ``users`` axis spans topology sizes,
  timing the N-as-grid-dimension path end to end, and
* ``scenario:<name>`` — one small grid per non-default disruption-scenario
  family (churn, cascade, lossy, ...), so the cost of the scenario layer's
  extra events (leave/rejoin, loss windows, extra changes) is attributable
  per family, and
* ``federation:jini@k=<K>`` — the federated-registry topologies at
  K in {2, 4, 8} (push replication plus one gossip grid), timing the
  inter-registry layer (K lookup services, adjacency fan-out, anti-entropy
  rounds) rather than the single-registry protocols.

``quick=True`` shrinks replication counts, the rate grid and the largest
topology sizes for CI; the cell *shape* (which systems, which kind of grid)
is the same in both variants so quick numbers stay comparable run over run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.sweep import SweepSpec
from repro.protocols.registry import DeploymentRegistry, SYSTEMS

#: Failure-rate grids (fractions): CI-quick vs the paper-shaped full grid.
QUICK_RATES = (0.0, 0.2)
FULL_RATES = (0.0, 0.2, 0.4, 0.6, 0.8)

#: Replications per (system, rate) cell in each variant.
QUICK_RUNS = 2
FULL_RUNS = 5

#: Base seed shared by all bench workloads (results must be reproducible so
#: the serial-vs-parallel identity check is meaningful).
BENCH_BASE_SEED = 1906


@dataclass(frozen=True)
class BenchWorkload:
    """One named, timed sweep workload."""

    name: str
    spec: SweepSpec

    @property
    def cells(self) -> int:
        """Number of per-replication cells the workload executes."""
        return self.spec.total_runs

    @property
    def users(self) -> List[int]:
        """The topology sizes the workload covers (BENCH_sweep.json schema 2)."""
        return list(self.spec.users_grid)


def standard_workloads(
    quick: bool = False,
    registry: DeploymentRegistry = SYSTEMS,
) -> List[BenchWorkload]:
    """The standard catalogue: per-system grids plus the five-system grid."""
    rates: Sequence[float] = QUICK_RATES if quick else FULL_RATES
    runs = QUICK_RUNS if quick else FULL_RUNS
    names = registry.names()
    workloads = [
        BenchWorkload(
            name=f"system:{system}",
            spec=SweepSpec(
                systems=(system,),
                failure_rates=tuple(rates),
                runs_per_cell=runs,
                base_seed=BENCH_BASE_SEED,
            ),
        )
        for system in names
    ]
    workloads.append(
        BenchWorkload(
            name=f"grid:{len(names)}-system",
            spec=SweepSpec(
                systems=tuple(names),
                failure_rates=tuple(rates),
                runs_per_cell=runs,
                base_seed=BENCH_BASE_SEED,
            ),
        )
    )
    workloads.extend(_scale_workloads(quick, names))
    workloads.extend(_scenario_workloads(quick))
    workloads.extend(_federation_workloads(quick))
    return workloads


def _federation_workloads(quick: bool) -> List[BenchWorkload]:
    """Federated-registry workloads: ``federation:jini@k={2,4,8}``.

    Small grids over the canonical system tokens — the point is timing the
    inter-registry layer as K grows (push fan-out at every K, plus one
    partitioned-gossip grid at K=4), not re-timing single-registry Jini.
    Identical in quick and full variants; they are already CI-sized.
    """
    tokens = (
        "jini@k=2",
        "jini@k=4",
        "jini@k=8",
        "jini@assign=partition,k=4,mode=gossip,topology=ring",
    )
    return [
        BenchWorkload(
            name=f"federation:{token}",
            spec=SweepSpec(
                systems=(token,),
                failure_rates=(0.0, 0.2),
                runs_per_cell=QUICK_RUNS,
                base_seed=BENCH_BASE_SEED,
            ),
        )
        for token in tokens
    ]


def _scenario_workloads(quick: bool) -> List[BenchWorkload]:
    """One small frodo3 grid per non-default scenario family.

    Frodo3 keeps the cells cheap; the point is timing the scenario layer
    (plan building, churn restarts, loss-window draws, extra changes), not
    re-timing the protocols.  The grids are identical in quick and full
    variants — they are already CI-sized.
    """
    from repro.experiments.scenarios import SCENARIOS

    def _systems_for(name: str) -> tuple:
        # Partition cuts inter-registry links, which only federated systems
        # have: a frodo3 grid would time a no-op.  Pull mode exercises the
        # TTL stale-entry fallback, the family's most interesting path.
        if name == "partition":
            return ("jini@k=4,mode=pull",)
        return ("frodo3",)

    return [
        BenchWorkload(
            name=f"scenario:{name}",
            spec=SweepSpec(
                systems=_systems_for(name),
                failure_rates=(0.0, 0.2),
                runs_per_cell=QUICK_RUNS,
                base_seed=BENCH_BASE_SEED,
                scenario_name=name,
            ),
        )
        for name in SCENARIOS.names()
        if name != "table4"
    ]


def _scale_workloads(quick: bool, names: Sequence[str]) -> List[BenchWorkload]:
    """Large-topology workloads (the ``--users`` axis of the bench catalogue).

    These time the simulator core at scale: a handful of cells each, because
    one N=1000 cell already executes ~1M events.  ``system:frodo3@10000`` is
    excluded from ``quick`` runs (minutes per cell); everything else is sized
    to stay CI-friendly.
    """
    # Identical spec in both variants (the rate-0 cell is the cheap one):
    # CI's quick numbers are then directly comparable to the committed full
    # baseline for every ``@N`` workload.
    workloads = [
        BenchWorkload(
            name=f"system:{system}@100",
            spec=SweepSpec(
                systems=(system,),
                failure_rates=(0.0, 0.2),
                runs_per_cell=1,
                base_seed=BENCH_BASE_SEED,
                n_users=100,
            ),
        )
        for system in names
    ]
    workloads.append(
        BenchWorkload(
            name="system:frodo3@1000",
            spec=SweepSpec(
                systems=("frodo3",),
                failure_rates=(0.2,),
                runs_per_cell=1,
                base_seed=BENCH_BASE_SEED,
                n_users=1000,
            ),
        )
    )
    if not quick:
        workloads.append(
            BenchWorkload(
                name="system:frodo3@10000",
                spec=SweepSpec(
                    systems=("frodo3",),
                    failure_rates=(0.2,),
                    runs_per_cell=1,
                    base_seed=BENCH_BASE_SEED,
                    n_users=10000,
                ),
            )
        )
    workloads.append(
        BenchWorkload(
            name="users-scaling",
            spec=SweepSpec(
                systems=("frodo3",),
                failure_rates=(0.2,),
                runs_per_cell=1,
                base_seed=BENCH_BASE_SEED,
                users=(5, 100, 1000) if not quick else (5, 100),
            ),
        )
    )
    return workloads


def find_workload(name: str, workloads: Sequence[BenchWorkload]) -> BenchWorkload:
    """Look a workload up by name; raises :class:`ValueError` with the catalogue."""
    for workload in workloads:
        if workload.name == name:
            return workload
    known = ", ".join(workload.name for workload in workloads)
    raise ValueError(f"unknown bench workload {name!r}; available: {known}")
