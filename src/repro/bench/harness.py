"""Timing harness: measure sweep workloads serial vs parallel.

For every workload the harness

1. runs the sweep through the serial executor and through a parallel
   executor (``jobs`` workers), timing each end to end with
   :func:`time.perf_counter` (best of ``repeats`` attempts),
2. checks that the two executions serialise to byte-identical JSON (the
   determinism contract of the executor layer), and
3. derives throughput (cells/sec) and the parallel speedup.

:func:`write_bench_json` emits the result as ``BENCH_sweep.json`` — the
repo's recorded perf trajectory (field meanings documented in
EXPERIMENTS.md).  Timings are measurements, not deterministic output; the
determinism guarantee applies to the sweep *results* embedded in the check,
never to the recorded seconds.

:func:`check_regression` compares a fresh bench session against a committed
baseline file: any workload whose serial throughput dropped by more than the
tolerance fails the check.  CI runs this against the committed
``BENCH_sweep.json`` so hot-path regressions surface as a red build instead
of silently accumulating.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.workloads import BenchWorkload, standard_workloads
from repro.experiments.executors import make_executor
from repro.experiments.report import sweep_to_dict, to_json
from repro.experiments.sweep import sweep

#: Format version of BENCH_sweep.json (bumped on incompatible changes).
#: Schema 2 adds per-workload ``users`` (the topology sizes a workload
#: covers) for the large-N scale workloads.  Schema 3 tracks the
#: parameterized-system registry: the ``jini`` family joins the per-system
#: and cross-system grids (``grid:6-system``) and ``federation:jini@k=...``
#: workloads time the federated topologies at K in {2, 4, 8}.
BENCH_SCHEMA_VERSION = 3

#: Default fractional serial-throughput drop that fails the regression gate.
DEFAULT_REGRESSION_TOLERANCE = 0.20

#: Clock used for timing (injectable for tests).
Clock = Callable[[], float]


@dataclass(frozen=True)
class BenchRecord:
    """One workload's measured serial and parallel execution."""

    name: str
    #: Number of per-replication sweep cells the workload executes.
    cells: int
    #: Worker count of the parallel execution.
    jobs: int
    #: Best-of-``repeats`` wall time of each execution path, in seconds.
    serial_seconds: float
    parallel_seconds: float
    #: Throughput: cells / wall-time.
    serial_cells_per_sec: float
    parallel_cells_per_sec: float
    #: serial_seconds / parallel_seconds (> 1 means the pool paid off).
    speedup: float
    #: Whether serial and parallel output were byte-identical (must be True).
    identical: bool
    #: Topology sizes (number of users) the workload covers (schema 2).
    users: Tuple[int, ...] = (5,)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cells": self.cells,
            "users": list(self.users),
            "jobs": self.jobs,
            "serial_seconds": self.serial_seconds,
            "parallel_seconds": self.parallel_seconds,
            "serial_cells_per_sec": self.serial_cells_per_sec,
            "parallel_cells_per_sec": self.parallel_cells_per_sec,
            "speedup": self.speedup,
            "identical": self.identical,
        }


def _timed_sweep_json(workload: BenchWorkload, jobs: int, clock: Clock) -> Tuple[float, str]:
    """One timed execution; returns (seconds, canonical JSON of the result)."""
    executor = make_executor(jobs)
    start = clock()
    result = sweep(workload.spec, executor=executor)
    elapsed = clock() - start
    return elapsed, to_json(sweep_to_dict(result, include_runs=True))


def time_workload(
    workload: BenchWorkload,
    jobs: int = 2,
    repeats: int = 1,
    clock: Clock = time.perf_counter,
) -> BenchRecord:
    """Measure one workload serial and parallel; best wall time of ``repeats``."""
    if jobs < 2:
        raise ValueError(f"bench needs jobs >= 2 to measure a speedup, got {jobs}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    serial_seconds: Optional[float] = None
    parallel_seconds: Optional[float] = None
    serial_json = parallel_json = ""
    for _ in range(repeats):
        elapsed, serial_json = _timed_sweep_json(workload, jobs=1, clock=clock)
        serial_seconds = elapsed if serial_seconds is None else min(serial_seconds, elapsed)
        elapsed, parallel_json = _timed_sweep_json(workload, jobs=jobs, clock=clock)
        parallel_seconds = (
            elapsed if parallel_seconds is None else min(parallel_seconds, elapsed)
        )
    assert serial_seconds is not None and parallel_seconds is not None
    return BenchRecord(
        name=workload.name,
        cells=workload.cells,
        jobs=jobs,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        serial_cells_per_sec=_per_second(workload.cells, serial_seconds),
        parallel_cells_per_sec=_per_second(workload.cells, parallel_seconds),
        speedup=_ratio(serial_seconds, parallel_seconds),
        identical=serial_json == parallel_json,
        users=tuple(workload.users),
    )


def _per_second(cells: int, seconds: float) -> float:
    return cells / seconds if seconds > 0 else float("inf")


def _ratio(serial: float, parallel: float) -> float:
    return serial / parallel if parallel > 0 else float("inf")


def run_bench(
    workloads: Optional[Sequence[BenchWorkload]] = None,
    jobs: int = 2,
    repeats: int = 1,
    quick: bool = False,
    clock: Clock = time.perf_counter,
    observer: Optional[Callable[[BenchRecord], None]] = None,
) -> List[BenchRecord]:
    """Time every workload; defaults to the standard catalogue."""
    if workloads is None:
        workloads = standard_workloads(quick=quick)
    records: List[BenchRecord] = []
    for workload in workloads:
        record = time_workload(workload, jobs=jobs, repeats=repeats, clock=clock)
        records.append(record)
        if observer is not None:
            observer(record)
    return records


def bench_to_dict(
    records: Sequence[BenchRecord],
    quick: bool = False,
    repeats: int = 1,
) -> Dict[str, Any]:
    """The BENCH_sweep.json payload (schema documented in EXPERIMENTS.md)."""
    total_cells = sum(record.cells for record in records)
    total_serial = sum(record.serial_seconds for record in records)
    total_parallel = sum(record.parallel_seconds for record in records)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "workloads": [record.to_dict() for record in records],
        "totals": {
            "cells": total_cells,
            "serial_seconds": total_serial,
            "parallel_seconds": total_parallel,
            "speedup": _ratio(total_serial, total_parallel),
            "all_identical": all(record.identical for record in records),
        },
    }


def write_bench_json(data: Dict[str, Any], path: str) -> str:
    """Write the bench payload as canonical JSON (see report.to_json); returns the text."""
    text = to_json(data)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def check_regression(
    records: Sequence[BenchRecord],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare serial throughput against a committed baseline payload.

    Returns one human-readable failure line per workload whose serial
    cells/sec dropped by more than ``tolerance`` (a fraction) relative to the
    baseline's figure for the *same workload name*.  Workloads present on
    only one side are ignored — the gate compares like with like, so the
    catalogue can grow without invalidating old baselines.  An empty list
    means the gate passed.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be a fraction in [0, 1), got {tolerance}")
    baseline_rates = {
        workload.get("name"): workload.get("serial_cells_per_sec")
        for workload in baseline.get("workloads", [])
    }
    failures: List[str] = []
    for record in records:
        reference = baseline_rates.get(record.name)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        floor = reference * (1.0 - tolerance)
        if record.serial_cells_per_sec < floor:
            failures.append(
                f"{record.name}: serial {record.serial_cells_per_sec:.1f} cells/s "
                f"is below {floor:.1f} (baseline {reference:.1f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def load_baseline(path: str) -> Dict[str, Any]:
    """Read a committed BENCH_sweep.json for :func:`check_regression`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "workloads" not in data:
        raise ValueError(f"{path} is not a bench payload (no 'workloads' key)")
    return data


def format_bench_table(records: Sequence[BenchRecord]) -> str:
    """Fixed-width table of one bench session (for terminal output)."""
    header = (
        f"{'workload':<20} {'cells':>6} {'serial s':>9} {'par s':>9} "
        f"{'ser c/s':>8} {'par c/s':>8} {'speedup':>8} {'same':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.name:<20} {r.cells:>6d} {r.serial_seconds:>9.3f} "
            f"{r.parallel_seconds:>9.3f} {r.serial_cells_per_sec:>8.1f} "
            f"{r.parallel_cells_per_sec:>8.1f} {r.speedup:>8.2f} "
            f"{'yes' if r.identical else 'NO':>5}"
        )
    return "\n".join(lines) + "\n"
