"""Benchmark subsystem: timed sweep workloads and the perf trajectory file.

The bench harness runs representative sweep workloads — one small ``system:<name>``
grid per registered system, the paper's full comparison grid
(``grid:<N>-system``), and large-topology ``system:<name>@N`` /
``users-scaling`` workloads that time the simulator core at scale — once
through the serial executor and once through the parallel executor, records
wall time, throughput (cells/sec) and parallel speedup, verifies that the
two executions produce byte-identical JSON, and emits ``BENCH_sweep.json``
(schema documented in EXPERIMENTS.md) to seed the repo's perf trajectory.

* :mod:`repro.bench.workloads` — the workload catalogue (``--quick`` and
  full variants),
* :mod:`repro.bench.harness` — timing, identity checking and the
  ``BENCH_sweep.json`` emitter.
"""

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    bench_to_dict,
    check_regression,
    format_bench_table,
    load_baseline,
    run_bench,
    time_workload,
    write_bench_json,
)
from repro.bench.workloads import BenchWorkload, find_workload, standard_workloads

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "BenchWorkload",
    "bench_to_dict",
    "check_regression",
    "find_workload",
    "format_bench_table",
    "load_baseline",
    "run_bench",
    "standard_workloads",
    "time_workload",
    "write_bench_json",
]
