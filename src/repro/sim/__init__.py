"""Discrete-event simulation kernel.

This package is the substitute for the Rapide ADL tool-suite used by the
paper: a deterministic, single-threaded discrete-event engine with an event
calendar, cancellable timers, per-stream seeded random number generators and
a structured trace log.  All protocol models in :mod:`repro.protocols` are
plain Python state machines driven by this kernel.
"""

from repro.sim.engine import Simulator, EventHandle, SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.process import Process
from repro.sim.timers import PeriodicTimer, OneShotTimer, TimerWheel
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Event",
    "EventQueue",
    "Process",
    "PeriodicTimer",
    "OneShotTimer",
    "TimerWheel",
    "RngRegistry",
    "derive_seed",
    "TraceRecord",
    "Tracer",
]
