"""Timer helpers built on top of the simulator scheduling API."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class OneShotTimer:
    """A restartable single-shot timer.

    Used by the protocol models for time-outs (e.g. waiting for an
    acknowledgement): :meth:`start` arms the timer, :meth:`cancel` disarms
    it, and re-arming an armed timer replaces the previous deadline.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """``True`` when a deadline is pending."""
        return self._handle is not None and self._handle.active

    def start(self, delay: float, *args: Any) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire, *args)

    def cancel(self) -> None:
        """Disarm the timer if it is armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self, *args: Any) -> None:
        self._handle = None
        self._callback(*args)


class PeriodicTimer:
    """A repeating timer with optional initial offset and per-tick jitter."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        """``True`` while the timer is active."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking; the first tick fires after ``initial_delay`` (default: one interval)."""
        self.stop()
        self._running = True
        delay = self.interval if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(max(0.0, delay), self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if not self._running:
            return
        delay = self.interval
        if self._jitter is not None:
            delay = max(0.0, delay + self._jitter())
        self._handle = self._sim.schedule(delay, self._tick)
