"""Timers: a batched timer wheel plus the restartable timer helpers.

Protocol models arm one or more timers per node (renewals, announcements,
time-outs).  Scheduling each of those directly on the engine calendar makes
the main heap — and every push/pop — scale with *nodes x timers*, which
dominates large-N runs, and a cancel/restart-heavy protocol leaves the heap
full of dead entries.  The :class:`TimerWheel` keeps all timers in a separate
heap that the engine's run loop merges with the event calendar by key, so
timer churn never touches the (much larger) event heap.

Determinism contract
--------------------
The wheel preserves the *exact* firing order of flat per-timer scheduling:
every timer draws its ``(time, priority, sequence)`` key from the engine
queue's own sequence counter
(:meth:`~repro.sim.events.EventQueue.next_sequence`), so timers and ordinary
events share one total order, assigned in the same program order as a flat
schedule would assign it.  The engine fires whichever of the two heap heads
has the smaller key — a two-way merge that reproduces the single-heap order
event for event (``executed_events`` included).

Cancellation is an O(1) flag; dead timers are compacted away once they
outnumber live ones.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.sim.events import Event, SimulationError

if TYPE_CHECKING:  # imported for annotations only (engine imports this module)
    from repro.sim.engine import Simulator

#: Compaction threshold for cancelled wheel entries (mirrors the event queue).
_MIN_COMPACT = 64


class TimerWheel:
    """Heap of per-node timers, merged with the event calendar by the engine.

    The engine run loop reads ``_heap``/``_live``/``_dead`` directly on its
    hot path; everything else goes through the methods below.
    """

    __slots__ = (
        "_sim",
        "_queue",
        "_heap",
        "_live",
        "_dead",
        "hwm",
        "scheduled_total",
        "cancelled_total",
        "compactions",
    )

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._queue = sim._queue
        self._heap: List[tuple] = []  # (time, priority, sequence, Event)
        self._live = 0
        self._dead = 0
        # Always-on telemetry counters (read by repro.obs.telemetry).
        self.hwm = 0
        self.scheduled_total = 0
        self.cancelled_total = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self._live > 0

    # ------------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Arm a timer ``delay`` seconds from now; returns its cancellation record."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._sim._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Arm a timer at absolute ``time``; returns its cancellation record."""
        if time < self._sim._now:
            raise SimulationError(
                f"cannot schedule timer at {time!r}, current time is {self._sim._now!r}"
            )
        # Sequence draw inlined from EventQueue.next_sequence(): timers are
        # re-armed once per lease renewal, which is hot at large N.
        queue = self._queue
        sequence = queue._next_seq
        queue._next_seq = sequence + 1
        event = Event(time, priority, sequence, callback, args)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        self.scheduled_total += 1
        if len(self._heap) > self.hwm:
            self.hwm = len(self._heap)
        return event

    def cancel(self, event: Event) -> bool:
        """Disarm a timer.  Returns ``True`` if it was still live."""
        if event.cancelled or event.fired:
            return False
        event.cancelled = True
        self._live -= 1
        self._dead += 1
        self.cancelled_total += 1
        if self._dead > _MIN_COMPACT and self._dead * 2 > len(self._heap):
            # In place (slice assignment, not rebinding): the engine's run
            # loop holds a direct reference to this list across the run.
            heap = self._heap
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            heapq.heapify(heap)
            self._dead = 0
            self.compactions += 1
        return True

    # ------------------------------------------------------------------ inspection
    def peek(self) -> Optional[tuple]:
        """The next live ``(time, priority, sequence, Event)`` entry, or ``None``.

        Skips (and drops) cancelled heads as a side effect, so the head it
        returns is always live.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0] if heap else None

    def pop(self) -> None:
        """Remove the head entry previously returned by :meth:`peek`."""
        heapq.heappop(self._heap)
        self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live timer, or ``None`` when idle."""
        entry = self.peek()
        return None if entry is None else entry[0]

    def clear(self) -> None:
        """Drop all pending timers."""
        self._heap.clear()
        self._live = 0
        self._dead = 0


class OneShotTimer:
    """A restartable single-shot timer.

    Used by the protocol models for time-outs (e.g. waiting for an
    acknowledgement): :meth:`start` arms the timer, :meth:`cancel` disarms
    it, and re-arming an armed timer replaces the previous deadline.
    """

    __slots__ = ("_wheel", "_callback", "_event")

    def __init__(self, sim: "Simulator", callback: Callable[..., Any]) -> None:
        self._wheel = sim.timers
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """``True`` when a deadline is pending."""
        event = self._event
        return event is not None and not event.cancelled and not event.fired

    def start(self, delay: float, *args: Any) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._wheel.schedule(delay, self._fire, *args)

    def cancel(self) -> None:
        """Disarm the timer if it is armed."""
        event = self._event
        if event is not None:
            self._wheel.cancel(event)
            self._event = None

    def _fire(self, *args: Any) -> None:
        self._event = None
        self._callback(*args)


class PeriodicTimer:
    """A repeating timer with optional initial offset and per-tick jitter."""

    __slots__ = ("_wheel", "interval", "_callback", "_jitter", "_event", "_running")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], Any],
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._wheel = sim.timers
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """``True`` while the timer is active."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking; the first tick fires after ``initial_delay`` (default: one interval)."""
        self.stop()
        self._running = True
        delay = self.interval if initial_delay is None else initial_delay
        self._event = self._wheel.schedule(max(0.0, delay), self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        event = self._event
        if event is not None:
            self._wheel.cancel(event)
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if not self._running:
            return
        delay = self.interval
        if self._jitter is not None:
            delay = max(0.0, delay + self._jitter())
        self._event = self._wheel.schedule(delay, self._tick)
