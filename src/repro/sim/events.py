"""Event calendar primitives.

The calendar is a binary heap of :class:`Event` records ordered by
``(time, priority, sequence)``.  The sequence number guarantees a total,
deterministic order for events scheduled at the same instant, which in turn
makes every simulation run exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    sequence:
        Monotonically increasing insertion counter; makes ordering total.
    callback:
        Callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set by :meth:`EventQueue.cancel`; cancelled events are skipped.
    fired:
        Set by :meth:`fire`; lets handles report that the event is spent.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)

    def fire(self) -> Any:
        """Invoke the callback unless the event was cancelled."""
        if self.cancelled:
            return None
        self.fired = True
        return self.callback(*self.args)


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Insert a new event and return it (usable as a cancellation handle)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> bool:
        """Mark an event as cancelled.  Returns ``True`` if it was still live."""
        if event.cancelled or event.fired:
            return False
        event.cancelled = True
        self._live -= 1
        return True

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
