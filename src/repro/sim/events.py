"""Event calendar primitives.

The calendar is a binary heap ordered by the explicit key
``(time, priority, sequence)``.  The sequence number guarantees a total,
deterministic order for events scheduled at the same instant, which in turn
makes every simulation run exactly reproducible for a given seed.

The hot path is flattened for large-N simulations:

* heap entries are plain tuples, so ``heapq`` compares ``(time, priority,
  sequence)`` prefixes entirely in C — no Python-level ``__lt__`` is ever
  invoked during sift operations (the sequence is unique, so the comparison
  never reaches the trailing payload elements);
* fire-and-forget callbacks (:meth:`EventQueue.push_call` — message
  deliveries, retransmissions) carry no :class:`Event` object at all, saving
  one allocation per schedule;
* cancelled events no longer rot in the heap: :meth:`EventQueue.cancel`
  triggers a compaction once dead entries outnumber live ones (beyond a
  small threshold), so a workload that arms and cancels many timers keeps
  its heap — and every subsequent push/pop — proportional to the *live*
  event count.

Two entry shapes share one heap (distinguished by tuple length):

* ``(time, priority, sequence, callback, args)`` — fire-and-forget,
* ``(time, priority, sequence, event)`` — cancellable, wrapping an
  :class:`Event` record.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compaction threshold: never compact below this many dead entries (the
#: rebuild is O(n); tiny heaps are not worth it).
_MIN_COMPACT = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A single cancellable scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    sequence:
        Monotonically increasing insertion counter; makes ordering total.
    callback:
        Callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set by :meth:`EventQueue.cancel`; cancelled events are skipped.
    fired:
        Set when the event executes; lets handles report that it is spent.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    @property
    def key(self) -> Tuple[float, int, int]:
        """The total-order sort key ``(time, priority, sequence)``."""
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def fire(self) -> Any:
        """Invoke the callback unless the event was cancelled."""
        if self.cancelled:
            return None
        self.fired = True
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:g}, prio={self.priority}, seq={self.sequence}, {state})"


class EventQueue:
    """Deterministic priority queue of scheduled callbacks."""

    __slots__ = ("_heap", "_next_seq", "_live", "_dead", "hwm", "cancelled_total", "compactions")

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0  # cancelled Event entries still buried in the heap
        # Always-on telemetry counters (read by repro.obs.telemetry): heap
        # high-water mark, lifetime cancellations, and compaction passes.
        self.hwm = 0
        self.cancelled_total = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self._live > 0

    # ------------------------------------------------------------------ sequencing
    def next_sequence(self) -> int:
        """Consume and return the next insertion sequence number.

        Exposed so cooperating structures (the
        :class:`~repro.sim.timers.TimerWheel`) can draw keys from the *same*
        total order; the engine then merges both heaps by key, which yields
        exactly the firing order a flat schedule would have produced.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    # ------------------------------------------------------------------ insertion
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Insert a cancellable event and return it (the cancellation handle)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        if len(self._heap) > self.hwm:
            self.hwm = len(self._heap)
        return event

    def push_call(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        """Insert a fire-and-forget callback (no handle, no Event allocation)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, callback, args))
        self._live += 1
        if len(self._heap) > self.hwm:
            self.hwm = len(self._heap)

    # ------------------------------------------------------------------ cancellation
    def cancel(self, event: Event) -> bool:
        """Mark an event as cancelled.  Returns ``True`` if it was still live."""
        if event.cancelled or event.fired:
            return False
        event.cancelled = True
        self._live -= 1
        self._dead += 1
        self.cancelled_total += 1
        if self._dead > _MIN_COMPACT and self._dead * 2 > len(self._heap):
            self._compact()
        return True

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (heapify is O(n)).

        In place (slice assignment, not rebinding): the engine's run loop
        holds a direct reference to the heap list across the whole run.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if len(entry) == 5 or not entry[3].cancelled]
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------ removal
    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap and len(heap[0]) == 4 and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def peek_key(self) -> Optional[Tuple[float, int, int]]:
        """The ``(time, priority, sequence)`` key of the next live event, or ``None``."""
        heap = self._heap
        while heap and len(heap[0]) == 4 and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        head = heap[0]
        return (head[0], head[1], head[2])

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the next live heap entry, or ``None`` if empty.

        The entry is either ``(time, priority, seq, callback, args)`` or
        ``(time, priority, seq, event)`` — callers dispatch on ``len()``.
        This is the engine's hot path; :meth:`pop` is the compatibility
        wrapper that always returns an :class:`Event`.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                if entry[3].cancelled:
                    self._dead -= 1
                    continue
            self._live -= 1
            return entry
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        entry = self.pop_entry()
        if entry is None:
            return None
        if len(entry) == 4:
            return entry[3]
        return Event(entry[0], entry[1], entry[2], entry[3], entry[4])

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
        self._dead = 0
