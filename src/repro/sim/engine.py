"""The simulation engine.

:class:`Simulator` owns the clock and the event calendar.  Protocol models
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the engine executes them in
deterministic time order.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.tracing import Tracer


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class EventHandle:
    """Opaque handle returned by the scheduling API; supports cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: EventQueue) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """Absolute time at which the underlying event fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """``True`` while the event has not been cancelled or fired."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> bool:
        """Cancel the scheduled event.  Returns ``True`` if it was still live."""
        return self._queue.cancel(self._event)


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    tracer:
        Optional :class:`~repro.sim.tracing.Tracer` used by models to record
        structured events.  A fresh tracer is created when omitted.
    """

    def __init__(self, start_time: float = 0.0, tracer: Optional[Tracer] = None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.tracer = tracer if tracer is not None else Tracer()
        self.executed_events = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not yet fired, not cancelled) events."""
        return len(self._queue)

    # -------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, current time is {self._now!r}"
            )
        event = self._queue.push(time, callback, args, priority=priority)
        return EventHandle(event, self._queue)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a previously scheduled event."""
        return handle.cancel()

    # --------------------------------------------------------------- execution
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event calendar went backwards")
        self._now = event.time
        event.fire()
        self.executed_events += 1
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendar empties or the clock reaches ``until``.

        Returns the final simulation time.  When ``until`` is given the clock
        is advanced to exactly ``until`` even if the last event fired earlier.
        """
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ helpers
    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    def trace(self, category: str, event: str, **fields: Any) -> None:
        """Record a structured trace entry at the current simulation time."""
        self.tracer.record(self._now, category, event, **fields)
