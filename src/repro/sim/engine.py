"""The simulation engine.

:class:`Simulator` owns the clock and the event calendar.  Protocol models
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the engine executes them in
deterministic time order.

Two scheduling tiers exist:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` for cancellation — use these when the caller may need
  to disarm the callback;
* :meth:`Simulator.post` / :meth:`Simulator.post_at` are the flattened
  fire-and-forget tier (message deliveries, retransmissions): no handle and
  no per-event object is allocated, which is what keeps large-N simulations
  (thousands of in-flight deliveries) cheap.

Per-node timers go through :attr:`Simulator.timers` — a
:class:`~repro.sim.timers.TimerWheel` holding a separate heap that the run
loop merges with the event calendar by ``(time, priority, sequence)`` key.
Both heaps draw sequence numbers from one shared counter, so the merged
firing order is exactly the order a single flat calendar would produce.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from math import inf
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue, SimulationError
from repro.sim.tracing import Tracer

__all__ = ["EventHandle", "SimulationError", "Simulator"]


class EventHandle:
    """Opaque handle returned by the scheduling API; supports cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: EventQueue) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """Absolute time at which the underlying event fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """``True`` while the event has not been cancelled or fired."""
        event = self._event
        return not event.cancelled and not event.fired

    def cancel(self) -> bool:
        """Cancel the scheduled event.  Returns ``True`` if it was still live."""
        return self._queue.cancel(self._event)


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    tracer:
        Optional :class:`~repro.sim.tracing.Tracer` used by models to record
        structured events.  A fresh tracer is created when omitted.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_running",
        "_stopped",
        "tracer",
        "executed_events",
        "timers",
    )

    def __init__(self, start_time: float = 0.0, tracer: Optional[Tracer] = None) -> None:
        # Imported here (not at module top) to break the engine <-> timers cycle:
        # timers needs engine types only for annotations.
        from repro.sim.timers import TimerWheel

        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.tracer = tracer if tracer is not None else Tracer()
        self.executed_events = 0
        #: Batched timer wheel for per-node timers (see :mod:`repro.sim.timers`).
        self.timers = TimerWheel(self)

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not yet fired, not cancelled) events, timers included."""
        return len(self._queue) + len(self.timers)

    # -------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        queue = self._queue
        return EventHandle(queue.push(self._now + delay, callback, args, priority), queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, current time is {self._now!r}"
            )
        queue = self._queue
        return EventHandle(queue.push(time, callback, args, priority), queue)

    def post(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no per-event allocation.

        The push is inlined (no :meth:`EventQueue.push_call` hop): deliveries
        run through here once per message on the hot path.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(queue._heap, (self._now + delay, priority, seq, callback, args))
        queue._live += 1
        if len(queue._heap) > queue.hwm:
            queue.hwm = len(queue._heap)

    def post_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no handle, no per-event allocation."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, current time is {self._now!r}"
            )
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        heappush(queue._heap, (time, priority, seq, callback, args))
        queue._live += 1
        if len(queue._heap) > queue.hwm:
            queue.hwm = len(queue._heap)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a previously scheduled event."""
        return handle.cancel()

    # --------------------------------------------------------------- execution
    def step(self) -> bool:
        """Execute the single next event (or timer).  Returns ``False`` when none remain."""
        timers = self.timers
        tentry = timers.peek()
        if tentry is not None:
            key = self._queue.peek_key()
            if key is None or (tentry[0], tentry[1], tentry[2]) < key:
                timers.pop()
                self._now = tentry[0]
                event = tentry[3]
                event.fired = True
                event.callback(*event.args)
                self.executed_events += 1
                return True
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        if entry[0] < self._now:  # pragma: no cover - defensive
            raise SimulationError("event calendar went backwards")
        self._now = entry[0]
        if len(entry) == 5:
            entry[3](*entry[4])
        else:
            event = entry[3]
            event.fired = True
            event.callback(*event.args)
        self.executed_events += 1
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the calendars empty or the clock reaches ``until``.

        Returns the final simulation time.  When ``until`` is given the clock
        is advanced to exactly ``until`` even if the last event fired earlier.

        The loop is a two-way merge of the event heap and the timer-wheel
        heap: both hold ``(time, priority, sequence, ...)`` tuples keyed from
        one shared sequence counter, so comparing their heads picks the exact
        event a single flat calendar would have fired next.  The heaps are
        accessed directly here — this loop is the simulation's hot path.
        """
        self._running = True
        self._stopped = False
        queue = self._queue
        timers = self.timers
        qheap = queue._heap
        theap = timers._heap
        # ``inf`` sentinel keeps the per-event bound check to one C-level
        # float comparison instead of an ``is not None`` test plus a compare.
        limit = inf if until is None else until
        pop = heappop
        executed = 0
        try:
            while not self._stopped:
                # Drop cancelled heads so the head comparison sees live work.
                # ``_dead`` counts buried cancellations, so a zero counter
                # proves the head is live without inspecting it.
                if queue._dead:
                    while qheap and len(qheap[0]) == 4 and qheap[0][3].cancelled:
                        pop(qheap)
                        queue._dead -= 1
                if timers._dead:
                    while theap and theap[0][3].cancelled:
                        pop(theap)
                        timers._dead -= 1
                if theap:
                    thead = theap[0]
                    # Tuple comparison stays in C: sequences are unique across
                    # both heaps, so it never reaches the payload elements.
                    if not qheap or thead < qheap[0]:
                        time = thead[0]
                        if time > limit:
                            break
                        pop(theap)
                        timers._live -= 1
                        self._now = time
                        event = thead[3]
                        event.fired = True
                        event.callback(*event.args)
                        executed += 1
                        continue
                if not qheap:
                    break
                entry = pop(qheap)
                time = entry[0]
                if time > limit:
                    heappush(qheap, entry)
                    break
                queue._live -= 1
                self._now = time
                if len(entry) == 5:
                    entry[3](*entry[4])
                else:
                    event = entry[3]
                    event.fired = True
                    event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
            self.executed_events += executed
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ helpers
    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    def trace(self, category: str, event: str, **fields: Any) -> None:
        """Record a structured trace entry at the current simulation time."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(self._now, category, event, **fields)
