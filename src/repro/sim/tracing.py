"""Structured trace log.

Every model component records salient events (message sent, lease expired,
user became consistent, ...) as :class:`TraceRecord` entries.  The analysis
layer uses the trace for debugging and for the per-run message accounting
described in the paper's Update Efficiency metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single structured trace entry."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return a named field, or ``default`` when absent."""
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"TraceRecord(t={self.time:.6f}, {self.category}/{self.event}, {extra})"


class Tracer:
    """Append-only list of :class:`TraceRecord` with simple query helpers.

    Tracing can be disabled entirely (``enabled=False``) for large parameter
    sweeps where only the aggregate counters matter; the protocol models
    always go through :meth:`record` so a disabled tracer is nearly free.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in insertion (time) order."""
        return self._records

    def record(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time=time, category=category, event=event, fields=fields))

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    # ------------------------------------------------------------------ queries
    def filter(
        self,
        category: Optional[str] = None,
        event: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all of the given criteria."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`filter` criteria."""
        return len(self.filter(**kwargs))

    def categories(self) -> Iterable[str]:
        """Distinct categories present in the trace."""
        return sorted({rec.category for rec in self._records})
