"""Structured trace log.

Every model component records salient events (message sent, lease expired,
user became consistent, ...) as :class:`TraceRecord` entries.  The analysis
layer uses the trace for debugging and for the per-run message accounting
described in the paper's Update Efficiency metric.

Records flow through a pluggable sink (:mod:`repro.obs.sinks`): the default
in-memory sink keeps the classic query-able record list, the NDJSON sink
streams records to disk with bounded memory (full traces at N=1000), and the
null sink discards them.  The tracer itself only decides *whether* a record
is made; the sink decides *where* it goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator, List, Optional

if TYPE_CHECKING:  # imported for annotations only (obs.sinks imports this module)
    from repro.obs.sinks import TraceSink


@dataclass(frozen=True)
class TraceRecord:
    """A single structured trace entry."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return a named field, or ``default`` when absent."""
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"TraceRecord(t={self.time:.6f}, {self.category}/{self.event}, {extra})"


class Tracer:
    """Gate and router for :class:`TraceRecord` entries.

    Tracing can be disabled entirely (``enabled=False``) for large parameter
    sweeps where only the aggregate counters matter; the protocol models
    always go through :meth:`record` so a disabled tracer is nearly free
    (one attribute load and one branch, no record allocation).

    ``sink`` selects the destination (default: an in-memory
    :class:`~repro.obs.sinks.MemorySink`).  The query helpers
    (:meth:`filter`, :meth:`count`, :meth:`categories`, :attr:`records`)
    operate on the in-memory record list and therefore see nothing when a
    streaming or null sink is installed — use ``python -m repro trace`` to
    query streamed captures.
    """

    def __init__(self, enabled: bool = True, sink: Optional["TraceSink"] = None) -> None:
        if sink is None:
            # Function-level import: obs.sinks imports TraceRecord from this
            # module, so a top-level import would be circular.
            from repro.obs.sinks import MemorySink

            sink = MemorySink()
        self.enabled = enabled
        self.sink = sink
        self._emit = sink.emit

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def records(self) -> List[TraceRecord]:
        """All in-memory records in insertion (time) order.

        Empty for non-memory sinks: streamed records live in the sink's
        file, not in the process.
        """
        return getattr(self.sink, "records", [])

    def record(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._emit(TraceRecord(time=time, category=category, event=event, fields=fields))

    def clear(self) -> None:
        """Drop all records (memory/null sinks only; streaming sinks raise)."""
        self.sink.clear()

    def close(self) -> None:
        """Flush and close the sink (idempotent; part of per-run teardown)."""
        self.sink.close()

    # ------------------------------------------------------------------ queries
    def filter(
        self,
        category: Optional[str] = None,
        event: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all of the given criteria.

        Boundary semantics: ``since`` and ``until`` are both *inclusive* —
        a record at exactly ``since`` or exactly ``until`` matches.  The
        offline filters of :mod:`repro.obs.analyze` follow the same rule.
        """
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`filter` criteria."""
        return len(self.filter(**kwargs))

    def categories(self) -> Iterable[str]:
        """Distinct categories present in the trace."""
        return sorted({rec.category for rec in self.records})
