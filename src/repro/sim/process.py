"""Lightweight process abstraction.

A :class:`Process` is a named component attached to a simulator: protocol
nodes, failure injectors and scenario drivers derive from it.  It provides
start/stop lifecycle hooks and convenience scheduling that automatically
tags trace records with the process name.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.sim.engine import EventHandle, Simulator


class Process:
    """Base class for simulation components with a lifecycle."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.started = False
        self.stopped = False
        self._owned_handles: List[EventHandle] = []

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the process; idempotent."""
        if self.started:
            return
        self.started = True
        self.on_start()

    def stop(self) -> None:
        """Stop the process and cancel any events it scheduled through :meth:`after`."""
        if self.stopped:
            return
        self.stopped = True
        for handle in self._owned_handles:
            handle.cancel()
        self._owned_handles.clear()
        self.on_stop()

    def restart(self) -> None:
        """Start the process again after :meth:`stop` (churn rejoin).

        Clears the stopped flag and re-runs :meth:`on_start`, so a protocol
        node bootstraps from scratch — re-announcing, re-registering and
        re-arming its timers.  A process that is already running is left
        alone.
        """
        if self.started and not self.stopped:
            return
        self.stopped = False
        self.started = True
        self.on_start()

    def on_start(self) -> None:  # pragma: no cover - default no-op
        """Hook invoked by :meth:`start`."""

    def on_stop(self) -> None:  # pragma: no cover - default no-op
        """Hook invoked by :meth:`stop`."""

    # ------------------------------------------------------------------ scheduling
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule a callback owned by this process (cancelled on :meth:`stop`)."""
        handle = self.sim.schedule(delay, callback, *args)
        self._owned_handles.append(handle)
        if len(self._owned_handles) > 256:
            self._owned_handles = [h for h in self._owned_handles if h.active]
        return handle

    def trace(self, event: str, **fields: Any) -> None:
        """Record a trace entry under this process's name."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.record(self.sim._now, self.name, event, **fields)
