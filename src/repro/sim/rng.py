"""Deterministic random-number streams.

Every stochastic decision in a run (transmission delay, failure onset,
service-change time, announcement jitter, ...) draws from a named stream so
that adding a new consumer of randomness never perturbs the draws seen by
existing consumers.  Streams are derived from a master seed by hashing the
stream key, which makes runs reproducible across processes and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Tuple


def derive_seed(master_seed: int, *key: Any) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a hashable key.

    The derivation uses SHA-256 over the repr of the key parts, so it is
    stable across Python processes (unlike the built-in ``hash``).
    """
    material = repr((int(master_seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named, independently seeded :class:`random.Random` streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[Tuple[Any, ...], random.Random] = {}

    def stream(self, *key: Any) -> random.Random:
        """Return the RNG for ``key``, creating (and caching) it on first use."""
        key_t = tuple(key)
        rng = self._streams.get(key_t)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, *key_t))
            self._streams[key_t] = rng
        return rng

    def spawn(self, *key: Any) -> "RngRegistry":
        """Return a child registry whose master seed is derived from ``key``."""
        return RngRegistry(derive_seed(self.master_seed, "spawn", *key))

    def uniform(self, low: float, high: float, *key: Any) -> float:
        """Convenience: one uniform draw from the stream named ``key``."""
        return self.stream(*key).uniform(low, high)
