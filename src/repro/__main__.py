"""``python -m repro`` — the experiment command line.

Subcommands
-----------
* ``sweep``   — run the failure-rate sweep and emit JSON (and optionally CSV):
  ``python -m repro sweep --system frodo3 --rates 0,10,20 --runs 20 --out results.json``.
  ``--jobs N`` runs cells on a process pool (output stays byte-identical to
  serial); ``--resume ck.json`` checkpoints every finished cell there and
  skips cells the file already contains.  Observability (never changes the
  results): ``--trace-dir out/`` streams one NDJSON trace per cell plus a
  ``telemetry.ndjson`` journal, ``--progress`` prints live cells/s and ETA
  to stderr.  Fault tolerance: ``--cell-timeout``/``--retries`` bound and
  retry individual cells, ``--max-cell-failures N`` quarantines up to N
  poisoned cells instead of aborting (their gaps stay explicit; exit 3),
  and Ctrl-C flushes completed cells to ``--resume`` and prints the exact
  resume command.
* ``run``     — execute a single scenario and print its RunResult as JSON;
  ``--trace t.ndjson`` streams the full event trace there.
* ``trace``   — analyse captured NDJSON traces:
  ``python -m repro trace summarize out/`` (record/kind histograms),
  ``trace kinds`` (message kinds only), ``trace timeline`` (record listing);
  all accept ``--since/--until`` (inclusive) and ``--category`` filters.
* ``profile`` — cProfile one scenario and print the hottest functions
  (``python -m repro profile --system frodo3 --users 1000``), the
  entry point of the profile-first optimisation workflow in EXPERIMENTS.md.
* ``bench``   — time the standard sweep workloads serial vs parallel and
  write the perf trajectory file (default ``BENCH_sweep.json``);
  ``--baseline`` gates the run against a committed bench file.
* ``systems`` — list the deployable systems of the protocol registry.
* ``scenarios`` — list the disruption-scenario families of the scenario
  registry (selectable on ``sweep``/``run``/``profile`` via
  ``--scenario churn@rate=0.1``; default ``table4`` is the paper's model).

Rates are given in percent (``--rates 0,10,20`` sweeps lambda = 0, 0.1, 0.2).
The sweep's ``--users`` accepts a comma-separated list of topology sizes
(``--users 5,100,1000``), forming a full systems x users x rates grid.
Output is deterministic for a given ``--seed``: re-running the same command
produces byte-identical JSON.  ``--out -`` writes to stdout.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import shlex
import sys
from typing import List, Optional, Sequence

from repro.bench.harness import (
    bench_to_dict,
    check_regression,
    format_bench_table,
    load_baseline,
    run_bench,
    write_bench_json,
)
from repro.bench.workloads import find_workload, standard_workloads
from repro.experiments.executors import make_executor
from repro.experiments.resilience import PoolRecoveryError, ResiliencePolicy
from repro.experiments.report import (
    format_summary_table,
    run_to_dict,
    summaries_to_csv,
    to_json,
    write_sweep_json,
    write_text,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenario import (
    DEFAULT_CHANGE_TIME,
    DEFAULT_SIM_DURATION,
    ScenarioSpec,
)
from repro.experiments.scenarios import SCENARIOS, UnknownScenarioError, parse_scenario
from repro.experiments.tokens import format_option_value, split_token_list
from repro.experiments.sweep import SweepSpec, sweep
from repro.obs.analyze import (
    format_kinds,
    format_summary,
    format_timeline,
    iter_records,
    kind_counts,
    summarize,
)
from repro.obs.progress import SweepProgress
from repro.protocols.registry import SYSTEMS, UnknownSystemError


def _parse_percent(token: str) -> float:
    """Parse one failure rate in percent into a fraction."""
    percent = float(token)
    if not 0.0 <= percent <= 100.0:
        raise argparse.ArgumentTypeError(f"rate {token!r} not in [0, 100] percent")
    return percent / 100.0


def _parse_rates(text: str) -> List[float]:
    """Parse ``"0,10,20"`` (percent) into ``[0.0, 0.1, 0.2]``."""
    rates = [_parse_percent(token.strip()) for token in text.split(",") if token.strip()]
    if not rates:
        raise argparse.ArgumentTypeError("no failure rates given")
    return rates


def _parse_users(text: str) -> List[int]:
    """Parse ``"5,100,1000"`` into a list of topology sizes."""
    sizes: List[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        size = int(token)
        if size < 1:
            raise argparse.ArgumentTypeError(f"users count {token!r} must be >= 1")
        sizes.append(size)
    if not sizes:
        raise argparse.ArgumentTypeError("no user counts given")
    return sizes


def _add_scenario_arguments(parser: argparse.ArgumentParser, users_grid: bool = False) -> None:
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    if users_grid:
        parser.add_argument(
            "--users",
            type=_parse_users,
            default=[5],
            help="comma-separated numbers of Users, a grid axis (default: 5)",
        )
    else:
        parser.add_argument("--users", type=int, default=5, help="number of Users (default: 5)")
    parser.add_argument(
        "--change-time",
        type=float,
        default=DEFAULT_CHANGE_TIME,
        help=f"service-change time in seconds (default: {DEFAULT_CHANGE_TIME:g})",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=DEFAULT_SIM_DURATION,
        help=f"measurement deadline in seconds (default: {DEFAULT_SIM_DURATION:g})",
    )
    parser.add_argument(
        "--scenario",
        default="table4",
        metavar="NAME[@K=V,...]",
        help=(
            "disruption-scenario family and options, e.g. churn@rate=0.1 "
            "(default: table4, the paper's model; see `python -m repro scenarios`)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Failure-rate experiments for the service-discovery reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep_parser = subparsers.add_parser("sweep", help="run the failure-rate sweep")
    sweep_parser.add_argument(
        "--system",
        dest="systems",
        action="append",
        required=True,
        help=(
            "system to deploy; repeatable and/or comma-separated, bare name "
            "or name@key=value,... token, e.g. --system frodo3 "
            "--system upnp,jini@k=8,mode=gossip (see 'systems')"
        ),
    )
    sweep_parser.add_argument(
        "--rates",
        type=_parse_rates,
        default=[0.0],
        help="comma-separated failure rates in percent (default: 0)",
    )
    sweep_parser.add_argument(
        "--runs", type=int, default=20, help="replications per cell (default: 20)"
    )
    _add_scenario_arguments(sweep_parser, users_grid=True)
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 runs cells on a process pool (default: 1)",
    )
    sweep_parser.add_argument(
        "--resume",
        default=None,
        metavar="CHECKPOINT",
        help=(
            "checkpoint file: completed cells found there are skipped, new "
            "completions are persisted after every cell"
        ),
    )
    sweep_parser.add_argument(
        "--out", default="-", help="JSON output path, or - for stdout (default: -)"
    )
    sweep_parser.add_argument(
        "--csv", default=None, help="also write the summary table as CSV to this path"
    )
    sweep_parser.add_argument(
        "--per-run", action="store_true", help="include every RunResult in the JSON"
    )
    sweep_parser.add_argument(
        "--table", action="store_true", help="print the summary table to stderr"
    )
    sweep_parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "stream one NDJSON trace per executed cell into DIR and write a "
            "telemetry.ndjson journal there (results are unchanged)"
        ),
    )
    sweep_parser.add_argument(
        "--progress",
        action="store_true",
        help="print live progress (cells done, cells/s, ETA) to stderr",
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt; an over-budget cell fails (and may retry)",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="times to re-run a failed cell before quarantining it (default: 0)",
    )
    sweep_parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base delay between attempts of one cell, doubled per retry (default: 0.1)",
    )
    sweep_parser.add_argument(
        "--max-cell-failures",
        type=int,
        default=0,
        metavar="N",
        help=(
            "quarantined cells tolerated before aborting the sweep; tolerated "
            "failures leave explicit gaps in the output and exit status 3 "
            "(default: 0)"
        ),
    )

    run_parser = subparsers.add_parser("run", help="execute one scenario")
    run_parser.add_argument("--system", required=True, help="system to deploy")
    run_parser.add_argument(
        "--rate", type=_parse_percent, default=0.0, help="failure rate in percent (default: 0)"
    )
    _add_scenario_arguments(run_parser)
    run_parser.add_argument(
        "--out", default="-", help="JSON output path, or - for stdout (default: -)"
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream the full event trace to PATH as NDJSON (results are unchanged)",
    )

    profile_parser = subparsers.add_parser(
        "profile", help="cProfile one scenario and print the hottest functions"
    )
    profile_parser.add_argument("--system", required=True, help="system to deploy")
    profile_parser.add_argument(
        "--rate", type=_parse_percent, default=0.0, help="failure rate in percent (default: 0)"
    )
    _add_scenario_arguments(profile_parser)
    profile_parser.add_argument(
        "--top", type=int, default=25, help="functions to print (default: 25)"
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    profile_parser.add_argument(
        "--out", default="-", help="report output path, or - for stdout (default: -)"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="time the standard sweep workloads serial vs parallel"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="CI-sized grids (fewer rates and replications)"
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=2, help="parallel worker processes (default: 2)"
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=1, help="timed attempts per path, best wins (default: 1)"
    )
    bench_parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="run only this workload (repeatable); see the emitted JSON for names",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_sweep.json",
        help="bench JSON output path (default: BENCH_sweep.json)",
    )
    bench_parser.add_argument(
        "--table", action="store_true", help="print the bench table to stderr"
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        metavar="BENCH_JSON",
        help=(
            "committed bench file to gate against: fail if any matching "
            "workload's serial throughput regressed beyond --tolerance"
        ),
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="fractional serial-throughput drop allowed by --baseline (default: 0.20)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="analyse NDJSON traces captured by sweep --trace-dir / run --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    def _add_trace_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "paths",
            nargs="+",
            metavar="PATH",
            help="trace files and/or trace directories (a --trace-dir)",
        )
        sub.add_argument(
            "--since",
            type=float,
            default=None,
            help="keep records at or after this simulation time (inclusive)",
        )
        sub.add_argument(
            "--until",
            type=float,
            default=None,
            help="keep records at or before this simulation time (inclusive)",
        )
        sub.add_argument(
            "--category", default=None, help="keep only this record category (e.g. net)"
        )

    summarize_parser = trace_sub.add_parser(
        "summarize", help="record counts, time span, and per-category/event/kind histograms"
    )
    _add_trace_arguments(summarize_parser)

    kinds_parser = trace_sub.add_parser(
        "kinds", help="message-kind histogram from the net/send records"
    )
    _add_trace_arguments(kinds_parser)
    kinds_parser.add_argument(
        "--update-related",
        action="store_true",
        help="count only sends flagged as update-related",
    )

    timeline_parser = trace_sub.add_parser(
        "timeline", help="print the filtered records, one per line"
    )
    _add_trace_arguments(timeline_parser)
    timeline_parser.add_argument(
        "--event", default=None, help="keep only this event name (e.g. send)"
    )
    timeline_parser.add_argument(
        "--limit", type=int, default=50, help="records to print before truncating (default: 50)"
    )
    timeline_parser.add_argument(
        "--show-source",
        action="store_true",
        help="prefix every line with the trace file it came from",
    )

    subparsers.add_parser("systems", help="list deployable systems")
    subparsers.add_parser("scenarios", help="list disruption-scenario families")
    return parser


def _split_systems(values: Sequence[str]) -> List[str]:
    """Flatten repeated/comma-separated ``--system`` values into canonical tokens.

    Values may be bare names or parameterised ``name@k=v,...`` tokens; a
    comma-separated segment containing ``=`` belongs to the preceding
    token's option list (``--system upnp,jini@k=8,mode=gossip,frodo3``),
    anything else starts a new selection.  Each selection is resolved
    against the registry here so bad names/options fail before any cycles
    are spent, and canonicalised so equal selections share cell keys.
    """
    tokens = [token for value in values for token in split_token_list(value)]
    return [SYSTEMS.resolve(token).token for token in tokens]


def _command_sweep(args: argparse.Namespace) -> int:
    scenario_name, scenario_options = parse_scenario(args.scenario)
    spec = SweepSpec(
        systems=tuple(_split_systems(args.systems)),
        failure_rates=tuple(args.rates),
        runs_per_cell=args.runs,
        base_seed=args.seed,
        n_users=args.users[0],
        users=tuple(args.users),
        change_time=args.change_time,
        deadline=args.deadline,
        scenario_name=scenario_name,
        scenario_options=scenario_options,
    )
    policy = ResiliencePolicy(
        cell_timeout=args.cell_timeout,
        max_retries=args.retries,
        retry_backoff=args.retry_backoff,
        max_cell_failures=args.max_cell_failures,
    )
    result = sweep(
        spec,
        executor=make_executor(args.jobs),
        checkpoint=args.resume,
        trace_dir=args.trace_dir,
        progress=SweepProgress(stream=sys.stderr) if args.progress else None,
        policy=policy,
    )
    write_sweep_json(result, args.out, include_runs=args.per_run)
    if args.csv is not None:
        write_text(summaries_to_csv(result.summaries), args.csv)
    if args.table:
        sys.stderr.write(format_summary_table(result.summaries))
    if result.failures:
        keys = ", ".join(failure.key for failure in result.failures)
        print(
            f"warning: {len(result.failures)} cell(s) quarantined after exhausting "
            f"retries ({keys}); the output has explicit gaps for them",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_run(args: argparse.Namespace) -> int:
    scenario_name, scenario_options = parse_scenario(args.scenario)
    spec = ScenarioSpec(
        system=SYSTEMS.resolve(args.system).token,
        failure_rate=args.rate,
        seed=args.seed,
        n_users=args.users,
        change_time=args.change_time,
        deadline=args.deadline,
        trace_path=args.trace,
        scenario=scenario_name,
        scenario_options=scenario_options,
    )
    result = ExperimentRunner().run(spec)
    write_text(to_json(run_to_dict(result)), args.out)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    since, until, category = args.since, args.until, args.category
    if args.trace_command == "summarize":
        summary = summarize(args.paths, since=since, until=until, category=category)
        sys.stdout.write(format_summary(summary))
    elif args.trace_command == "kinds":
        pairs = iter_records(args.paths, since=since, until=until, category=category)
        update_related = True if args.update_related else None
        counts = kind_counts((record for _path, record in pairs), update_related=update_related)
        sys.stdout.write(format_kinds(counts))
    else:  # timeline
        pairs = iter_records(
            args.paths, since=since, until=until, category=category, event=args.event
        )
        sys.stdout.write(format_timeline(pairs, limit=args.limit, show_source=args.show_source))
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    scenario_name, scenario_options = parse_scenario(args.scenario)
    spec = ScenarioSpec(
        system=SYSTEMS.resolve(args.system).token,
        failure_rate=args.rate,
        seed=args.seed,
        n_users=args.users,
        change_time=args.change_time,
        deadline=args.deadline,
        scenario=scenario_name,
        scenario_options=scenario_options,
    )
    runner = ExperimentRunner()
    profiler = cProfile.Profile()
    profiler.enable()
    result = runner.run(spec)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    header = (
        f"# profile {spec.describe()}: "
        f"{result.details['executed_events']} events executed\n"
    )
    write_text(header + buffer.getvalue(), args.out)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    workloads = standard_workloads(quick=args.quick)
    if args.workload:
        workloads = [find_workload(name, workloads) for name in args.workload]
    records = run_bench(workloads, jobs=args.jobs, repeats=args.repeats, quick=args.quick)
    write_bench_json(bench_to_dict(records, quick=args.quick, repeats=args.repeats), args.out)
    if args.table:
        sys.stderr.write(format_bench_table(records))
    if not all(record.identical for record in records):
        broken = ", ".join(record.name for record in records if not record.identical)
        print(f"error: parallel output diverged from serial for: {broken}", file=sys.stderr)
        return 1
    if args.baseline is not None:
        failures = check_regression(
            records, load_baseline(args.baseline), tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"error: perf regression: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline})", file=sys.stderr)
    return 0


def _command_systems() -> int:
    for entry in sorted(SYSTEMS, key=lambda e: e.name):
        form = entry.m_prime_form or str(entry.m_prime_at(5))
        line = f"{entry.name:<10} m'={form}"
        if entry.frozen and entry.alias_of:
            line += f"  [= {entry.alias_of}]"
        elif entry.params:
            options = ",".join(
                f"{key}={format_option_value(value)}"
                for key, value in sorted(entry.params.items())
            )
            line += f"  [{options}]"
        if entry.description:
            line += f"  {entry.description}"
        print(line)
    return 0


def _command_scenarios() -> int:
    for family in sorted(SCENARIOS, key=lambda f: f.name):
        options = ",".join(
            f"{key}={value}" for key, value in sorted(family.defaults.items())
        )
        line = f"{family.name:<12} [{options or 'no options'}]"
        if family.description:
            line += f"  {family.description}"
        print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    try:
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "run":
            return _command_run(args)
        if args.command == "profile":
            return _command_profile(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "scenarios":
            return _command_scenarios()
        return _command_systems()
    except KeyboardInterrupt:
        # Completed cells were flushed to the checkpoint before the
        # interrupt propagated (the executors drain finished work first),
        # so re-running the very same command resumes where this run died.
        checkpoint = getattr(args, "resume", None)
        if checkpoint:
            command = "python -m repro " + " ".join(shlex.quote(token) for token in argv)
            print(
                f"interrupted: completed cells are checkpointed in {checkpoint!r}; "
                f"resume with:\n  {command}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted: no --resume checkpoint was given, progress is lost",
                file=sys.stderr,
            )
        return 130
    except (
        UnknownSystemError,
        UnknownScenarioError,
        PoolRecoveryError,
        ValueError,
        OSError,
    ) as exc:
        # Bad grids (e.g. --runs 0), unwritable --out paths, exhausted
        # failure budgets, and unrecoverable worker pools surface as clean
        # CLI errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
