"""Consistency tracking.

"Consistency" is the state where the User holds the correct service
information after the service changes (Section 4 of the paper).  The
:class:`ConsistencyTracker` is the measurement harness: protocol User nodes
report every change of their cached view, the Manager reports every change of
the authoritative service description, and the tracker derives, per change,
the time U(i, j) at which each User j regained consistency — the quantity all
Update Metrics are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.discovery.service import ServiceDescription


@dataclass
class UserViewRecord:
    """History of one User's view of the service."""

    user_id: str
    #: (time, version) pairs, in report order.
    history: List[tuple] = field(default_factory=list)

    @property
    def current_version(self) -> int:
        """The version the User currently holds (0 when it holds nothing)."""
        return self.history[-1][1] if self.history else 0

    def first_time_at_or_above(self, version: int) -> Optional[float]:
        """First time the User's view reached ``version`` (or newer)."""
        for time, seen in self.history:
            if seen >= version:
                return time
        return None


class ConsistencyTracker:
    """Observes the authoritative service state and every User's view of it."""

    def __init__(self) -> None:
        self._users: Dict[str, UserViewRecord] = {}
        #: version -> time the Manager switched to that version.
        self.change_times: Dict[int, float] = {}
        self.authoritative_version: int = 0
        self.authoritative_sd: Optional[ServiceDescription] = None

    # ------------------------------------------------------------------ registration
    def register_user(self, user_id: str) -> None:
        """Declare a User whose consistency should be measured."""
        self._users.setdefault(user_id, UserViewRecord(user_id=user_id))

    @property
    def user_ids(self) -> List[str]:
        """All registered Users."""
        return list(self._users.keys())

    # ------------------------------------------------------------------ reporting
    def record_authoritative(self, sd: ServiceDescription, time: float) -> None:
        """Report that the Manager's service is now at ``sd.version`` (from ``time``)."""
        if sd.version > self.authoritative_version:
            self.authoritative_version = sd.version
            self.authoritative_sd = sd
            self.change_times[sd.version] = time

    def record_view(self, user_id: str, version: int, time: float) -> None:
        """Report that ``user_id`` now holds ``version`` of the service description."""
        record = self._users.get(user_id)
        if record is None:
            # Users not registered for measurement (e.g. the Backup's cache)
            # are ignored silently.
            return
        if record.history and record.history[-1][1] == version:
            return
        record.history.append((time, version))

    # ------------------------------------------------------------------ queries
    def view(self, user_id: str) -> UserViewRecord:
        """The view history of ``user_id``."""
        return self._users[user_id]

    def change_time(self, version: Optional[int] = None) -> Optional[float]:
        """Time of the change to ``version`` (default: the latest change)."""
        if not self.change_times:
            return None
        if version is None:
            version = self.authoritative_version
        return self.change_times.get(version)

    def update_times(self, version: Optional[int] = None) -> Dict[str, Optional[float]]:
        """Per-User time of regaining consistency with ``version`` (``None`` = never)."""
        if version is None:
            version = self.authoritative_version
        return {
            user_id: record.first_time_at_or_above(version)
            for user_id, record in self._users.items()
        }

    def consistent_users(
        self, version: Optional[int] = None, at: Optional[float] = None
    ) -> List[str]:
        """Users whose view reached ``version`` (optionally by time ``at``)."""
        out = []
        for user_id, when in self.update_times(version).items():
            if when is None:
                continue
            if at is not None and when > at:
                continue
            out.append(user_id)
        return out

    def all_consistent(self, version: Optional[int] = None, at: Optional[float] = None) -> bool:
        """``True`` when every registered User reached ``version`` (by ``at``)."""
        return len(self.consistent_users(version, at)) == len(self._users)
