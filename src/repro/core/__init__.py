"""Core of the reproduction: the paper's contribution.

* :mod:`repro.core.consistency` — tracking when each User regains consistency
  after a service change (the raw data behind all Update Metrics).
* :mod:`repro.core.metrics` — the NIST Update Metrics (Responsiveness,
  Effectiveness, Efficiency) and the paper's Efficiency Degradation metric.
* :mod:`repro.core.recovery` — the classification of recovery techniques
  (Tables 1, 2 and 4 of the paper).
* :mod:`repro.core.experiment` — the Section 5 experiment scenario
  (one Manager, five Users, a service change, interface failures).
* :mod:`repro.core.sweep` — failure-rate sweeps with replications.
* :mod:`repro.core.results` / :mod:`repro.core.analysis` — aggregation into
  the paper's figures and tables.
"""

from repro.core.consistency import ConsistencyTracker, UserViewRecord
from repro.core.metrics import (
    MetricSummary,
    RunResult,
    effectiveness,
    efficiency_degradation,
    relative_latencies,
    responsiveness,
    update_efficiency,
)
from repro.core.recovery import (
    RecoveryTechnique,
    UpdateScenario,
    RecoveryCategory,
    PROTOCOL_PROFILES,
    ProtocolProfile,
    techniques_for,
)
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.sweep import SweepConfig, run_sweep
from repro.core.results import SweepResults, SystemSeries
from repro.core.analysis import average_metrics_table, metric_series

__all__ = [
    "ConsistencyTracker",
    "UserViewRecord",
    "MetricSummary",
    "RunResult",
    "effectiveness",
    "efficiency_degradation",
    "relative_latencies",
    "responsiveness",
    "update_efficiency",
    "RecoveryTechnique",
    "UpdateScenario",
    "RecoveryCategory",
    "PROTOCOL_PROFILES",
    "ProtocolProfile",
    "techniques_for",
    "ExperimentConfig",
    "run_experiment",
    "SweepConfig",
    "run_sweep",
    "SweepResults",
    "SystemSeries",
    "average_metrics_table",
    "metric_series",
]
