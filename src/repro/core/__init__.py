"""Core of the reproduction: the paper's contribution.

* :mod:`repro.core.consistency` — tracking when each User regains consistency
  after a service change (the raw data behind all Update Metrics).
* :mod:`repro.core.metrics` — the NIST Update Metrics (Responsiveness,
  Effectiveness, Efficiency) and the paper's Efficiency Degradation metric.
* :mod:`repro.core.recovery` — the classification of recovery techniques
  (Tables 1, 2 and 4 of the paper).

The Section 5 experiment scenario, the failure-rate sweep driver and the
result reporting live in :mod:`repro.experiments`; the protocol topologies
they drive are looked up through :mod:`repro.protocols.registry`.
"""

from repro.core.consistency import ConsistencyTracker, UserViewRecord
from repro.core.metrics import (
    MetricSummary,
    RunResult,
    effectiveness,
    efficiency_degradation,
    relative_latencies,
    responsiveness,
    update_efficiency,
)
from repro.core.recovery import (
    RecoveryTechnique,
    UpdateScenario,
    RecoveryCategory,
    PROTOCOL_PROFILES,
    ProtocolProfile,
    techniques_for,
)

__all__ = [
    "ConsistencyTracker",
    "UserViewRecord",
    "MetricSummary",
    "RunResult",
    "effectiveness",
    "efficiency_degradation",
    "relative_latencies",
    "responsiveness",
    "update_efficiency",
    "RecoveryTechnique",
    "UpdateScenario",
    "RecoveryCategory",
    "PROTOCOL_PROFILES",
    "ProtocolProfile",
    "techniques_for",
]
