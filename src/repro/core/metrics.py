"""Update Metrics (Section 4.5 of the paper).

The metrics quantify consistency-maintenance performance against a failure
rate lambda:

* **Update Responsiveness** R(lambda) — the median, over runs i and Users j, of
  ``1 - L(i, j, lambda)`` where ``L = (U - C) / (D - C)`` is the relative
  change-propagation latency (C = change time, U = time the User regained
  consistency, D = deadline).  A User that never regains consistency
  contributes ``L = 1`` (responsiveness 0).
* **Update Effectiveness** F(lambda) — the probability that a User regains
  consistency before the deadline.
* **Update Efficiency** E(lambda) — mean over runs of ``m / y`` where *m* is the
  minimum number of update messages across all systems at 0 % failures
  (m = 7, from the Jini and FRODO models) and *y* is the number of update
  messages the system actually sent in that run.
* **Efficiency Degradation** G(lambda) — the paper's modification of E: *m* is
  replaced by the system's own zero-failure message count *m'*, so the metric
  reflects how heavily each protocol must propagate messages as the failure
  rate increases.

Accounting notes (documented in EXPERIMENTS.md): *y* counts discovery-layer
update-related messages sent at or after the change time; when a run sends no
update messages at all (the Manager was cut off for the entire remainder of
the run) its efficiency contribution is defined as 0, and ratios are capped
at 1 so that a partially-failed propagation cannot look *better* than the
failure-free baseline.
"""

from __future__ import annotations

import statistics
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: The cross-system minimum number of update messages at 0 % failures
#: ("m = 7 based on the Jini and FRODO models").
PAPER_GLOBAL_MINIMUM_MESSAGES = 7


@dataclass(frozen=True)
class RunResult:
    """Everything the metrics need from a single simulation run."""

    system: str
    failure_rate: float
    seed: int
    change_time: float
    deadline: float
    #: Per-User time of regaining consistency; ``None`` when never reached.
    user_update_times: Dict[str, Optional[float]] = field(default_factory=dict)
    #: *y* — update-related discovery-layer messages sent at or after the change.
    update_message_count: int = 0
    #: All discovery-layer messages sent during the run (reporting only).
    total_discovery_messages: int = 0
    #: TCP segments / acknowledgements sent during the run (reporting only).
    transport_message_count: int = 0
    #: Extra per-run diagnostics (e.g. message-kind histograms).
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def n_users(self) -> int:
        """Number of measured Users."""
        return len(self.user_update_times)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-serialisable, round-trips through :meth:`from_dict`).

        User ids are sorted so that serialisation is deterministic; all values
        are JSON-native (ints, floats, strings, ``None``), so a JSON round
        trip reproduces an equal :class:`RunResult` — the property the sweep
        checkpoint format relies on.
        """
        data = asdict(self)
        data["user_update_times"] = dict(sorted(self.user_update_times.items()))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_dict` output."""
        return cls(
            system=data["system"],
            failure_rate=data["failure_rate"],
            seed=data["seed"],
            change_time=data["change_time"],
            deadline=data["deadline"],
            user_update_times=dict(data["user_update_times"]),
            update_message_count=data["update_message_count"],
            total_discovery_messages=data["total_discovery_messages"],
            transport_message_count=data["transport_message_count"],
            details=dict(data["details"]),
        )

    def latencies(self) -> List[float]:
        """Relative change-propagation latencies L(i, j) for this run."""
        window = self.deadline - self.change_time
        if window <= 0:
            raise ValueError("deadline must be after the change time")
        out = []
        for when in self.user_update_times.values():
            if when is None or when >= self.deadline:
                out.append(1.0)
            else:
                out.append(max(0.0, min(1.0, (when - self.change_time) / window)))
        return out

    def users_updated(self) -> int:
        """Number of Users that regained consistency before the deadline."""
        return sum(
            1
            for when in self.user_update_times.values()
            if when is not None and when < self.deadline
        )


# --------------------------------------------------------------------------- helpers
def relative_latencies(results: Sequence[RunResult]) -> List[float]:
    """All L(i, j) values across runs (one entry per run x User)."""
    values: List[float] = []
    for result in results:
        values.extend(result.latencies())
    return values


def responsiveness(results: Sequence[RunResult]) -> float:
    """Update Responsiveness R: median of ``1 - L`` across runs and Users."""
    latencies = relative_latencies(results)
    if not latencies:
        raise ValueError("no runs supplied")
    return statistics.median(1.0 - latency for latency in latencies)


def effectiveness(results: Sequence[RunResult]) -> float:
    """Update Effectiveness F: fraction of (run, User) pairs updated before the deadline."""
    total = 0
    updated = 0
    for result in results:
        total += result.n_users
        updated += result.users_updated()
    if total == 0:
        raise ValueError("no runs supplied")
    return updated / total


def _efficiency_ratio(numerator: int, y: int) -> float:
    """``numerator / y`` with the conventions documented in the module docstring."""
    if y <= 0:
        return 0.0
    return min(1.0, numerator / y)


def update_efficiency(
    results: Sequence[RunResult],
    minimum_messages: int = PAPER_GLOBAL_MINIMUM_MESSAGES,
) -> float:
    """Update Efficiency E: mean of ``m / y`` over runs (m fixed across systems)."""
    if not results:
        raise ValueError("no runs supplied")
    return statistics.fmean(
        _efficiency_ratio(minimum_messages, result.update_message_count) for result in results
    )


def efficiency_degradation(results: Sequence[RunResult], m_prime: int) -> float:
    """Efficiency Degradation G: mean of ``m' / y`` over runs (m' per system)."""
    if not results:
        raise ValueError("no runs supplied")
    if m_prime <= 0:
        raise ValueError("m_prime must be positive")
    return statistics.fmean(
        _efficiency_ratio(m_prime, result.update_message_count) for result in results
    )


@dataclass(frozen=True)
class MetricSummary:
    """All four metrics evaluated over a set of runs at one failure rate."""

    system: str
    failure_rate: float
    runs: int
    responsiveness: float
    effectiveness: float
    update_efficiency: float
    efficiency_degradation: float
    mean_update_messages: float
    #: Topology size of the cell (the sweep's ``--users`` axis); 5 in Table 4.
    n_users: int = 5

    @classmethod
    def from_runs(
        cls,
        results: Sequence[RunResult],
        m_prime: int,
        minimum_messages: int = PAPER_GLOBAL_MINIMUM_MESSAGES,
    ) -> "MetricSummary":
        """Compute every metric over ``results`` (all from one system and failure rate)."""
        if not results:
            raise ValueError("no runs supplied")
        systems = {result.system for result in results}
        rates = {result.failure_rate for result in results}
        if len(systems) != 1 or len(rates) != 1:
            raise ValueError("MetricSummary.from_runs expects runs from one (system, rate) cell")
        return cls(
            system=next(iter(systems)),
            failure_rate=next(iter(rates)),
            runs=len(results),
            n_users=results[0].n_users,
            responsiveness=responsiveness(results),
            effectiveness=effectiveness(results),
            update_efficiency=update_efficiency(results, minimum_messages),
            efficiency_degradation=efficiency_degradation(results, m_prime),
            mean_update_messages=statistics.fmean(
                result.update_message_count for result in results
            ),
        )
