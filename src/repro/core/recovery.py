"""Classification of consistency-maintenance recovery techniques.

This module encodes Tables 1, 2 and 4 of the paper as queryable data:

* **Subscription-recovery** techniques take effect while the subscription
  lease is still valid:

  - SRC1 — acknowledgements and unbounded retransmission of critical-update
    notifications,
  - SRC2 — active User/Registry monitoring of updates (sequence numbers or
    expected periods) with explicit re-requests for missed updates,
  - SRN1 — acknowledgements and bounded retransmission of non-critical
    update notifications,
  - SRN2 — future retry of an unsuccessful notification when a message
    (e.g. a subscription-lease renewal) arrives from the inconsistent User.

* **Purge-rediscovery** techniques take effect after the subscription lease
  expires:

  - PR1 — the Manager and the Registry rediscover each other (announcements);
    on re-registration the Registry notifies interested Users,
  - PR2 — the User rediscovers the Registry and queries it for the service,
  - PR3 — the Registry rediscovers (hears from) a purged User and requests
    resubscription,
  - PR4 — the Manager rediscovers (hears from) a purged User and requests
    resubscription,
  - PR5 — the User purges the Manager and rediscovers it through multicast
    queries, Manager announcements, or a unicast query to the Registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple


class RecoveryCategory(str, Enum):
    """Top-level split of Table 1."""

    SUBSCRIPTION_RECOVERY = "subscription-recovery"
    PURGE_REDISCOVERY = "purge-rediscovery"


class UpdateScenario(str, Enum):
    """Update scenarios for subscription-recovery techniques."""

    CRITICAL = "critical"
    NON_CRITICAL = "non-critical"


class RecoveryTechnique(str, Enum):
    """All recovery techniques defined by the paper."""

    SRC1 = "SRC1"
    SRC2 = "SRC2"
    SRN1 = "SRN1"
    SRN2 = "SRN2"
    PR1 = "PR1"
    PR2 = "PR2"
    PR3 = "PR3"
    PR4 = "PR4"
    PR5 = "PR5"

    @property
    def category(self) -> RecoveryCategory:
        """Whether this is a subscription-recovery or a purge-rediscovery technique."""
        if self.value.startswith("SR"):
            return RecoveryCategory.SUBSCRIPTION_RECOVERY
        return RecoveryCategory.PURGE_REDISCOVERY

    @property
    def update_scenario(self) -> Optional[UpdateScenario]:
        """The update scenario a subscription-recovery technique applies to."""
        if self in (RecoveryTechnique.SRC1, RecoveryTechnique.SRC2):
            return UpdateScenario.CRITICAL
        if self in (RecoveryTechnique.SRN1, RecoveryTechnique.SRN2):
            return UpdateScenario.NON_CRITICAL
        return None


#: Human-readable descriptions of each technique (Table 1 and Section 4.3).
TECHNIQUE_DESCRIPTIONS: Dict[RecoveryTechnique, str] = {
    RecoveryTechnique.SRC1: (
        "Critical updates: acknowledgements and retransmissions of notifications "
        "with no retransmission limit (stop only on subscription expiry, "
        "acknowledgement, or loss of connectivity)."
    ),
    RecoveryTechnique.SRC2: (
        "Critical updates: active User and Registry monitoring of update sequence "
        "numbers / expected update times; missed updates are explicitly requested."
    ),
    RecoveryTechnique.SRN1: (
        "Non-critical updates: acknowledgements and bounded retransmissions of "
        "notifications (stop on retry limit, ack, expiry, connectivity loss, or a "
        "newer change)."
    ),
    RecoveryTechnique.SRN2: (
        "Non-critical updates: the Manager caches inconsistent Users and retries "
        "the notification when a message (e.g. a subscription renewal) arrives "
        "from such a User."
    ),
    RecoveryTechnique.PR1: (
        "Manager and Registry purge each other: rediscovery through periodic "
        "announcements; on re-registration the Registry notifies interested Users."
    ),
    RecoveryTechnique.PR2: (
        "User purges the Registry: rediscovery through announcements, then the "
        "User queries the Registry for the service."
    ),
    RecoveryTechnique.PR3: (
        "Registry purges the User: a later lease renewal triggers resubscription, "
        "whose response carries the updated service description."
    ),
    RecoveryTechnique.PR4: (
        "Manager purges the User: a later message from the User triggers "
        "resubscription, whose response carries the updated service description."
    ),
    RecoveryTechnique.PR5: (
        "User purges the Manager: rediscovery through multicast queries, Manager "
        "announcements, or a unicast query to the Registry."
    ),
}


@dataclass(frozen=True)
class ProtocolProfile:
    """Consistency-maintenance profile of a protocol (a row of Table 2/Table 4)."""

    name: str
    subscription_model: str
    techniques: FrozenSet[RecoveryTechnique]
    #: Techniques provided only through TCP's reliability (not by the protocol itself).
    tcp_dependent: FrozenSet[RecoveryTechnique] = frozenset()
    #: Zero-failure update message count m' for the standard scenario (N = 5 Users).
    m_prime: int = 7
    notes: str = ""

    def implements(self, technique: RecoveryTechnique) -> bool:
        """``True`` when the protocol implements ``technique`` (natively or via TCP)."""
        return technique in self.techniques

    def implements_natively(self, technique: RecoveryTechnique) -> bool:
        """``True`` when the protocol implements ``technique`` without relying on TCP."""
        return technique in self.techniques and technique not in self.tcp_dependent


def expected_update_messages(
    system: str, n_users: int, with_tcp: bool = False, registries: int = 1
) -> int:
    """Table 2's closed-form update message counts for N Users, 1 Manager.

    ``system`` is one of ``"upnp"``, ``"jini"`` or ``"frodo"``.  For Jini,
    ``registries`` scales the count as ``y (2N + 2)`` when TCP messages are
    included (and ``registries * (N + 2)`` without).
    """
    if n_users < 0:
        raise ValueError("n_users must be non-negative")
    system = system.lower()
    if system == "upnp":
        return 5 * n_users if with_tcp else 3 * n_users
    if system == "jini":
        per_registry = (2 * n_users + 2) if with_tcp else (n_users + 2)
        return registries * per_registry
    if system == "frodo":
        return n_users + 2
    raise ValueError(f"unknown system {system!r}")


#: Table 2 / Table 4: which techniques each modelled system employs.
PROTOCOL_PROFILES: Dict[str, ProtocolProfile] = {
    "upnp": ProtocolProfile(
        name="UPnP",
        subscription_model="2-party",
        techniques=frozenset(
            {
                RecoveryTechnique.SRC1,
                RecoveryTechnique.SRN1,
                RecoveryTechnique.PR4,
                RecoveryTechnique.PR5,
            }
        ),
        tcp_dependent=frozenset({RecoveryTechnique.SRC1, RecoveryTechnique.SRN1}),
        m_prime=15,
        notes="Invalidation-based notification; Users poll back for the update.",
    ),
    "jini1": ProtocolProfile(
        name="Jini (1 Registry)",
        subscription_model="3-party",
        techniques=frozenset(
            {
                RecoveryTechnique.SRC1,
                RecoveryTechnique.SRC2,
                RecoveryTechnique.SRN1,
                RecoveryTechnique.PR1,
                RecoveryTechnique.PR2,
                RecoveryTechnique.PR3,
            }
        ),
        tcp_dependent=frozenset({RecoveryTechnique.SRC1, RecoveryTechnique.SRN1}),
        m_prime=7,
        notes="PR1 only covers future registrations; PR2 compensates with queries.",
    ),
    "jini2": ProtocolProfile(
        name="Jini (2 Registries)",
        subscription_model="3-party",
        techniques=frozenset(
            {
                RecoveryTechnique.SRC1,
                RecoveryTechnique.SRC2,
                RecoveryTechnique.SRN1,
                RecoveryTechnique.PR1,
                RecoveryTechnique.PR2,
                RecoveryTechnique.PR3,
            }
        ),
        tcp_dependent=frozenset({RecoveryTechnique.SRC1, RecoveryTechnique.SRN1}),
        m_prime=14,
        notes="Redundant Registries double the update traffic.",
    ),
    "frodo3": ProtocolProfile(
        name="FRODO (3-party subscription)",
        subscription_model="3-party",
        techniques=frozenset(
            {
                RecoveryTechnique.SRC1,
                RecoveryTechnique.SRC2,
                RecoveryTechnique.SRN1,
                RecoveryTechnique.SRN2,
                RecoveryTechnique.PR1,
                RecoveryTechnique.PR3,
                RecoveryTechnique.PR5,
            }
        ),
        m_prime=7,
        notes="UDP-only; the Central notifies interested Users of existing registrations.",
    ),
    "frodo2": ProtocolProfile(
        name="FRODO (2-party subscription)",
        subscription_model="2-party",
        techniques=frozenset(
            {
                RecoveryTechnique.SRC1,
                RecoveryTechnique.SRC2,
                RecoveryTechnique.SRN1,
                RecoveryTechnique.SRN2,
                RecoveryTechnique.PR1,
                RecoveryTechnique.PR4,
                RecoveryTechnique.PR5,
            }
        ),
        m_prime=7,
        notes="300D Managers notify subscribed Users directly; SRN2 retries on renewals.",
    ),
}


def techniques_for(system: str) -> FrozenSet[RecoveryTechnique]:
    """Return the set of recovery techniques implemented by ``system``."""
    try:
        return PROTOCOL_PROFILES[system].techniques
    except KeyError as exc:
        raise KeyError(
            f"unknown system {system!r}; known systems: {sorted(PROTOCOL_PROFILES)}"
        ) from exc


def taxonomy_table() -> List[Tuple[str, str, str]]:
    """A flat rendering of Table 1: (technique, category, description)."""
    rows = []
    for technique in RecoveryTechnique:
        rows.append(
            (
                technique.value,
                technique.category.value,
                TECHNIQUE_DESCRIPTIONS[technique],
            )
        )
    return rows
