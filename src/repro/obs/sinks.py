"""Trace sinks: pluggable destinations for structured trace records.

A :class:`~repro.sim.tracing.Tracer` forwards every record it accepts to one
sink:

* :class:`MemorySink` — appends to an in-process list (the classic
  behaviour; supports the tracer's query helpers);
* :class:`NDJSONSink` — streams records to a newline-delimited JSON file as
  they happen, so a full per-cell trace of an N=1000 run costs bounded
  memory instead of millions of live record objects;
* :class:`NullSink` — discards everything (tracing structurally on, output
  off).

NDJSON file format (schema version :data:`TRACE_SCHEMA_VERSION`)
----------------------------------------------------------------
Line 1 is a header object::

    {"format": "repro-trace", "version": 1, "meta": {...}}

``meta`` carries optional run identity (system, seed, failure rate, ...);
it contains only deterministic values, never wall-clock timestamps.  Every
further line is one record::

    {"t": <sim time>, "cat": <category>, "ev": <event>, "fields": {...}}

Keys are sorted and floats keep their full ``repr``, so a trace file is
byte-deterministic for a given run.  Field values that are not JSON-native
are serialised via ``repr`` — a trace must never make a run fail.
"""

from __future__ import annotations

import json
import os
import re
import sys
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.sim.tracing import TraceRecord

#: The ``format`` tag of the NDJSON header line.
TRACE_FORMAT = "repro-trace"

#: Version of the NDJSON record schema (bumped on incompatible changes).
TRACE_SCHEMA_VERSION = 1


class TraceSink:
    """Destination interface for trace records.

    Concrete sinks implement :meth:`emit`; :meth:`close` and :meth:`clear`
    have safe defaults.  The tracer calls :meth:`emit` once per accepted
    record — implementations must be cheap and must never raise into the
    simulation.
    """

    def emit(self, record: TraceRecord) -> None:
        """Accept one record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""

    def clear(self) -> None:
        """Drop buffered records, where the sink supports it."""
        raise RuntimeError(f"{type(self).__name__} cannot drop already-emitted records")


class MemorySink(TraceSink):
    """Keeps every record in an in-process list (the default sink)."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class NullSink(TraceSink):
    """Discards every record."""

    __slots__ = ()

    def emit(self, record: TraceRecord) -> None:
        pass

    def clear(self) -> None:
        pass


class NDJSONSink(TraceSink):
    """Streams records to an NDJSON file (one JSON object per line).

    The file (and any missing parent directories) is created lazily on the
    first record, so a run that traces nothing leaves no file behind unless
    ``eager=True`` forces the header out immediately.

    An unwritable path degrades the sink to :class:`NullSink` behaviour —
    one stderr warning, then every record is discarded — because a trace
    must never make a run fail (the sink-interface contract above).
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None, eager: bool = False):
        self.path = path
        self.meta = dict(meta) if meta else {}
        self._handle: Optional[TextIO] = None
        self._disabled = False
        if eager:
            self._open()

    def _open(self) -> Optional[TextIO]:
        try:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            handle = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            self._disabled = True
            print(
                f"warning: cannot write trace {self.path!r} ({exc}); "
                f"tracing disabled for this run",
                file=sys.stderr,
            )
            return None
        header: Dict[str, Any] = {"format": TRACE_FORMAT, "version": TRACE_SCHEMA_VERSION}
        if self.meta:
            header["meta"] = self.meta
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        self._handle = handle
        return handle

    def emit(self, record: TraceRecord) -> None:
        if self._disabled:
            return
        handle = self._handle
        if handle is None:
            handle = self._open()
            if handle is None:
                return
        line = json.dumps(
            {
                "t": record.time,
                "cat": record.category,
                "ev": record.event,
                "fields": record.fields,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        handle.write(line + "\n")

    def close(self) -> None:
        handle = self._handle
        if handle is not None:
            self._handle = None
            handle.close()


# --------------------------------------------------------------------------- reading
def read_trace_header(path: str) -> Dict[str, Any]:
    """Parse and validate the header line of an NDJSON trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise ValueError(f"{path!r} is not an NDJSON trace file (bad header)") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path!r} is not an NDJSON trace file (format tag missing)")
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has trace schema version {header.get('version')!r}, "
            f"this reader understands {TRACE_SCHEMA_VERSION}"
        )
    return header


def iter_trace_file(path: str) -> Iterator[TraceRecord]:
    """Yield the records of one NDJSON trace file in write order.

    Raises :class:`ValueError` on a missing/incompatible header or a corrupt
    record line; a torn final line (interrupted run) is tolerated and
    dropped, matching the checkpoint journal's crash semantics.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"{path!r} is empty, not an NDJSON trace file")
    header = json.loads(lines[0]) if lines[0].startswith("{") else None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path!r} is not an NDJSON trace file (format tag missing)")
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has trace schema version {header.get('version')!r}, "
            f"this reader understands {TRACE_SCHEMA_VERSION}"
        )
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            record = TraceRecord(
                time=float(data["t"]),
                category=data["cat"],
                event=data["ev"],
                fields=dict(data.get("fields") or {}),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if number == len(lines):  # torn final line from an interrupted run
                return
            raise ValueError(f"{path!r} is corrupt at line {number}") from None
        yield record


def load_trace(path: str) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """Read one NDJSON trace file: ``(header, records)``."""
    return read_trace_header(path), list(iter_trace_file(path))


def trace_filename(cell_key: str) -> str:
    """Deterministic, filesystem-safe NDJSON file name for one sweep cell.

    Cell keys contain ``~``/``@``/``#`` separators; every run of characters
    outside ``[A-Za-z0-9._-]`` collapses to one ``_``.  Keys share a fixed
    shape (system, users, rate, replication), so distinct keys stay distinct
    after sanitisation.
    """
    return re.sub(r"[^A-Za-z0-9._-]+", "_", cell_key) + ".ndjson"
