"""Per-run telemetry: the always-on counters assembled into one dict.

Every run carries a ``RunTelemetry`` dict under ``RunResult.details
["telemetry"]``.  The counters it aggregates are maintained inline by the
hot paths (one integer add per event/send — cheap enough to stay on for
every sweep) and read out once, after the run finished, by
:func:`collect_run_telemetry`.

Invariant: every value in the dict is a deterministic function of the run's
seed and spec.  Wall-clock time is deliberately *not* part of RunTelemetry —
per-cell wall time is measured by the sweep executors and reported through
the progress/telemetry-journal channel instead — so results (and therefore
sweep output, checkpoint journals, and the serial-vs-parallel byte-identity
gate) are unaffected by how fast the host happened to be.

Field glossary (see also EXPERIMENTS.md, "Observability")
---------------------------------------------------------
``engine.events_scheduled``
    Total calendar keys drawn (cancellable events + fire-and-forget posts +
    wheel timers; the shared sequence counter counts them all).
``engine.events_fired``
    Callbacks actually executed by the run loop.
``engine.events_cancelled``
    Cancellations of calendar events (timer cancellations count separately).
``engine.heap_hwm``
    High-water mark of the event heap (live + buried-cancelled entries).
``engine.heap_compactions``
    Times the event heap was rebuilt to shed cancelled entries.
``timers.scheduled`` / ``timers.cancelled`` / ``timers.heap_hwm`` /
``timers.compactions``
    The same, for the batched timer wheel.
``net.sends``
    Logical transmissions recorded (one per unicast attempt that left the
    transmitter, one per multicast announcement).
``net.send_copies``
    Physical copies including multicast redundancy.
``net.multicast_sends``
    Logical multicast announcements.
``net.sends_by_layer``
    Logical sends split by accounting layer (``discovery``/``transport``).
``net.update_sends``
    Update-related discovery-layer sends over the whole run (unwindowed;
    the metric *y* additionally applies the change-time window).
``net.delivered``
    Messages that reached a receiver handler (receiver interface up).
``net.dropped_tx`` / ``net.dropped_rx``
    Transmission attempts suppressed by a downed transmitter / deliveries
    suppressed by a downed receiver, summed over all interfaces.
``net.link_losses``
    Deliveries dropped on the wire by scenario loss windows (zero outside
    lossy-link scenarios).
``failures`` (present when the run had a failure injector)
    Realized disruption accounting from
    :meth:`~repro.net.failures.FailureInjector.failure_telemetry`:
    ``n_outages``/``n_churn``/``n_loss_windows`` (plan sizes),
    ``skipped_ops`` (outage/churn operations skipped because their target
    had departed), ``departed``/``rejoined`` (churned node ids),
    ``realized_downtime`` (per-node seconds some failed direction was down
    *inside* the run — overlaps merged, windows clamped to the deadline),
    ``realized_fraction_mean`` (mean realized downtime over the failed
    nodes as a fraction of the deadline; the honest counterpart of the
    nominal failure rate), and ``last_outage_end``/``last_loss_end``/
    ``last_churn_end``/``last_cut_end`` (clamped end of the latest outage
    window, loss window, churn rejoin, and link cut — together the start of
    the disruption-free recovery tail).  Partition scenarios additionally
    contribute ``n_link_cuts`` (severed registry links in the plan) and
    ``link_cut_drops`` (deliveries that died on a severed link — zero
    outside partition scenarios).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # imported for annotations only
    from repro.net.failures import FailureInjector
    from repro.net.network import Network
    from repro.sim.engine import Simulator

#: Version of the RunTelemetry dict layout (bumped on incompatible changes).
TELEMETRY_SCHEMA_VERSION = 2


def collect_run_telemetry(
    sim: "Simulator",
    network: "Network",
    injector: Optional["FailureInjector"] = None,
) -> Dict[str, Any]:
    """Assemble the RunTelemetry dict from the engine and network counters.

    Called once per run after the simulation finished; reading the counters
    costs nothing on the hot path.  All values are plain ints/dicts (JSON
    native) and deterministic for a given spec + seed.  When ``injector``
    is given, its realized-disruption accounting is attached under
    ``failures``.
    """
    queue = sim._queue
    timers = sim.timers
    stats = network.stats
    delivered = dropped_tx = dropped_rx = 0
    for endpoint in network.endpoints():
        counters = endpoint.interface.counters
        delivered += counters.received
        dropped_tx += counters.dropped_tx
        dropped_rx += counters.dropped_rx
    telemetry: Dict[str, Any] = {
        "version": TELEMETRY_SCHEMA_VERSION,
        "engine": {
            "events_scheduled": queue._next_seq,
            "events_fired": sim.executed_events,
            "events_cancelled": queue.cancelled_total,
            "heap_hwm": queue.hwm,
            "heap_compactions": queue.compactions,
        },
        "timers": {
            "scheduled": timers.scheduled_total,
            "cancelled": timers.cancelled_total,
            "heap_hwm": timers.hwm,
            "compactions": timers.compactions,
        },
        "net": {
            "sends": len(stats),
            "send_copies": stats.total_copies,
            "multicast_sends": stats.multicast_sends,
            "sends_by_layer": stats.counts_by_layer(),
            "update_sends": stats.update_messages(),
            "delivered": delivered,
            "dropped_tx": dropped_tx,
            "dropped_rx": dropped_rx,
            "link_losses": network.link_losses,
        },
    }
    if injector is not None:
        telemetry["failures"] = injector.failure_telemetry()
    return telemetry


def collect_sweep_resilience(stats: Any, failures: Any = ()) -> Dict[str, Any]:
    """Sweep-level resilience summary for the telemetry journal header.

    ``stats`` is the executor's :class:`~repro.experiments.resilience.
    ExecutionStats` (duck-typed to avoid an import cycle), ``failures`` the
    sweep's quarantined :class:`~repro.experiments.resilience.CellFailure`
    records.  Unlike RunTelemetry this is *not* seed-deterministic — pool
    rebuilds and retries depend on what actually went wrong on the host —
    which is exactly why it lives in the journal header and never in
    results.
    """
    return {
        "retried_cells": 0 if stats is None else stats.retried_cells,
        "failed_cells": 0 if stats is None else stats.failed_cells,
        "pool_rebuilds": 0 if stats is None else stats.pool_rebuilds,
        "quarantined": sorted(failure.key for failure in failures),
    }
