"""Run-to-sweep observability: trace sinks, telemetry counters, progress.

The observability layer answers "what happened inside this run / this sweep"
without perturbing the experiment itself:

* :mod:`repro.obs.sinks` — pluggable destinations for
  :class:`~repro.sim.tracing.Tracer` records: in-memory (the classic
  behaviour), a streaming NDJSON file sink with a versioned record schema
  (bounded memory at any N), and a null sink;
* :mod:`repro.obs.telemetry` — assembly of the always-on engine / timer /
  network counters into the per-run ``RunTelemetry`` dict attached to every
  :class:`~repro.core.metrics.RunResult`;
* :mod:`repro.obs.progress` — live cells-done / cells-per-second / ETA
  reporting for sweeps (the CLI's ``--progress``);
* :mod:`repro.obs.analyze` — offline queries over captured NDJSON traces
  (the ``python -m repro trace`` subcommand).

Invariant: nothing in this package may change simulation results.  Counters
are pure observers, trace records never feed back into the models, and sweep
output stays byte-identical with observability on or off.
"""

from repro.obs.progress import SweepProgress
from repro.obs.sinks import (
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    MemorySink,
    NDJSONSink,
    NullSink,
    TraceSink,
    trace_filename,
)
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION, collect_run_telemetry

__all__ = [
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "MemorySink",
    "NDJSONSink",
    "NullSink",
    "TraceSink",
    "SweepProgress",
    "collect_run_telemetry",
    "trace_filename",
]
