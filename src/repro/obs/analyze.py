"""Offline analysis of captured NDJSON traces (``python -m repro trace``).

Works over the files written by :class:`~repro.obs.sinks.NDJSONSink` — one
per sweep cell under ``--trace-dir``, or a single file from
``run --trace`` — and replaces ad-hoc in-memory ``Tracer`` spelunking:

* :func:`summarize` — record counts, time span, per-category and
  per-event histograms, and the message-kind histogram derived from the
  network-layer ``net/send`` records (which agrees with
  :meth:`~repro.net.stats.MessageStats.counts_by_kind` for the same run);
* :func:`kind_counts` — just the message-kind histogram, optionally
  restricted to update-related sends;
* :func:`format_timeline` — the filtered records as a readable listing.

All filters share the tracer's boundary semantics: ``since`` and ``until``
are both inclusive.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.sinks import TRACE_FORMAT, iter_trace_file, read_trace_header
from repro.sim.tracing import TraceRecord

#: The telemetry journal living next to per-cell traces is not itself a trace.
TELEMETRY_JOURNAL = "telemetry.ndjson"


def expand_trace_paths(paths: Sequence[str]) -> List[str]:
    """Resolve files and directories into a sorted list of trace files.

    A directory contributes every ``*.ndjson`` inside it whose header carries
    the trace format tag (the per-cell telemetry journal and foreign files
    are skipped); an explicit file path is always taken as given, so a bad
    file still fails loudly.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if not name.endswith(".ndjson") or name == TELEMETRY_JOURNAL:
                    continue
                candidate = os.path.join(path, name)
                try:
                    read_trace_header(candidate)
                except (ValueError, OSError):
                    continue
                out.append(candidate)
        else:
            out.append(path)
    if not out:
        raise ValueError(f"no trace files found under {list(paths)!r}")
    return out


def iter_records(
    paths: Sequence[str],
    since: Optional[float] = None,
    until: Optional[float] = None,
    category: Optional[str] = None,
    event: Optional[str] = None,
) -> Iterator[Tuple[str, TraceRecord]]:
    """Yield ``(source file, record)`` pairs matching the filters.

    ``since``/``until`` are inclusive on both ends, matching
    :meth:`repro.sim.tracing.Tracer.filter`.
    """
    for path in expand_trace_paths(paths):
        for record in iter_trace_file(path):
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            yield path, record


def kind_counts(
    records: Iterable[TraceRecord],
    update_related: Optional[bool] = None,
) -> Dict[str, int]:
    """Message-kind histogram (``protocol.kind``) from ``net/send`` records.

    Counts logical sends — multicast announcements once, like
    :meth:`~repro.net.stats.MessageStats.counts_by_kind` — so for one run's
    trace the histogram agrees with the in-memory statistics.
    """
    counter: Counter = Counter()
    for record in records:
        if record.category != "net" or record.event != "send":
            continue
        if update_related is not None and bool(record.get("update_related")) != update_related:
            continue
        counter[f"{record.get('protocol')}.{record.get('kind')}"] += 1
    return dict(counter)


def summarize(
    paths: Sequence[str],
    since: Optional[float] = None,
    until: Optional[float] = None,
    category: Optional[str] = None,
) -> Dict[str, Any]:
    """Aggregate one or more trace files into a plain-data summary."""
    files: List[str] = []
    total = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    by_category: Counter = Counter()
    by_event: Counter = Counter()
    kinds: Counter = Counter()
    update_kinds: Counter = Counter()
    seen_files = set()
    for path, record in iter_records(paths, since=since, until=until, category=category):
        if path not in seen_files:
            seen_files.add(path)
            files.append(path)
        total += 1
        if first_time is None or record.time < first_time:
            first_time = record.time
        if last_time is None or record.time > last_time:
            last_time = record.time
        by_category[record.category] += 1
        by_event[f"{record.category}/{record.event}"] += 1
        if record.category == "net" and record.event == "send":
            key = f"{record.get('protocol')}.{record.get('kind')}"
            kinds[key] += 1
            if record.get("update_related"):
                update_kinds[key] += 1
    return {
        "files": files,
        "records": total,
        "first_time": first_time,
        "last_time": last_time,
        "by_category": dict(by_category),
        "by_event": dict(by_event),
        "message_kinds": dict(kinds),
        "update_message_kinds": dict(update_kinds),
    }


# --------------------------------------------------------------------------- formatting
def _histogram_lines(counts: Dict[str, int], indent: str = "  ") -> List[str]:
    width = max((len(name) for name in counts), default=0)
    return [
        f"{indent}{name:<{width}}  {count}"
        for name, count in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    ]


def format_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize` output."""
    lines = [
        f"files:   {len(summary['files'])}",
        f"records: {summary['records']}",
    ]
    if summary["first_time"] is not None:
        lines.append(f"time:    {summary['first_time']:g} .. {summary['last_time']:g} s")
    if summary["by_category"]:
        lines.append("categories:")
        lines.extend(_histogram_lines(summary["by_category"]))
    if summary["by_event"]:
        lines.append("events:")
        lines.extend(_histogram_lines(summary["by_event"]))
    if summary["message_kinds"]:
        lines.append("message kinds (net/send):")
        lines.extend(_histogram_lines(summary["message_kinds"]))
    if summary["update_message_kinds"]:
        lines.append("update-related message kinds:")
        lines.extend(_histogram_lines(summary["update_message_kinds"]))
    return "\n".join(lines) + "\n"


def format_kinds(counts: Dict[str, int]) -> str:
    """One ``count  protocol.kind`` line per kind, most frequent first."""
    if not counts:
        return "(no net/send records)\n"
    lines = [
        f"{count:>8}  {name}"
        for name, count in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    ]
    return "\n".join(lines) + "\n"


def format_timeline(
    records: Iterable[Tuple[str, TraceRecord]],
    limit: Optional[int] = None,
    show_source: bool = False,
) -> str:
    """Render filtered records, one per line, in file/write order."""
    lines: List[str] = []
    truncated = False
    for path, record in records:
        if limit is not None and len(lines) >= limit:
            truncated = True
            break
        fields = " ".join(f"{key}={value!r}" for key, value in sorted(record.fields.items()))
        prefix = f"{os.path.basename(path)}: " if show_source else ""
        line = f"{prefix}t={record.time:<12g} {record.category}/{record.event}"
        if fields:
            line += "  " + fields
        lines.append(line)
    if truncated:
        lines.append(f"... (truncated at {limit} records)")
    if not lines:
        return "(no matching records)\n"
    return "\n".join(lines) + "\n"


__all__ = [
    "TELEMETRY_JOURNAL",
    "TRACE_FORMAT",
    "expand_trace_paths",
    "format_kinds",
    "format_summary",
    "format_timeline",
    "iter_records",
    "kind_counts",
    "summarize",
]
