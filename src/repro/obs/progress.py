"""Live sweep progress: cells done / total, throughput, ETA.

:class:`SweepProgress` is the reporter behind the sweep CLI's ``--progress``
flag.  The sweep driver calls :meth:`start` with the grid size (and how many
cells a checkpoint already covered), then :meth:`cell_done` once per
completed cell — in completion order, which with a chunked parallel executor
means bursts — and finally :meth:`finish`.

Output goes to an injectable stream (stderr in the CLI) and never to stdout,
so piping sweep JSON stays clean.  Updates are throttled to at most one line
per ``min_interval`` seconds to keep terminal noise and I/O bounded on fast
grids; the first and last cells always print.  The clock is injectable for
deterministic tests.

Per-cell wall time flows through :meth:`cell_done`, so the reporter can name
slow cells as they happen; the same figures are persisted per cell by the
sweep's telemetry journal (``<trace-dir>/telemetry.ndjson``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TextIO


def _format_eta(seconds: float) -> str:
    """Render an ETA as ``MM:SS`` (or ``H:MM:SS`` beyond an hour)."""
    seconds = max(0, int(round(seconds)))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes:02d}:{secs:02d}"


class SweepProgress:
    """Prints ``done/total``, cells/sec and ETA as sweep cells complete."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
        min_interval: float = 0.25,
    ) -> None:
        self.stream = stream
        self.clock = clock
        self.min_interval = min_interval
        self.total = 0
        self.done = 0
        self.resumed = 0
        self._started_at = 0.0
        self._last_print = float("-inf")
        self.slowest_key: Optional[str] = None
        self.slowest_seconds = 0.0

    # ------------------------------------------------------------------ lifecycle
    def start(self, total: int, resumed: int = 0) -> None:
        """Begin reporting: ``total`` grid cells, ``resumed`` already done."""
        self.total = total
        self.resumed = resumed
        self.done = resumed
        self._started_at = self.clock()
        self._last_print = float("-inf")
        if resumed:
            self._write(f"progress: resuming, {resumed}/{total} cells from checkpoint\n")

    def cell_done(self, key: str, wall_seconds: Optional[float] = None) -> None:
        """Record one completed cell (called in completion order)."""
        self.done += 1
        if wall_seconds is not None and wall_seconds > self.slowest_seconds:
            self.slowest_seconds = wall_seconds
            self.slowest_key = key
        now = self.clock()
        if self.done < self.total and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        elapsed = now - self._started_at
        fresh = self.done - self.resumed
        rate = fresh / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.done
        eta = _format_eta(remaining / rate) if rate > 0 else "--:--"
        line = f"progress: {self.done}/{self.total} cells  {rate:.1f} cells/s  eta {eta}"
        if wall_seconds is not None:
            line += f"  ({key} in {wall_seconds:.3f}s)"
        self._write(line + "\n")

    def cell_failed(self, key: str, error: str = "") -> None:
        """Record one quarantined cell (counts toward done; always prints)."""
        self.done += 1
        self._last_print = self.clock()
        label = f" ({error})" if error else ""
        self._write(f"progress: {self.done}/{self.total} cells  cell {key} FAILED{label}\n")

    def finish(self) -> None:
        """Print the closing summary line."""
        elapsed = self.clock() - self._started_at
        fresh = self.done - self.resumed
        rate = fresh / elapsed if elapsed > 0 else 0.0
        done, total = self.done, self.total
        line = f"progress: done, {done}/{total} cells in {elapsed:.1f}s  ({rate:.1f} cells/s"
        if self.slowest_key is not None:
            line += f"; slowest cell {self.slowest_key} at {self.slowest_seconds:.3f}s"
        self._write(line + ")\n")

    def _write(self, text: str) -> None:
        stream = self.stream
        if stream is not None:
            stream.write(text)
            stream.flush()
