"""Pluggable registry of protocol deployments.

Every modelled system is registered here under its name ("frodo2", "frodo3",
"upnp", the parameterised "jini" family); the experiment harness looks
builders up by name instead of hard-coding protocol construction, so adding
a new protocol is one ``SYSTEMS.register(...)`` call and no runner changes.

A *builder* is a callable ``(sim, network, tracker, **options) ->
ProtocolDeployment``.  Options every builder must accept (with defaults):

* ``n_users`` — number of measured Users in the topology (Table 4 uses 5).

Systems can declare typed *parameters* (:attr:`SystemEntry.params`): the CLI
selects them with ``name@key=value,...`` tokens — ``--system
jini@k=8,mode=gossip`` — sharing the grammar of ``--scenario`` tokens
(:mod:`repro.experiments.tokens`).  :meth:`DeploymentRegistry.resolve` turns
a token into a :class:`ResolvedSystem` (entry + validated parameters +
canonical token); bare legacy names resolve to themselves, so existing cell
keys, seeds and sweep output are untouched.

``m_prime`` is a *closed form*, not an N=5 constant: each entry carries a
callable ``m_prime(n_users, **params) -> int`` (Table 2's per-system update
message count), so registry metadata and deployment always agree at every
topology size — the sweep aggregation asks the entry for m' at the cell's
actual ``--users``.

The module-level :data:`SYSTEMS` instance is the default registry used by
:func:`build_system`, the sweep driver and the ``python -m repro`` CLI; tests
can construct private :class:`DeploymentRegistry` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.consistency import ConsistencyTracker
from repro.net.network import Network
from repro.protocols.base import ProtocolDeployment
from repro.sim.engine import Simulator

#: Signature of a deployment builder.
DeploymentBuilder = Callable[..., ProtocolDeployment]

#: Signature of a closed-form m' — ``(n_users, **params) -> int``.
MPrimeForm = Callable[..., int]

#: Reference topology size for registration-time sanity checks and registry
#: fingerprints (Table 4's N).
REFERENCE_N_USERS = 5


class UnknownSystemError(KeyError):
    """Raised when a system name is not registered."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown system {self.name!r}; registered systems: {', '.join(self.known) or '(none)'}"


# --------------------------------------------------------------------------- CLI tokens
def system_token(name: str, options: Mapping[str, Any]) -> str:
    """Canonical ``name@key=value,...`` token of a system selection.

    Shares the scenario-token grammar (:mod:`repro.experiments.tokens`):
    options sorted by key, floats via ``repr``, bare name when there are no
    options — so legacy names ("jini2") canonicalise to themselves and
    parameterised selections always produce equal tokens for equal
    selections (the property cell keys and seeds rely on).
    """
    from repro.experiments.tokens import canonical_token

    return canonical_token(name, options)


def parse_system(text: str) -> Tuple[str, Dict[str, Any]]:
    """Parse a CLI system token: ``jini@k=8,mode=gossip`` -> name + options.

    Values parse as ``true``/``false``, int, float, or fall back to string
    (identical to ``--scenario`` parsing — one grammar, two front ends).
    The name is *not* resolved against the registry here — callers use
    :meth:`DeploymentRegistry.resolve` so errors carry the known names.
    """
    from repro.experiments.tokens import parse_token

    return parse_token(text, label="system")


@dataclass(frozen=True)
class SystemEntry:
    """One registered system: its builder plus the metadata the sweep needs."""

    name: str
    builder: DeploymentBuilder
    #: The system's zero-failure update message count as a closed form:
    #: ``m_prime(n_users, **params) -> int`` (m' in the paper).
    m_prime: MPrimeForm
    description: str = ""
    #: Parameter names with their default values (typed; unknown parameters
    #: and wrongly-typed values are rejected).  Empty = no parameters.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Human-readable closed form, e.g. ``"(N + 2) * k"`` (CLI listing).
    m_prime_form: str = ""
    #: Frozen entries (legacy aliases like "jini1") accept no parameter
    #: overrides: their parameters are pinned at registration.
    frozen: bool = False
    #: Canonical token the entry is an alias of (informational; "" = none).
    alias_of: str = ""

    def validate_params(self, options: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``options`` over the parameter defaults, rejecting unknown
        names and type mismatches (bool/int/float/str, keyed by the default's
        type — mirrors scenario-option validation)."""
        unknown = sorted(set(options) - set(self.params))
        if unknown:
            raise ValueError(
                f"system {self.name!r} does not accept option(s) "
                f"{', '.join(unknown)}; known options: "
                f"{', '.join(sorted(self.params)) or '(none)'}"
            )
        merged = dict(self.params)
        for key, value in options.items():
            default = self.params[key]
            if isinstance(default, bool):
                if not isinstance(value, bool):
                    raise ValueError(
                        f"system option {self.name}@{key} must be a bool, got {value!r}"
                    )
            elif isinstance(default, int):
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(
                        f"system option {self.name}@{key} must be an integer, got {value!r}"
                    )
            elif isinstance(default, float):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"system option {self.name}@{key} must be a number, got {value!r}"
                    )
                value = float(value)
            elif isinstance(default, str):
                if not isinstance(value, str):
                    raise ValueError(
                        f"system option {self.name}@{key} must be a string, got {value!r}"
                    )
            merged[key] = value
        return merged

    def m_prime_at(self, n_users: int, options: Optional[Mapping[str, Any]] = None) -> int:
        """The closed-form m' at ``n_users`` with ``options`` over the defaults."""
        merged = self.validate_params(options or {})
        return int(self.m_prime(n_users, **merged))


@dataclass(frozen=True)
class ResolvedSystem:
    """A system token resolved against a registry: entry + validated options.

    This is what flows through the sweep: :attr:`token` is the canonical
    system string (== the bare entry name for legacy selections), and
    :meth:`m_prime`/:meth:`build` apply the selection's parameters.
    """

    entry: SystemEntry
    #: The explicitly selected options (validated, unmerged).
    options: Dict[str, Any]
    #: Canonical token of the selection (cell keys, seeds, JSON output).
    token: str

    @property
    def name(self) -> str:
        """Bare registry name of the entry."""
        return self.entry.name

    def m_prime(self, n_users: int) -> int:
        """Closed-form m' of this selection at ``n_users``."""
        return self.entry.m_prime_at(n_users, self.options)

    def build(
        self,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        **options: object,
    ) -> ProtocolDeployment:
        """Construct the deployment with the selection's parameters applied."""
        merged = self.entry.validate_params(self.options)
        merged.update(options)
        return self.entry.builder(sim, network, tracker, **merged)


class DeploymentRegistry:
    """Name -> deployment-builder mapping with metadata."""

    def __init__(self) -> None:
        self._entries: Dict[str, SystemEntry] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SystemEntry]:
        return iter(self._entries.values())

    def register(
        self,
        name: str,
        builder: DeploymentBuilder,
        m_prime: object = 7,
        description: str = "",
        replace: bool = False,
        params: Optional[Mapping[str, Any]] = None,
        m_prime_form: str = "",
    ) -> SystemEntry:
        """Register ``builder`` under ``name``.

        ``m_prime`` is the closed form ``(n_users, **params) -> int``; a
        plain integer is accepted for convenience and wrapped into a
        constant form (its ``m_prime_form`` defaults to the constant).
        Duplicate names raise unless ``replace=True`` (used by experiments
        that swap in instrumented variants of a system).
        """
        if not name:
            raise ValueError("system name must be non-empty")
        if isinstance(m_prime, bool) or not (isinstance(m_prime, int) or callable(m_prime)):
            raise ValueError(f"m_prime must be an int or a callable, got {m_prime!r}")
        if isinstance(m_prime, int):
            if m_prime <= 0:
                raise ValueError("m_prime must be positive")
            constant = m_prime
            m_prime_form = m_prime_form or str(constant)

            def m_prime(n_users: int, **_params: Any) -> int:  # noqa: F811
                return constant

        if name in self._entries and not replace:
            raise ValueError(f"system {name!r} already registered")
        entry = SystemEntry(
            name=name,
            builder=builder,
            m_prime=m_prime,
            description=description,
            params=dict(params or {}),
            m_prime_form=m_prime_form,
        )
        if entry.m_prime_at(REFERENCE_N_USERS) <= 0:
            raise ValueError("m_prime must be positive")
        self._entries[name] = entry
        return entry

    def register_alias(
        self,
        name: str,
        target: str,
        description: str = "",
        replace: bool = False,
    ) -> SystemEntry:
        """Register ``name`` as a *frozen* alias of the system token ``target``.

        The alias shares the target's builder and closed form with the
        token's parameters pinned; resolving the alias with any explicit
        option is rejected, so a legacy name can never silently drift from
        the topology it historically selected.
        """
        resolved = self.resolve(target)
        pinned = resolved.entry.validate_params(resolved.options)
        target_m_prime = resolved.entry.m_prime

        def alias_m_prime(n_users: int, **overrides: Any) -> int:
            merged = dict(pinned)
            merged.update(overrides)
            return target_m_prime(n_users, **merged)

        if name in self._entries and not replace:
            raise ValueError(f"system {name!r} already registered")
        entry = SystemEntry(
            name=name,
            builder=resolved.entry.builder,
            m_prime=alias_m_prime,
            description=description or resolved.entry.description,
            params=pinned,
            m_prime_form=resolved.entry.m_prime_form,
            frozen=True,
            alias_of=resolved.token,
        )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration (no-op when absent)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> SystemEntry:
        """Look up a *bare* system name; raises :class:`UnknownSystemError`.

        Parameterised selections go through :meth:`resolve`, which accepts
        full ``name@key=value,...`` tokens.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownSystemError(name, self.names()) from None

    def resolve(self, token: str) -> ResolvedSystem:
        """Resolve a system token (bare name or ``name@key=value,...``).

        Validates the parameters against the entry's typed defaults and
        canonicalises the token, so equal selections resolve to equal
        :attr:`ResolvedSystem.token` strings.  Frozen aliases reject any
        explicit option.
        """
        name, options = parse_system(token)
        entry = self.get(name)
        if options and entry.frozen:
            raise ValueError(
                f"system {name!r} is a frozen alias of {entry.alias_of!r} "
                f"and accepts no options (use {entry.alias_of.partition('@')[0]!r} "
                f"with explicit parameters instead)"
            )
        entry.validate_params(options)
        return ResolvedSystem(entry=entry, options=options, token=system_token(name, options))

    def names(self) -> List[str]:
        """All registered system names, sorted."""
        return sorted(self._entries.keys())

    def build(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        **options: object,
    ) -> ProtocolDeployment:
        """Construct a system's deployment on the given substrate.

        ``name`` may be a bare registry name or a full system token; the
        token's parameters are merged into the builder options.
        """
        resolved = self.resolve(name)
        deployment = resolved.build(sim, network, tracker, **options)
        if not isinstance(deployment, ProtocolDeployment):
            raise TypeError(
                f"builder for {name!r} returned {type(deployment).__name__}, "
                "expected a ProtocolDeployment"
            )
        return deployment


#: The default registry every standard system registers into.
SYSTEMS = DeploymentRegistry()


def build_system(
    name: str,
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    **options: object,
) -> ProtocolDeployment:
    """Build a system from the default registry (see :data:`SYSTEMS`)."""
    return SYSTEMS.build(name, sim, network, tracker, **options)


def system_names() -> List[str]:
    """Names registered in the default registry."""
    return SYSTEMS.names()


# --------------------------------------------------------------------------- standard systems
def _register_standard_systems() -> None:
    """Register the systems of the paper's comparison (Table 4).

    Every ``m_prime`` is Table 2's closed form from
    :func:`repro.core.recovery.expected_update_messages` — one source for
    the counts, so registry metadata can never drift from the deployments
    (which compute the same forms at build time).
    """
    import dataclasses

    from repro.core.recovery import expected_update_messages
    from repro.protocols.federation.builder import FEDERATION_PARAM_DEFAULTS, build_federation
    from repro.protocols.frodo.builder import build_frodo
    from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode
    from repro.protocols.upnp.builder import build_upnp
    from repro.protocols.upnp.config import UpnpConfig

    def _frodo_builder(mode: SubscriptionMode) -> DeploymentBuilder:
        def _build(
            sim: Simulator,
            network: Network,
            tracker: ConsistencyTracker,
            n_users: int = 5,
            config: Optional[FrodoConfig] = None,
        ) -> ProtocolDeployment:
            # Copy before pinning the mode: the caller's config object must
            # not be mutated (it may be shared across sweep replications).
            base = config if config is not None else FrodoConfig()
            cfg = dataclasses.replace(base, subscription_mode=mode)
            return build_frodo(sim, network, tracker, config=cfg, n_users=n_users)

        return _build

    def _frodo_m_prime(n_users: int, **_params: Any) -> int:
        return expected_update_messages("frodo", n_users)

    SYSTEMS.register(
        "frodo3",
        _frodo_builder(SubscriptionMode.THREE_PARTY),
        m_prime=_frodo_m_prime,
        m_prime_form="N + 2",
        description="FRODO, 3-party subscription (3D Manager, Central relays updates)",
    )
    SYSTEMS.register(
        "frodo2",
        _frodo_builder(SubscriptionMode.TWO_PARTY),
        m_prime=_frodo_m_prime,
        m_prime_form="N + 2",
        description="FRODO, 2-party subscription (300D Manager notifies Users directly)",
    )

    def _build_upnp(
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        n_users: int = 5,
        config: Optional[UpnpConfig] = None,
    ) -> ProtocolDeployment:
        return build_upnp(sim, network, tracker, config=config, n_users=n_users)

    SYSTEMS.register(
        "upnp",
        _build_upnp,
        m_prime=lambda n_users, **_params: expected_update_messages("upnp", n_users),
        m_prime_form="3N",
        description="UPnP (2-party GENA eventing over TCP, SSDP rediscovery, 6-copy multicast)",
    )

    SYSTEMS.register(
        "jini",
        build_federation,
        m_prime=lambda n_users, k=1, **_params: expected_update_messages(
            "jini", n_users, registries=int(k)
        ),
        params=FEDERATION_PARAM_DEFAULTS,
        m_prime_form="(N + 2) * k",
        description=(
            "Jini, K federated Lookup Services "
            "(mesh/star/ring/line topology; push/pull/gossip propagation)"
        ),
    )
    # The legacy names pin the federation-details block off: their per-run
    # output predates it and must stay byte-identical.
    SYSTEMS.register_alias(
        "jini1",
        "jini@k=1,report=false",
        description="Jini, 1 Lookup Service (frozen alias of jini@k=1)",
    )
    SYSTEMS.register_alias(
        "jini2",
        "jini@k=2,report=false",
        description="Jini, 2 Lookup Services (frozen alias of jini@k=2)",
    )


_register_standard_systems()
