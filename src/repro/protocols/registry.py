"""Pluggable registry of protocol deployments.

Every modelled system is registered here under its name ("frodo2", "frodo3",
later "upnp", "jini1", "jini2"); the experiment harness looks builders up by
name instead of hard-coding protocol construction, so adding a new protocol
is one ``SYSTEMS.register(...)`` call and no runner changes.

A *builder* is a callable ``(sim, network, tracker, **options) ->
ProtocolDeployment``.  Options every builder must accept (with defaults):

* ``n_users`` — number of measured Users in the topology (Table 4 uses 5).

The module-level :data:`SYSTEMS` instance is the default registry used by
:func:`build_system`, the sweep driver and the ``python -m repro`` CLI; tests
can construct private :class:`DeploymentRegistry` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.consistency import ConsistencyTracker
from repro.net.network import Network
from repro.protocols.base import ProtocolDeployment
from repro.sim.engine import Simulator

#: Signature of a deployment builder.
DeploymentBuilder = Callable[..., ProtocolDeployment]


class UnknownSystemError(KeyError):
    """Raised when a system name is not registered."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown system {self.name!r}; registered systems: {', '.join(self.known) or '(none)'}"


@dataclass(frozen=True)
class SystemEntry:
    """One registered system: its builder plus the metadata the sweep needs."""

    name: str
    builder: DeploymentBuilder
    #: The system's zero-failure update message count (m' in the paper).
    m_prime: int
    description: str = ""


class DeploymentRegistry:
    """Name -> deployment-builder mapping with metadata."""

    def __init__(self) -> None:
        self._entries: Dict[str, SystemEntry] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SystemEntry]:
        return iter(self._entries.values())

    def register(
        self,
        name: str,
        builder: DeploymentBuilder,
        m_prime: int = 7,
        description: str = "",
        replace: bool = False,
    ) -> SystemEntry:
        """Register ``builder`` under ``name``.

        Duplicate names raise unless ``replace=True`` (used by experiments
        that swap in instrumented variants of a system).
        """
        if not name:
            raise ValueError("system name must be non-empty")
        if m_prime <= 0:
            raise ValueError("m_prime must be positive")
        if name in self._entries and not replace:
            raise ValueError(f"system {name!r} already registered")
        entry = SystemEntry(name=name, builder=builder, m_prime=m_prime, description=description)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registration (no-op when absent)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> SystemEntry:
        """Look up a system; raises :class:`UnknownSystemError` with the known names."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownSystemError(name, self.names()) from None

    def names(self) -> List[str]:
        """All registered system names, sorted."""
        return sorted(self._entries.keys())

    def build(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        **options: object,
    ) -> ProtocolDeployment:
        """Construct the named system's deployment on the given substrate."""
        entry = self.get(name)
        deployment = entry.builder(sim, network, tracker, **options)
        if not isinstance(deployment, ProtocolDeployment):
            raise TypeError(
                f"builder for {name!r} returned {type(deployment).__name__}, "
                "expected a ProtocolDeployment"
            )
        return deployment


#: The default registry every standard system registers into.
SYSTEMS = DeploymentRegistry()


def build_system(
    name: str,
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    **options: object,
) -> ProtocolDeployment:
    """Build a system from the default registry (see :data:`SYSTEMS`)."""
    return SYSTEMS.build(name, sim, network, tracker, **options)


def system_names() -> List[str]:
    """Names registered in the default registry."""
    return SYSTEMS.names()


# --------------------------------------------------------------------------- standard systems
def _register_standard_systems() -> None:
    """Register the systems of the paper's comparison (Table 4)."""
    import dataclasses

    from repro.protocols.frodo.builder import FrodoDeployment, build_frodo
    from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode
    from repro.protocols.jini.builder import M_PRIME_PER_REGISTRY, build_jini
    from repro.protocols.jini.config import JiniConfig
    from repro.protocols.upnp.builder import UpnpDeployment, build_upnp
    from repro.protocols.upnp.config import UpnpConfig

    def _frodo_builder(mode: SubscriptionMode) -> DeploymentBuilder:
        def _build(
            sim: Simulator,
            network: Network,
            tracker: ConsistencyTracker,
            n_users: int = 5,
            config: Optional[FrodoConfig] = None,
        ) -> ProtocolDeployment:
            # Copy before pinning the mode: the caller's config object must
            # not be mutated (it may be shared across sweep replications).
            base = config if config is not None else FrodoConfig()
            cfg = dataclasses.replace(base, subscription_mode=mode)
            return build_frodo(sim, network, tracker, config=cfg, n_users=n_users)

        return _build

    SYSTEMS.register(
        "frodo3",
        _frodo_builder(SubscriptionMode.THREE_PARTY),
        m_prime=FrodoDeployment.m_prime,
        description="FRODO, 3-party subscription (3D Manager, Central relays updates)",
    )
    SYSTEMS.register(
        "frodo2",
        _frodo_builder(SubscriptionMode.TWO_PARTY),
        m_prime=FrodoDeployment.m_prime,
        description="FRODO, 2-party subscription (300D Manager notifies Users directly)",
    )

    def _build_upnp(
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        n_users: int = 5,
        config: Optional[UpnpConfig] = None,
    ) -> ProtocolDeployment:
        return build_upnp(sim, network, tracker, config=config, n_users=n_users)

    SYSTEMS.register(
        "upnp",
        _build_upnp,
        m_prime=UpnpDeployment.m_prime,
        description="UPnP (2-party GENA eventing over TCP, SSDP rediscovery, 6-copy multicast)",
    )

    def _jini_builder(n_registries: int) -> DeploymentBuilder:
        def _build(
            sim: Simulator,
            network: Network,
            tracker: ConsistencyTracker,
            n_users: int = 5,
            config: Optional[JiniConfig] = None,
        ) -> ProtocolDeployment:
            return build_jini(
                sim, network, tracker, config=config, n_users=n_users, n_registries=n_registries
            )

        return _build

    SYSTEMS.register(
        "jini1",
        _jini_builder(1),
        m_prime=M_PRIME_PER_REGISTRY,
        description="Jini, 1 Lookup Service (3-party remote events over TCP)",
    )
    SYSTEMS.register(
        "jini2",
        _jini_builder(2),
        m_prime=2 * M_PRIME_PER_REGISTRY,
        description="Jini, 2 Lookup Services (redundant Registries double update traffic)",
    )


_register_standard_systems()
