"""Per-protocol update-message accounting registry.

The Update Efficiency / Efficiency Degradation metrics count *update-related*
discovery-layer messages (EXPERIMENTS.md, rules 1-5).  Which message kinds
qualify is a property of each protocol's wire vocabulary, not of the metrics:
FRODO's ``service_update``, UPnP's ``event_notify``/``description_get`` pair
and Jini's ``remote_event`` all propagate a changed service description, while
announcements and lease renewals never do.

Each protocol's :mod:`messages` module declares its ``UPDATE_RELATED_KINDS``
and registers them here at import time; :class:`~repro.discovery.node.DiscoveryNode`
consults this registry to stamp the ``update_related`` flag on outgoing
messages, so the tagging rule lives in exactly one place per protocol instead
of being repeated (and drifting) across call sites.
"""

from __future__ import annotations

import importlib
from typing import Dict, FrozenSet

#: protocol tag ("frodo", "upnp", "jini") -> update-related message kinds.
_KINDS_BY_PROTOCOL: Dict[str, FrozenSet[str]] = {}

#: Memoised ``(protocol, kind) -> bool`` answers for :func:`is_update_related`,
#: which runs once per outgoing message.  Invalidated on (re-)registration so
#: a replaced declaration is always honoured.
_IS_UPDATE_RELATED_CACHE: Dict[tuple, bool] = {}


def register_update_related_kinds(protocol: str, kinds: FrozenSet[str]) -> None:
    """Declare the update-related message kinds of ``protocol``.

    Called by each protocol's ``messages`` module at import time.  Re-registering
    the same protocol replaces the previous declaration (idempotent imports).
    """
    if not protocol:
        raise ValueError("protocol tag must be non-empty")
    _KINDS_BY_PROTOCOL[protocol] = frozenset(kinds)
    _IS_UPDATE_RELATED_CACHE.clear()


def update_related_kinds(protocol: str) -> FrozenSet[str]:
    """The update-related kinds declared by ``protocol`` (empty when unknown).

    Falls back to importing ``repro.protocols.<protocol>.messages`` so the
    declaration is found even when a node is constructed before its protocol
    package was imported through the registry.
    """
    kinds = _KINDS_BY_PROTOCOL.get(protocol)
    if kinds is not None:
        return kinds
    try:
        importlib.import_module(f"repro.protocols.{protocol}.messages")
    except ImportError:
        _KINDS_BY_PROTOCOL.setdefault(protocol, frozenset())
    return _KINDS_BY_PROTOCOL.get(protocol, frozenset())


def is_update_related(protocol: str, kind: str) -> bool:
    """Whether messages of ``kind`` count towards *y* for ``protocol``."""
    key = (protocol, kind)
    cached = _IS_UPDATE_RELATED_CACHE.get(key)
    if cached is None:
        cached = _IS_UPDATE_RELATED_CACHE[key] = kind in update_related_kinds(protocol)
    return cached


def registered_protocols() -> Dict[str, FrozenSet[str]]:
    """Snapshot of all declarations (protocol tag -> kinds)."""
    return dict(_KINDS_BY_PROTOCOL)
