"""The federated client.

With ``assign=multi`` users are *multi-homed* (``home is None``): they hold
an event registration at every known registry — the legacy redundancy model,
behaviourally identical to the base client.

With ``assign=partition`` each user is pinned to one home registry and
ignores every other: its lookups, event registrations and renewals all go
through its partition's registry, so an update only reaches it once the
federation has propagated the change there — exactly the consistency cost
the cross-registry metrics measure.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceQuery
from repro.net.addressing import Address
from repro.net.network import Network
from repro.protocols.jini.config import JiniConfig
from repro.protocols.jini.user import JiniClient
from repro.sim.engine import Simulator


class FederatedClient(JiniClient):
    """A Jini client, optionally pinned to one home registry."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        query: ServiceQuery,
        tracker: Optional[ConsistencyTracker] = None,
        home: Optional[Address] = None,
    ) -> None:
        super().__init__(sim, network, node_id, transports, config, query, tracker=tracker)
        #: ``None`` = multi-homed (legacy redundancy behaviour).
        self.home = home

    def _learn_registrar(self, addr: Address) -> None:
        if self.home is not None and addr != self.home:
            return
        super()._learn_registrar(addr)
