"""Federated Jini topology builder — the single constructor of the Jini family.

``build_federation`` generalises the legacy ``build_jini``: K registries on
a registry graph, a propagation mode, and a user-assignment policy.  The
parameter defaults reproduce the legacy systems exactly —
``jini@k=1`` ≡ ``jini1`` and ``jini@k=2`` ≡ ``jini2`` (eager push,
multi-homed Manager and Users) — and the construction order mirrors the
legacy builder node for node, which keeps those aliases byte-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceDescription
from repro.net.multicast import MulticastService
from repro.net.network import Network
from repro.net.tcp import TcpTransport
from repro.net.udp import UdpTransport
from repro.protocols.federation.manager import FederatedServiceProvider
from repro.protocols.federation.monitor import FederationMonitor
from repro.protocols.federation.registrar import FederatedLookupService
from repro.protocols.federation.topology import TOPOLOGIES, neighbor_indices
from repro.protocols.federation.user import FederatedClient
from repro.protocols.jini.builder import JiniDeployment, default_query, default_service
from repro.protocols.jini.config import JiniConfig
from repro.sim.engine import Simulator

#: The propagation policies.
MODES: Tuple[str, ...] = ("push", "pull", "gossip")
#: The user-assignment policies.
ASSIGNS: Tuple[str, ...] = ("multi", "partition")

#: Typed parameter defaults of the ``jini`` system family (the registry
#: entry's ``params``); the defaults select the legacy single-registry
#: replicated model.
FEDERATION_PARAM_DEFAULTS: Dict[str, object] = {
    "k": 1,
    "mode": "push",
    "topology": "mesh",
    "assign": "multi",
    "ttl": 600.0,
    "gossip_interval": 120.0,
    "report": True,
}


class FederatedJiniDeployment(JiniDeployment):
    """A federated Jini topology ready to simulate."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        config: JiniConfig,
        k: int,
        mode: str,
        topology: str,
        assign: str,
        report: bool,
    ) -> None:
        super().__init__(sim, network, tracker, config, k)
        self.mode = mode
        self.topology = topology
        self.assign = assign
        self.report = report
        #: Attached by the builder once the registries exist.
        self.monitor: Optional[FederationMonitor] = None

    def trigger_service_change(self, attributes=None) -> ServiceDescription:
        sd = super().trigger_service_change(attributes)
        if self.monitor is not None:
            self.monitor.record_change(sd.version, self.sim.now)
        return sd

    def registry_ids(self) -> list:
        """Registry node ids in build order (index 0 is the home registry)."""
        return [registrar.node_id for registrar in self.registries]

    def federation_edges(self) -> list:
        """The undirected adjacency edges of the registry graph, sorted.

        Each edge is a ``(a, b)`` id pair with ``a < b``; the partition
        scenario family draws single-link cuts from this list.
        """
        edges = {
            tuple(sorted((registrar.node_id, peer)))
            for registrar in self.registries
            for peer in registrar.peer_addrs
        }
        return sorted(edges)

    def extra_details(self, change_time: float) -> Dict[str, object]:
        if not self.report or self.monitor is None:
            return {}
        return {
            "federation": self.monitor.summary(
                self.network.stats, self.registry_ids(), change_time
            )
        }


def build_federation(
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    config: Optional[JiniConfig] = None,
    n_users: int = 5,
    k: int = 1,
    mode: str = "push",
    topology: str = "mesh",
    assign: str = "multi",
    ttl: float = 600.0,
    gossip_interval: float = 120.0,
    report: bool = True,
) -> FederatedJiniDeployment:
    """Instantiate a federation of ``k`` Jini Lookup Services.

    ``mode`` selects the propagation policy (push/pull/gossip), ``topology``
    the registry graph (mesh/star/ring/line), ``assign`` whether users are
    multi-homed or partitioned across registries; ``ttl`` is pull mode's
    freshness horizon and ``gossip_interval`` the anti-entropy period.
    ``report=False`` suppresses the ``federation`` details block (the legacy
    aliases pin it off to keep their per-run output unchanged).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if mode not in MODES:
        raise ValueError(f"unknown federation mode {mode!r}; known: {', '.join(MODES)}")
    if assign not in ASSIGNS:
        raise ValueError(f"unknown user assignment {assign!r}; known: {', '.join(ASSIGNS)}")
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; known: {', '.join(TOPOLOGIES)}")
    if ttl <= 0:
        raise ValueError("ttl must be positive")
    if gossip_interval <= 0:
        raise ValueError("gossip_interval must be positive")
    config = (config if config is not None else JiniConfig()).validate()
    deployment = FederatedJiniDeployment(
        sim, network, tracker, config, k, mode=mode, topology=topology, assign=assign, report=report
    )
    deployment.m_prime = (n_users + 2) * k

    transports = Transports(
        udp=UdpTransport(network),
        tcp=TcpTransport(network),
        multicast=MulticastService(network, redundancy=config.multicast_copies),
    )

    monitor = FederationMonitor(k, mode, topology, assign)
    deployment.monitor = monitor

    registrars = []
    for index in range(k):
        registrar = FederatedLookupService(
            sim,
            network,
            f"jini-lus-{index + 1}",
            transports,
            config,
            tracker=tracker,
            mode=mode,
            ttl=ttl,
            gossip_interval=gossip_interval,
            monitor=monitor,
        )
        deployment.registries.append(registrar)
        registrars.append(registrar)

    # Wire the registry graph; registry 1 is the well-known home/fallback.
    home_addr = registrars[0].node_id
    adjacency = neighbor_indices(topology, k)
    for index, registrar in enumerate(registrars):
        registrar.link([registrars[peer].node_id for peer in adjacency[index]], home_addr)

    manager_id = "jini-manager"
    provider = FederatedServiceProvider(
        sim,
        network,
        manager_id,
        transports,
        config,
        sd=default_service(manager_id),
        tracker=tracker,
        home=None if mode == "push" else home_addr,
    )
    deployment.managers.append(provider)

    for index in range(n_users):
        client = FederatedClient(
            sim,
            network,
            f"jini-user-{index + 1}",
            transports,
            config,
            query=default_query(),
            tracker=tracker,
            home=None if assign == "multi" else registrars[index % k].node_id,
        )
        tracker.register_user(client.node_id)
        deployment.users.append(client)

    return deployment
