"""Inter-registry message kinds of the federation layer.

Federated Lookup Services speak the Jini protocol towards Managers and
Users; between themselves they exchange four additional TCP kinds:

* ``fed_pull`` / ``fed_pull_response`` — pull-on-miss: a registry whose
  entry is missing or older than the cache TTL asks its topology neighbours
  (plus the well-known home registry as fallback) for their current
  entries; receivers answer from what they hold without recursing.
* ``fed_gossip`` / ``fed_gossip_ack`` — periodic anti-entropy: a registry
  sends its entries to one neighbour per tick (round-robin); the receiver
  merges newer entries and replies with anything *it* holds that is newer.

All four kinds count towards *y*: they are exactly the traffic an update
needs to cross the federation, the federated analogue of the Manager's
``service_update``.  The accounting declaration below *extends* the Jini
set — legacy (push-mode) runs never send these kinds, so their counts are
untouched.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.protocols.accounting import register_update_related_kinds
from repro.protocols.jini import messages as jm

PROTOCOL = jm.PROTOCOL

# ------------------------------------------------------------------ pull-on-miss (TCP)
FED_PULL = "fed_pull"
FED_PULL_RESPONSE = "fed_pull_response"

# ------------------------------------------------------------------ periodic gossip (TCP)
FED_GOSSIP = "fed_gossip"
FED_GOSSIP_ACK = "fed_gossip_ack"

#: The inter-registry kinds (all update-related).
FEDERATION_KINDS: FrozenSet[str] = frozenset(
    {FED_PULL, FED_PULL_RESPONSE, FED_GOSSIP, FED_GOSSIP_ACK}
)

register_update_related_kinds(PROTOCOL, jm.UPDATE_RELATED_KINDS | FEDERATION_KINDS)
