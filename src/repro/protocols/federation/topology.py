"""Registry-graph topologies.

A federation of K registries is connected by one of four undirected graphs;
propagation policies (pull, gossip) exchange messages along its edges only,
so the topology bounds how fast an update can cross the federation.

* ``mesh`` — complete graph; every registry peers with every other.
* ``star`` — registry 1 is the hub; leaves peer only with it.
* ``ring`` — registry i peers with i-1 and i+1 cyclically.
* ``line`` — the ring with the wrap-around edge removed.

Neighbour lists are returned in ascending index order, so iteration over
peers is deterministic — a requirement for byte-identical sweeps.
"""

from __future__ import annotations

from typing import List, Tuple

#: The supported registry-graph kinds.
TOPOLOGIES: Tuple[str, ...] = ("mesh", "star", "ring", "line")


def neighbor_indices(topology: str, k: int) -> List[List[int]]:
    """Adjacency lists (0-based, ascending) of a K-registry graph.

    ``k == 1`` yields a single registry with no peers for every topology;
    ``k == 2`` makes all four topologies the same single edge.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; known: {', '.join(TOPOLOGIES)}")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return [[]]
    if topology == "mesh":
        return [[j for j in range(k) if j != i] for i in range(k)]
    if topology == "star":
        return [list(range(1, k))] + [[0] for _ in range(1, k)]
    if topology == "ring":
        if k == 2:
            return [[1], [0]]
        return [sorted({(i - 1) % k, (i + 1) % k}) for i in range(k)]
    # line
    return [[j for j in (i - 1, i + 1) if 0 <= j < k] for i in range(k)]


def diameter(topology: str, k: int) -> int:
    """Graph diameter in hops (0 for a single registry).

    Used by the gossip-convergence invariant: an update needs at most
    ``diameter`` inter-registry hops to reach every registry.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; known: {', '.join(TOPOLOGIES)}")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return 0
    if topology == "mesh":
        return 1
    if topology == "star":
        return 1 if k == 2 else 2
    if topology == "ring":
        return k // 2
    return k - 1  # line


def max_degree(topology: str, k: int) -> int:
    """Largest neighbour count in the graph (gossip fan-out bound)."""
    return max((len(peers) for peers in neighbor_indices(topology, k)), default=0)
