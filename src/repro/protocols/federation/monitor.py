"""Cross-registry consistency accounting.

The :class:`FederationMonitor` is a passive observer shared by every
registry of one federated deployment: registries report when they first
store each service-description version, the deployment reports the
authoritative change, and after the run the monitor condenses both into
the consistency metrics of the federated comparison:

* **staleness window** per registry — how long the registry served the old
  version after the authoritative change (``first_store - change_time``);
* **convergence time** — when the *last* registry caught up (the maximum
  staleness; ``None`` while any registry still lags);
* **per-registry m'** — each registry's share of the update-related traffic
  (sent messages, accounting rules of EXPERIMENTS.md).

The monitor only does bookkeeping — it never sends messages, draws random
numbers, or schedules events — so attaching it cannot perturb a run.  That
property is what keeps push-mode federations byte-identical to the legacy
``jini1``/``jini2`` systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.messages import MessageLayer
from repro.net.stats import MessageStats


class FederationMonitor:
    """Records propagation timing across one federation's registries."""

    def __init__(self, k: int, mode: str, topology: str, assign: str) -> None:
        self.k = k
        self.mode = mode
        self.topology = topology
        self.assign = assign
        #: Latest authoritative version and when it was published.
        self.change_version = 0
        self.change_time: Optional[float] = None
        #: registry id -> version -> time the registry *first* stored it.
        self._store_times: Dict[str, Dict[int, float]] = {}

    # ------------------------------------------------------------------ recording
    def record_change(self, version: int, time: float) -> None:
        """The deployment published a new authoritative version."""
        if version > self.change_version:
            self.change_version = version
            self.change_time = time

    def record_store(self, registry_id: str, version: int, time: float) -> None:
        """``registry_id`` stored ``version`` (first store wins)."""
        times = self._store_times.setdefault(registry_id, {})
        times.setdefault(version, time)

    def registry_version(self, registry_id: str) -> int:
        """Latest version the registry has stored (0 = nothing yet)."""
        times = self._store_times.get(registry_id)
        return max(times) if times else 0

    # ------------------------------------------------------------------ metrics
    def staleness_windows(self, registry_ids: List[str]) -> Dict[str, Optional[float]]:
        """Per-registry delay from the change to its first store of the
        changed version (``None`` = the registry never caught up)."""
        windows: Dict[str, Optional[float]] = {}
        for registry_id in registry_ids:
            stored = self._store_times.get(registry_id, {}).get(self.change_version)
            if stored is None or self.change_time is None:
                windows[registry_id] = None
            else:
                windows[registry_id] = max(0.0, stored - self.change_time)
        return windows

    def convergence_time(self, registry_ids: List[str]) -> Optional[float]:
        """Delay until the *last* registry stored the changed version."""
        windows = self.staleness_windows(registry_ids)
        if any(value is None for value in windows.values()):
            return None
        return max(windows.values(), default=None)

    def per_registry_update_messages(
        self, stats: MessageStats, registry_ids: List[str], since: float
    ) -> Dict[str, int]:
        """Update-related discovery-layer sends per registry since ``since``
        (each registry's observed share of *y*)."""
        wanted = set(registry_ids)
        counts = {registry_id: 0 for registry_id in registry_ids}
        for rec in stats.sent:
            if rec.time < since or not rec.update_related:
                continue
            if rec.layer != MessageLayer.DISCOVERY or rec.sender not in wanted:
                continue
            counts[rec.sender] += 1
        return counts

    def summary(
        self, stats: MessageStats, registry_ids: List[str], change_time: float
    ) -> Dict[str, object]:
        """The ``details["federation"]`` block of a run result."""
        windows = self.staleness_windows(registry_ids)
        return {
            "k": self.k,
            "mode": self.mode,
            "topology": self.topology,
            "assign": self.assign,
            "registry_ids": list(registry_ids),
            "change_version": self.change_version,
            "registry_versions": {
                registry_id: self.registry_version(registry_id) for registry_id in registry_ids
            },
            "staleness": windows,
            "convergence_time": self.convergence_time(registry_ids),
            "converged_registries": sum(
                1 for value in windows.values() if value is not None
            ),
            "per_registry_update_messages": self.per_registry_update_messages(
                stats, registry_ids, change_time
            ),
        }
