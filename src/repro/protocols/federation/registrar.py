"""The federated Lookup Service.

A :class:`FederatedLookupService` is a Jini Lookup Service that additionally
sits on a registry graph (:mod:`repro.protocols.federation.topology`) and
propagates service state across it according to the federation *mode*:

* ``push`` — no inter-registry traffic at all: the Manager is multi-homed
  and pushes its update to every registry itself (the paper's replicated
  ``jini2`` model).  In this mode the class is behaviourally identical to
  :class:`~repro.protocols.jini.registrar.JiniLookupService` — it sends the
  same messages in the same order, which is what keeps the legacy
  ``jini1``/``jini2`` aliases byte-identical.
* ``pull`` — pull-on-miss with a cache TTL: a lookup or event renewal that
  hits a missing or stale entry triggers one ``fed_pull`` round to the
  topology neighbours plus the well-known home registry (the UAM relay
  chain: cache check, neighbour lookup, well-known fallback).  Lookups are
  still answered immediately from whatever is held — the stale-entry
  fallback — and the refreshed entry fires remote events when it arrives.
* ``gossip`` — periodic anti-entropy: every ``gossip_interval`` the
  registry sends its entries to one neighbour (round-robin by tick count,
  deterministic), which merges newer entries and replies with anything it
  holds that is newer.

Pull/gossip receivers answer from what they hold and never recurse, so a
federation round is always one hop of messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.federation import messages as fm
from repro.protocols.federation.monitor import FederationMonitor
from repro.protocols.jini import messages as m
from repro.protocols.jini.config import JiniConfig
from repro.protocols.jini.registrar import JiniLookupService
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class FederatedLookupService(JiniLookupService):
    """One registry of a federation."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        tracker: Optional[ConsistencyTracker] = None,
        mode: str = "push",
        ttl: float = 600.0,
        gossip_interval: float = 120.0,
        monitor: Optional[FederationMonitor] = None,
    ) -> None:
        super().__init__(sim, network, node_id, transports, config, tracker=tracker)
        self.fed_mode = mode
        self.fed_ttl = ttl
        self.monitor = monitor
        #: Topology neighbours and the well-known fallback registry
        #: (assigned by the builder once all registries exist).
        self.peer_addrs: List[Address] = []
        self.home_addr: Optional[Address] = None
        #: When each entry was last confirmed fresh (stored or revalidated).
        self._fetched_at: Dict[str, float] = {}
        #: Start of an unanswered pull round (duplicate-pull guard).
        self._pull_pending_since: Optional[float] = None
        self._gossip_tick_count = 0
        # Created only in gossip mode: push mode must stay indistinguishable
        # from the plain Lookup Service, timer bookkeeping included.
        self._gossip_timer = (
            PeriodicTimer(sim, gossip_interval, self._gossip_tick) if mode == "gossip" else None
        )

    def link(self, peer_addrs: List[Address], home_addr: Address) -> None:
        """Wire the registry into its graph (builder-time, no messages)."""
        self.peer_addrs = list(peer_addrs)
        self.home_addr = home_addr

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        super().on_start()
        if self._gossip_timer is not None:
            self._gossip_timer.start()

    def on_stop(self) -> None:
        super().on_stop()
        if self._gossip_timer is not None:
            self._gossip_timer.stop()

    # ------------------------------------------------------------------ freshness bookkeeping
    def _note_stored(self, sd: ServiceDescription) -> None:
        """Record a store for the consistency metrics (pure bookkeeping)."""
        self._fetched_at[sd.service_id] = self.now
        if self.monitor is not None:
            self.monitor.record_store(self.node_id, sd.version, self.now)

    def _is_stale(self, service_id: str) -> bool:
        """``True`` when the entry is missing or older than the cache TTL."""
        fetched = self._fetched_at.get(service_id)
        return fetched is None or self.now - fetched > self.fed_ttl

    # The authoritative paths (Manager traffic) refresh freshness directly.
    def handle_register(self, message: Message) -> None:
        super().handle_register(message)
        self._note_stored(message.payload["sd"])

    def handle_service_update(self, message: Message) -> None:
        super().handle_service_update(message)
        self._note_stored(message.payload["sd"])

    # ------------------------------------------------------------------ lookup (stale-entry fallback)
    def handle_lookup(self, message: Message) -> None:
        if self.fed_mode == "push":
            super().handle_lookup(message)
            return
        query = ServiceQuery(
            device_type=message.payload.get("device_type"),
            service_type=message.payload.get("service_type"),
            attributes=message.payload.get("attributes", {}) or {},
        )
        matches = self.registrations.find(query, now=self.now)
        if not matches:
            # Stale-entry fallback: a lease-expired entry is better than an
            # empty answer while the federation refreshes it.
            matches = self.registrations.find(query)
            if matches:
                self.trace("stale_fallback", count=len(matches))
        if self.fed_mode == "pull" and (
            not matches or any(self._is_stale(sd.service_id) for sd in matches)
        ):
            self._federated_pull()
        self.send_tcp(message.sender, m.LOOKUP_RESPONSE, {"sds": matches})

    def handle_event_renew(self, message: Message) -> None:
        super().handle_event_renew(message)
        if self.fed_mode == "pull" and self._is_stale(message.payload["service_id"]):
            # Pull-on-miss, renewal trigger: the entry this client watches is
            # missing or past its TTL here — refresh it from the federation.
            self._federated_pull()

    # ------------------------------------------------------------------ pull-on-miss
    def _federated_pull(self) -> None:
        if (
            self._pull_pending_since is not None
            and self.now - self._pull_pending_since < self.config.response_timeout
        ):
            return
        targets = list(self.peer_addrs)
        if (
            self.home_addr is not None
            and self.home_addr != self.node_id
            and self.home_addr not in targets
        ):
            # Well-known fallback: the home registry always hears the
            # Manager, so ask it even when it is not a topology neighbour.
            targets.append(self.home_addr)
        if not targets:
            return
        self._pull_pending_since = self.now
        for addr in targets:

            def _rex(_rex: RemoteException, addr: Address = addr) -> None:
                self.trace("fed_pull_rex", peer=addr)

            self.send_tcp(addr, fm.FED_PULL, {"requester": self.node_id}, on_rex=_rex)

    def _held_sds(self) -> List[ServiceDescription]:
        """Every held service description, lease-expired entries included
        (the receiver judges by version, not by our lease)."""
        sds = []
        for service_id in self.registrations.service_ids():
            sd = self.registrations.get_sd(service_id)
            if sd is not None:
                sds.append(sd)
        return sds

    def handle_fed_pull(self, message: Message) -> None:
        def _rex(_rex: RemoteException) -> None:
            self.trace("fed_pull_response_rex", peer=message.sender)

        self.send_tcp(
            message.sender, fm.FED_PULL_RESPONSE, {"sds": self._held_sds()}, on_rex=_rex
        )

    def handle_fed_pull_response(self, message: Message) -> None:
        self._pull_pending_since = None
        for sd in message.payload.get("sds", []):
            self._merge_remote(sd)

    def _merge_remote(self, sd: ServiceDescription) -> None:
        """Adopt a federation-supplied entry when it is at least as new."""
        held = self.registrations.get_sd(sd.service_id)
        if held is not None and sd.version < held.version:
            return
        newer = held is None or sd.version > held.version
        self.registrations.store(sd, self.now, lease_duration=self.config.registration_lease)
        # Equal versions revalidate freshness; newer versions also fire the
        # remote events this registry's subscribers are waiting for.
        self._note_stored(sd)
        if newer:
            self.trace("fed_merge", service_id=sd.service_id, version=sd.version)
            self._fire_events(sd)

    # ------------------------------------------------------------------ gossip
    def _gossip_tick(self) -> None:
        if not self.peer_addrs:
            return
        addr = self.peer_addrs[self._gossip_tick_count % len(self.peer_addrs)]
        self._gossip_tick_count += 1
        sds = self._held_sds()
        if not sds:
            return

        def _rex(_rex: RemoteException) -> None:
            self.trace("fed_gossip_rex", peer=addr)

        self.send_tcp(addr, fm.FED_GOSSIP, {"sds": sds}, on_rex=_rex)

    def handle_fed_gossip(self, message: Message) -> None:
        offered = {sd.service_id: sd.version for sd in message.payload.get("sds", [])}
        for sd in message.payload.get("sds", []):
            self._merge_remote(sd)
        # Anti-entropy reply: anything we hold that the sender lacks or
        # holds in an older version.
        newer = [
            sd
            for sd in self._held_sds()
            if sd.version > offered.get(sd.service_id, 0)
        ]
        if newer:

            def _rex(_rex: RemoteException) -> None:
                self.trace("fed_gossip_ack_rex", peer=message.sender)

            self.send_tcp(message.sender, fm.FED_GOSSIP_ACK, {"sds": newer}, on_rex=_rex)

    def handle_fed_gossip_ack(self, message: Message) -> None:
        for sd in message.payload.get("sds", []):
            self._merge_remote(sd)
