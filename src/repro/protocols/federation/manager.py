"""The federated service provider.

In push mode the Manager is *multi-homed*: it registers with every
discovered registry and pushes its update to each of them itself — the
paper's replicated model, where ``home`` stays ``None`` and this class is
behaviourally identical to its base.

In pull/gossip mode the Manager is *single-homed*: it registers with its
home registry only and the federation propagates the update from there, so
the provider ignores announcements from every other registry.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceDescription
from repro.net.addressing import Address
from repro.net.network import Network
from repro.protocols.jini.config import JiniConfig
from repro.protocols.jini.manager import JiniServiceProvider
from repro.sim.engine import Simulator


class FederatedServiceProvider(JiniServiceProvider):
    """A Jini service provider, optionally pinned to one home registry."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        sd: ServiceDescription,
        tracker: Optional[ConsistencyTracker] = None,
        home: Optional[Address] = None,
    ) -> None:
        super().__init__(sim, network, node_id, transports, config, sd, tracker=tracker)
        #: ``None`` = multi-homed (legacy push behaviour).
        self.home = home

    def _learn_registrar(self, addr: Address) -> None:
        if self.home is not None and addr != self.home:
            return
        super()._learn_registrar(addr)
