"""Federated registry topologies (K Lookup Services on a registry graph).

The paper's two-registry Jini variant generalises here: K registries are
connected by a topology (full mesh, star, ring, line), users are partitioned
or multi-homed across them, and registrations/updates propagate
inter-registry via a pluggable policy — eager push (the paper's replicated
model), pull-on-miss with a cache TTL, or periodic gossip — with stale-entry
fallback and cross-registry consistency metrics.

``build_federation`` is the single constructor of the whole Jini family:
the legacy ``jini1``/``jini2`` systems are frozen aliases of
``jini@k=1``/``jini@k=2`` and the legacy ``build_jini`` delegates here.
"""

from repro.protocols.federation.builder import (
    FEDERATION_PARAM_DEFAULTS,
    FederatedJiniDeployment,
    build_federation,
)
from repro.protocols.federation.monitor import FederationMonitor
from repro.protocols.federation.topology import diameter, neighbor_indices

__all__ = [
    "FEDERATION_PARAM_DEFAULTS",
    "FederatedJiniDeployment",
    "FederationMonitor",
    "build_federation",
    "diameter",
    "neighbor_indices",
]
