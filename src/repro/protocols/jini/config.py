"""Jini model parameters.

Defaults follow Table 3/Table 4 and standard Jini practice: Lookup-Service
announcements every 120 s, 1800 s registration and event leases renewed at
half-life, redundant multicast (6 copies) and TCP for all unicast exchanges.
As with FRODO and UPnP, every periodic grid avoids the default 2000 s
service-change time so the zero-failure baseline is exactly m'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.multicast import REDUNDANT_MULTICAST_COPIES


@dataclass
class JiniConfig:
    """All tunable parameters of the Jini model."""

    # ------------------------------------------------------------------ discovery
    #: Period of Lookup Service multicast announcements (seconds).  Ticks at
    #: 120 k s; 2000 s (the default change time) is not on the grid.
    announce_interval: float = 120.0
    #: Redundant copies per logical multicast (Table 3: 6 for UPnP and Jini).
    multicast_copies: int = REDUNDANT_MULTICAST_COPIES
    #: Period of a node's multicast discovery requests while it knows no
    #: Lookup Service (seconds).
    discovery_interval: float = 120.0

    # ------------------------------------------------------------------ leases
    #: Service-registration lease at the Lookup Service (seconds).
    registration_lease: float = 1800.0
    #: Remote-event registration lease at the Lookup Service (seconds).
    event_lease: float = 1800.0
    #: Lessees renew after this fraction of the lease has elapsed.
    renewal_fraction: float = 0.5

    # ------------------------------------------------------------------ recovery pacing
    #: Delay before an unanswered lookup is retried during initial discovery.
    lookup_retry_interval: float = 10.0
    #: PR2: a client purges a Lookup Service whose announcements have been
    #: silent for this long (seconds; 5 announcement periods).
    registry_silence_timeout: float = 600.0
    #: Period of the Lookup Service's purge scan (seconds).
    purge_scan_interval: float = 60.0
    #: How long an in-flight registration/update suppresses a duplicate before
    #: it is presumed lost (covers the case where the request leg was
    #: delivered but the acknowledgement leg ended in a Remote Exception;
    #: must exceed TCP's worst-case connection-retry schedule of ~78 s).
    response_timeout: float = 120.0

    # ------------------------------------------------------------------ recovery technique toggles
    #: SRC2: versions on renewal acknowledgements trigger explicit lookups /
    #: update requests for missed updates.
    enable_src2: bool = True

    # ------------------------------------------------------------------ misc
    #: Default lease used by client-side service caches (seconds).
    service_cache_lease: float = 1800.0

    @property
    def renewal_interval(self) -> float:
        """Interval between lease renewals (``renewal_fraction * lease``)."""
        return self.renewal_fraction * self.event_lease

    def validate(self) -> "JiniConfig":
        """Raise :class:`ValueError` on inconsistent parameter combinations."""
        if not 0.0 < self.renewal_fraction < 1.0:
            raise ValueError("renewal_fraction must be in (0, 1)")
        if self.registration_lease <= 0 or self.event_lease <= 0:
            raise ValueError("leases must be positive")
        if self.announce_interval <= 0 or self.discovery_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.response_timeout <= 0:
            raise ValueError("response_timeout must be positive")
        if self.multicast_copies < 1:
            raise ValueError("multicast_copies must be >= 1")
        return self
