"""The Jini Lookup Service (the Registry of the 3-party topology).

The Lookup Service announces itself with periodic redundant multicasts,
answers multicast discovery requests with a unicast reply, stores service
registrations under a lease, serves lookups, and keeps remote-event
registrations through which it notifies clients of (re-)registrations and
attribute changes.  Events carry the new service item, so a delivered event
restores the client's consistency directly.

Recovery behaviour:

* PR1 — events fire on every (re-)registration whose version is newer than
  what the event registration last saw.  Only clients holding a *live* event
  registration are notified (future registrations; Table 2's Jini caveat).
* PR3 — renewing a purged event registration is answered with an
  ``event_renew_error``; the client re-registers and resynchronises with a
  lookup.
* SRC2 — a registration renewal advertising a newer version than the
  repository holds triggers an explicit ``update_request`` to the Manager.
* SRC1/SRN1 exist only through TCP; a failed event delivery (Remote
  Exception) is simply dropped — the lease machinery recovers later.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.cache import ServiceCache
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.discovery.subscription import SubscriptionTable
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.jini import messages as m
from repro.protocols.jini.config import JiniConfig
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class JiniLookupService(DiscoveryNode):
    """One Jini Lookup Service (LUS)."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.REGISTRY, transports)
        self.config = config.validate()
        self.tracker = tracker

        #: Registered service descriptions (registration lease enforced).
        self.registrations = ServiceCache(default_lease=config.registration_lease)
        #: Manager address per registered service.
        self.manager_addrs: Dict[str, Address] = {}
        #: Remote-event registrations (event lease enforced).
        self.event_registrations = SubscriptionTable(default_lease=config.event_lease)

        self._announce_timer = PeriodicTimer(sim, config.announce_interval, self._announce)
        self._purge_timer = PeriodicTimer(sim, config.purge_scan_interval, self._purge_scan)

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        self._announce()
        self._announce_timer.start()
        self._purge_timer.start()

    def on_stop(self) -> None:
        self._announce_timer.stop()
        self._purge_timer.stop()

    # ------------------------------------------------------------------ discovery
    def _announce(self) -> None:
        self.send_multicast(m.REGISTRAR_ANNOUNCE, {"registrar": self.node_id})

    def handle_discovery_request(self, message: Message) -> None:
        self.send_udp(message.sender, m.REGISTRAR_HERE, {"registrar": self.node_id})

    # ------------------------------------------------------------------ service registration
    def handle_register(self, message: Message) -> None:
        sd: ServiceDescription = message.payload["sd"]
        self.registrations.store(sd, self.now, lease_duration=self.config.registration_lease)
        self.manager_addrs[sd.service_id] = message.sender
        self.send_tcp(
            message.sender,
            m.REGISTER_ACK,
            {
                "service_id": sd.service_id,
                "version": sd.version,
                "lease": self.config.registration_lease,
            },
        )
        self.trace("registration_stored", service_id=sd.service_id, version=sd.version)
        self._fire_events(sd)

    def handle_register_renew(self, message: Message) -> None:
        service_id = message.payload["service_id"]
        version = message.payload.get("version", 0)
        entry = self.registrations.get(service_id)
        if entry is None:
            # UnknownLeaseException: the registration was purged; the Manager
            # re-registers, which fires PR1 events to interested clients.
            self.send_tcp(message.sender, m.REGISTER_RENEW_ERROR, {"service_id": service_id})
            return
        self.registrations.touch(service_id, self.now)
        self.manager_addrs[service_id] = message.sender
        self.send_tcp(
            message.sender,
            m.REGISTER_RENEW_ACK,
            {"service_id": service_id, "version": entry.sd.version},
        )
        if self.config.enable_src2 and version > entry.sd.version:
            # SRC2: the renewal advertises a newer version than the repository
            # holds — the update notification was missed, so request it.
            self.send_tcp(message.sender, m.UPDATE_REQUEST, {"service_id": service_id})

    # ------------------------------------------------------------------ update propagation
    def handle_service_update(self, message: Message) -> None:
        sd: ServiceDescription = message.payload["sd"]
        self.registrations.store(sd, self.now)
        self.manager_addrs[sd.service_id] = message.sender
        self.send_tcp(
            message.sender,
            m.UPDATE_ACK,
            {"service_id": sd.service_id, "version": sd.version},
        )
        self.trace("update_stored", service_id=sd.service_id, version=sd.version)
        self._fire_events(sd)

    def _fire_events(self, sd: ServiceDescription) -> None:
        """Notify every live event registration that has not seen this version."""
        for sub in self.event_registrations.subscribers_for(sd.service_id, now=self.now):
            if sub.acked_version < sd.version:
                self._send_event(sub.subscriber, sd)

    def _send_event(self, user: Address, sd: ServiceDescription) -> None:
        def _delivered(_msg: Message) -> None:
            sub = self.event_registrations.get(user, sd.service_id)
            if sub is not None:
                sub.acked_version = max(sub.acked_version, sd.version)

        def _rex(_rex: RemoteException) -> None:
            # Jini drops the event; the event lease (not the delivery) decides
            # whether the registration stays, and SRC2/PR3 recover the client.
            self.trace("event_rex", user=user, version=sd.version)

        self.send_tcp(
            user,
            m.REMOTE_EVENT,
            {"sd": sd},
            on_delivered=_delivered,
            on_rex=_rex,
        )

    # ------------------------------------------------------------------ remote-event registrations
    def handle_notify_request(self, message: Message) -> None:
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        self.event_registrations.subscribe(
            message.sender,
            service_id,
            self.now,
            lease_duration=self.config.event_lease,
            acked_version=held_version,
        )
        entry = self.registrations.get(service_id)
        self.send_tcp(
            message.sender,
            m.NOTIFY_ACK,
            {
                "service_id": service_id,
                "lease": self.config.event_lease,
                "current_version": entry.sd.version if entry is not None else 0,
            },
        )

    def handle_event_renew(self, message: Message) -> None:
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        sub = self.event_registrations.renew(message.sender, service_id, self.now)
        if sub is None:
            # PR3: the event registration was purged; the client re-registers.
            self.send_tcp(message.sender, m.EVENT_RENEW_ERROR, {"service_id": service_id})
            return
        sub.acked_version = max(sub.acked_version, held_version)
        entry = self.registrations.get(service_id)
        payload = {"service_id": service_id}
        if self.config.enable_src2:
            payload["current_version"] = entry.sd.version if entry is not None else 0
        self.send_tcp(message.sender, m.EVENT_RENEW_ACK, payload)

    # ------------------------------------------------------------------ lookup
    def handle_lookup(self, message: Message) -> None:
        query = ServiceQuery(
            device_type=message.payload.get("device_type"),
            service_type=message.payload.get("service_type"),
            attributes=message.payload.get("attributes", {}) or {},
        )
        matches = self.registrations.find(query, now=self.now)
        self.send_tcp(message.sender, m.LOOKUP_RESPONSE, {"sds": matches})

    # ------------------------------------------------------------------ purge scan
    def _purge_scan(self) -> None:
        now = self.now
        for service_id in self.registrations.purge_expired(now):
            self.trace("registration_purged", service_id=service_id)
            self.manager_addrs.pop(service_id, None)
        for sub in self.event_registrations.purge_expired(now):
            self.trace("event_registration_purged", subscriber=sub.subscriber)
