"""Jini topology builders (Table 4).

Two standard topologies are modelled:

* **jini1** — one Lookup Service, one service provider, five clients.
* **jini2** — two Lookup Services (the redundancy variant of Table 4); the
  provider registers with both and every client holds an event registration
  at both, doubling the update traffic (m' = 14).

All unicast control traffic runs over TCP (Table 3 failure response); every
multicast is transmitted redundantly (6 copies).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.network import Network
from repro.protocols.base import ProtocolDeployment
from repro.protocols.jini.config import JiniConfig
from repro.protocols.jini.manager import JiniServiceProvider
from repro.sim.engine import Simulator

#: Table 2: N + 2 update messages per Lookup Service (N = 5 Users).
M_PRIME_PER_REGISTRY = 7


def default_service(manager_id: str) -> ServiceDescription:
    """The paper's example service description (a colour printer)."""
    return ServiceDescription(
        service_id="printer-service",
        manager_id=manager_id,
        device_type="Printer",
        service_type="ColorPrinter",
        attributes={"PaperSize": "A4", "Location": "Study"},
        version=1,
    )


def default_query() -> ServiceQuery:
    """The clients' requirement: any printer."""
    return ServiceQuery(device_type="Printer")


class JiniDeployment(ProtocolDeployment):
    """A Jini topology ready to simulate."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        config: JiniConfig,
        n_registries: int,
    ) -> None:
        super().__init__(sim, network, tracker)
        self.config = config
        self.n_registries = n_registries
        self.system = f"jini{n_registries}"
        #: Table 2: (N + 2) per Lookup Service; N = 5 here, the builder
        #: overwrites it for the actual topology size.
        self.m_prime = M_PRIME_PER_REGISTRY * n_registries

    def trigger_service_change(
        self, attributes: Optional[Dict[str, object]] = None
    ) -> ServiceDescription:
        provider: JiniServiceProvider = self.primary_manager  # type: ignore[assignment]
        return provider.change_service(attributes=attributes)


def build_jini(
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    config: Optional[JiniConfig] = None,
    n_users: int = 5,
    n_registries: int = 1,
) -> JiniDeployment:
    """Instantiate a Jini topology with ``n_registries`` Lookup Services.

    Deprecated construction path: the general constructor is
    :func:`repro.protocols.federation.builder.build_federation`, of which
    this is the eager-push special case (``jini@k=<n_registries>``).  Kept
    for callers of the historical API; the federation-details block is
    pinned off so per-run output matches the legacy builder exactly.
    """
    from repro.protocols.federation.builder import build_federation

    if n_registries < 1:
        raise ValueError("n_registries must be >= 1")
    return build_federation(
        sim,
        network,
        tracker,
        config=config,
        n_users=n_users,
        k=n_registries,
        report=False,
    )
