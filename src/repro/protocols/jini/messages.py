"""Jini message kinds.

The wire vocabulary of the Jini model and its update-message accounting
declaration.  The zero-failure update flow per Lookup Service is one
``service_update`` (the Manager's re-registration with changed attributes),
one ``update_ack`` and one ``remote_event`` per client — ``N + 2`` messages,
matching Table 2's Jini count (m' = 7 for one Registry, 14 for two).
Lookups and their responses are update-related like FRODO's queries: before
the change they fall outside the accounting window, afterwards they are
exactly the SRC2/PR2/PR3 recovery traffic the degradation metric measures.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.protocols.accounting import register_update_related_kinds

PROTOCOL = "jini"

# ------------------------------------------------------------------ discovery (multicast, 6 copies)
REGISTRAR_ANNOUNCE = "registrar_announce"
DISCOVERY_REQUEST = "discovery_request"
REGISTRAR_HERE = "registrar_here"  # unicast reply to a discovery request

# ------------------------------------------------------------------ service registration (TCP)
REGISTER = "register"
REGISTER_ACK = "register_ack"
REGISTER_RENEW = "register_renew"
REGISTER_RENEW_ACK = "register_renew_ack"
REGISTER_RENEW_ERROR = "register_renew_error"  # UnknownLeaseException -> re-register

# ------------------------------------------------------------------ update propagation (TCP)
SERVICE_UPDATE = "service_update"
UPDATE_ACK = "update_ack"
UPDATE_REQUEST = "update_request"  # SRC2: the Lookup Service missed an update
REMOTE_EVENT = "remote_event"  # carries the new service item to a client

# ------------------------------------------------------------------ lookup / remote events (TCP)
LOOKUP = "lookup"
LOOKUP_RESPONSE = "lookup_response"
NOTIFY_REQUEST = "notify_request"  # remote-event registration
NOTIFY_ACK = "notify_ack"
EVENT_RENEW = "event_renew"
EVENT_RENEW_ACK = "event_renew_ack"
EVENT_RENEW_ERROR = "event_renew_error"  # PR3: the registration was purged

#: Message kinds counted towards *y* in the efficiency metrics.
UPDATE_RELATED_KINDS: FrozenSet[str] = frozenset(
    {
        REGISTER,
        REGISTER_ACK,
        SERVICE_UPDATE,
        UPDATE_ACK,
        UPDATE_REQUEST,
        REMOTE_EVENT,
        LOOKUP,
        LOOKUP_RESPONSE,
    }
)

register_update_related_kinds(PROTOCOL, UPDATE_RELATED_KINDS)
