"""Jini clients (the Users of the 3-party topology).

A client discovers Lookup Services (multicast discovery requests plus
announcement listening), looks the service up over TCP, adopts the service
item from the lookup response, and places a remote-event registration at
*every* known Lookup Service so that a change reaches it from whichever
Registry hears about it first (the redundancy ``jini2`` is built on).

Recovery behaviour:

* SRC2 — ``current_version`` on notify/renewal acknowledgements reveals a
  missed event; the client resynchronises with an explicit lookup.
* PR2 — a Lookup Service that raises a Remote Exception or whose
  announcements stay silent past the timeout is purged; the client
  rediscovers via periodic multicast discovery requests and announcements.
* PR3 — an ``event_renew_error`` (the Registry purged our event
  registration) triggers a fresh registration; its ack carries the current
  version, and SRC2 then pulls the missed update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.cache import ServiceCache
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.jini import messages as m
from repro.protocols.jini.config import JiniConfig
from repro.sim.engine import Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer


@dataclass
class ClientRegistrarState:
    """What the client knows about one Lookup Service."""

    event_registered: bool = False
    #: Simulation time anything was last heard from this Lookup Service.
    last_heard: float = 0.0


class JiniClient(DiscoveryNode):
    """A Jini client looking for one service."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        query: ServiceQuery,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.USER, transports)
        self.config = config.validate()
        self.query = query
        self.tracker = tracker

        self.registrars: Dict[Address, ClientRegistrarState] = {}
        self.service_id: Optional[str] = None
        self.cache = ServiceCache(default_lease=config.service_cache_lease)

        self._discovery_timer = PeriodicTimer(sim, config.discovery_interval, self._discovery_tick)
        self._renew_timer = PeriodicTimer(sim, config.renewal_interval, self._renew_tick)
        self._lookup_retry = OneShotTimer(sim, self._retry_lookup)

    # ------------------------------------------------------------------ properties
    @property
    def held_version(self) -> int:
        """The version of the service description this client holds."""
        if self.service_id is None:
            return 0
        entry = self.cache.get(self.service_id)
        return entry.sd.version if entry is not None else 0

    @property
    def has_service(self) -> bool:
        """``True`` when a service description is cached."""
        return self.service_id is not None and self.cache.get(self.service_id) is not None

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        self._discovery_tick()
        self._discovery_timer.start()
        self._renew_timer.start()

    def on_stop(self) -> None:
        self._discovery_timer.stop()
        self._renew_timer.stop()
        self._lookup_retry.cancel()

    # ------------------------------------------------------------------ Lookup Service discovery
    def _discovery_tick(self) -> None:
        if self.registrars:
            return
        self.send_multicast(m.DISCOVERY_REQUEST, {"node": self.node_id, "role": "user"})

    def handle_registrar_announce(self, message: Message) -> None:
        self._learn_registrar(message.payload["registrar"])

    def handle_registrar_here(self, message: Message) -> None:
        self._learn_registrar(message.payload["registrar"])

    def _learn_registrar(self, addr: Address) -> None:
        state = self.registrars.get(addr)
        if state is None:
            state = ClientRegistrarState(last_heard=self.now)
            self.registrars[addr] = state
            if self.has_service:
                self._register_notify(addr)
            else:
                self._lookup(addr)
        else:
            state.last_heard = self.now

    def _drop_registrar(self, addr: Address, reason: str) -> None:
        if self.registrars.pop(addr, None) is not None:
            self.trace("registrar_purged", registrar=addr, reason=reason)
        if not self.registrars:
            # PR2: rediscover through multicast requests and announcements.
            self._discovery_tick()

    # ------------------------------------------------------------------ lookup
    def _lookup(self, addr: Address) -> None:
        def _rex(_rex: RemoteException) -> None:
            self._drop_registrar(addr, reason="lookup_rex")

        self.send_tcp(
            addr,
            m.LOOKUP,
            {
                "device_type": self.query.device_type,
                "service_type": self.query.service_type,
                "attributes": dict(self.query.attributes),
            },
            on_rex=_rex,
        )

    def _retry_lookup(self) -> None:
        if self.has_service or not self.registrars:
            return
        self._lookup(next(iter(self.registrars)))

    def handle_lookup_response(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is not None:
            state.last_heard = self.now
        matches = [
            sd for sd in message.payload.get("sds", []) if sd is not None and self.query.matches(sd)
        ]
        if matches:
            self._adopt_sd(max(matches, key=lambda sd: sd.version))
        elif not self.has_service:
            self._lookup_retry.start(self.config.lookup_retry_interval)

    # ------------------------------------------------------------------ adopting a service description
    def _adopt_sd(self, sd: ServiceDescription) -> None:
        if self.has_service and sd.version < self.held_version:
            return
        self.service_id = sd.service_id
        self.cache.store(sd, self.now, lease_duration=self.config.service_cache_lease)
        if self.tracker is not None:
            self.tracker.record_view(self.node_id, sd.version, self.now)
        self._lookup_retry.cancel()
        for addr, state in list(self.registrars.items()):
            if not state.event_registered:
                self._register_notify(addr)

    # ------------------------------------------------------------------ remote-event registrations
    def _register_notify(self, addr: Address) -> None:
        if self.service_id is None:
            return

        def _rex(_rex: RemoteException) -> None:
            self._drop_registrar(addr, reason="notify_rex")

        self.send_tcp(
            addr,
            m.NOTIFY_REQUEST,
            {"service_id": self.service_id, "held_version": self.held_version},
            on_rex=_rex,
        )

    def handle_notify_ack(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is None:
            state = ClientRegistrarState()
            self.registrars[message.sender] = state
        state.event_registered = True
        state.last_heard = self.now
        self._maybe_resync(message.sender, message.payload.get("current_version", 0))

    def handle_remote_event(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is not None:
            state.last_heard = self.now
        sd: ServiceDescription = message.payload["sd"]
        if self.query.matches(sd):
            self._adopt_sd(sd)

    # ------------------------------------------------------------------ lease renewals / PR2 watchdog
    def _renew_tick(self) -> None:
        now = self.now
        for addr, state in list(self.registrars.items()):
            if now - state.last_heard > self.config.registry_silence_timeout:
                # PR2: the Lookup Service has been silent for too long.
                self._drop_registrar(addr, reason="announcement_silence")
                continue
            if state.event_registered and self.service_id is not None:

                def _rex(_rex: RemoteException, addr: Address = addr) -> None:
                    self._drop_registrar(addr, reason="renew_rex")

                self.send_tcp(
                    addr,
                    m.EVENT_RENEW,
                    {"service_id": self.service_id, "held_version": self.held_version},
                    on_rex=_rex,
                )
            elif self.has_service and not state.event_registered:
                self._register_notify(addr)
        if not self.has_service and self.registrars and not self._lookup_retry.armed:
            self._retry_lookup()

    def handle_event_renew_ack(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is not None:
            state.last_heard = self.now
        if self.service_id is not None:
            self.cache.touch(self.service_id, self.now)
        self._maybe_resync(message.sender, message.payload.get("current_version"))

    def handle_event_renew_error(self, message: Message) -> None:
        # PR3: the Registry purged our event registration; re-register (the
        # notify ack's current_version then drives the SRC2 resync lookup).
        state = self.registrars.get(message.sender)
        if state is not None:
            state.event_registered = False
            state.last_heard = self.now
        self._register_notify(message.sender)

    def _maybe_resync(self, addr: Address, current_version: Optional[int]) -> None:
        """SRC2: pull a missed update when the Registry holds a newer version."""
        if not self.config.enable_src2 or current_version is None:
            return
        if current_version > self.held_version:
            self._lookup(addr)
