"""Jini protocol model (Table 2 / Table 4).

Jini is the 3-party system of the comparison: one or two Lookup Services
(the Registries) mediate between the service provider (the Manager) and the
clients (the Users).  Discovery uses redundant multicast (announcements from
the Lookup Service, discovery requests from nodes); all unicast control
traffic — registration, lookup, remote-event notification, lease renewal —
runs over TCP with the Table 3 failure response.

A service change is propagated as a re-registration at each Lookup Service,
which fires a remote event (carrying the new service item) to every client
with a live event registration: ``registries * (N + 2)`` update messages,
m' = 7 for ``jini1`` and 14 for ``jini2``.

Recovery techniques (Table 2): SRC1/SRN1 only through TCP's bounded retries,
SRC2 (version numbers on lease-renewal acknowledgements trigger explicit
lookups), PR1 (events fire on re-registration — future registrations only),
PR2 (clients purge a silent Lookup Service and rediscover via multicast) and
PR3 (a renewal of a purged event registration is answered with an error that
triggers re-registration).
"""

from repro.protocols.jini.builder import JiniDeployment, build_jini
from repro.protocols.jini.config import JiniConfig

__all__ = ["JiniConfig", "JiniDeployment", "build_jini"]
