"""The Jini service provider (the Manager of the 3-party topology).

The provider discovers Lookup Services (multicast discovery requests plus
announcement listening), registers its service item with every one of them
over TCP, renews the registration lease at half-life, and propagates a
service change by re-registering the changed item (``service_update``) at
each Lookup Service.

Recovery behaviour:

* A Remote Exception on any exchange with a Lookup Service drops it from the
  known set; the periodic announcements rediscover it (PR1, Manager side).
* A ``register_renew_error`` (the registration lease was purged) triggers a
  fresh registration, which makes the Lookup Service fire PR1 events.
* A missed change is repaired when the Lookup Service becomes reachable
  again: announcements from a stale Lookup Service re-send the update, and
  version numbers on renewals let the Lookup Service request it (SRC2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.service import ServiceDescription
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.jini import messages as m
from repro.protocols.jini.config import JiniConfig
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass
class RegistrarState:
    """What the provider knows about one Lookup Service."""

    registered: bool = False
    #: Highest version the Lookup Service has acknowledged.
    acked_version: int = 0
    #: Start time of an in-flight registration/update (duplicate guard).
    #: A timestamp, not a boolean: the acknowledgement is a separate TCP
    #: exchange whose Remote Exception fires on the Lookup Service, so this
    #: node would never learn of the loss — the guard expires after
    #: ``response_timeout`` instead of blocking the Lookup Service forever.
    send_pending_since: Optional[float] = None


class JiniServiceProvider(DiscoveryNode):
    """A Jini service provider hosting one service item."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: JiniConfig,
        sd: ServiceDescription,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.MANAGER, transports)
        self.config = config.validate()
        self.sd = sd
        self.tracker = tracker
        self.registrars: Dict[Address, RegistrarState] = {}

        self._discovery_timer = PeriodicTimer(sim, config.discovery_interval, self._discovery_tick)
        self._renew_timer = PeriodicTimer(sim, config.renewal_interval, self._renew_tick)

    # ------------------------------------------------------------------ properties
    @property
    def service_id(self) -> str:
        """Identifier of the hosted service."""
        return self.sd.service_id

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self._discovery_tick()
        self._discovery_timer.start()
        self._renew_timer.start()

    def on_stop(self) -> None:
        self._discovery_timer.stop()
        self._renew_timer.stop()

    # ------------------------------------------------------------------ Lookup Service discovery
    def _discovery_tick(self) -> None:
        if self.registrars:
            return
        self.send_multicast(m.DISCOVERY_REQUEST, {"node": self.node_id, "role": "manager"})

    def handle_registrar_announce(self, message: Message) -> None:
        self._learn_registrar(message.payload["registrar"])

    def handle_registrar_here(self, message: Message) -> None:
        self._learn_registrar(message.payload["registrar"])

    def _learn_registrar(self, addr: Address) -> None:
        state = self.registrars.get(addr)
        if state is None:
            state = RegistrarState()
            self.registrars[addr] = state
        if not state.registered:
            self._register_with(addr)
        elif state.acked_version < self.sd.version:
            # The Lookup Service is reachable again; re-send the missed update.
            self._send_update_to(addr)

    def _drop_registrar(self, addr: Address) -> None:
        if self.registrars.pop(addr, None) is not None:
            self.trace("registrar_lost", registrar=addr)

    def _send_in_flight(self, state: RegistrarState) -> bool:
        """``True`` while a registration/update may still be acknowledged."""
        return (
            state.send_pending_since is not None
            and self.now - state.send_pending_since < self.config.response_timeout
        )

    # ------------------------------------------------------------------ registration
    def _register_with(self, addr: Address) -> None:
        state = self.registrars.get(addr)
        if state is None or self._send_in_flight(state):
            return
        state.send_pending_since = self.now

        def _rex(_rex: RemoteException) -> None:
            # Unreachable: forget it; its announcements re-trigger registration.
            self._drop_registrar(addr)

        self.send_tcp(
            addr,
            m.REGISTER,
            {"sd": self.sd, "lease": self.config.registration_lease},
            on_rex=_rex,
        )

    def handle_register_ack(self, message: Message) -> None:
        state = self.registrars.setdefault(message.sender, RegistrarState())
        state.send_pending_since = None
        state.registered = True
        state.acked_version = max(state.acked_version, message.payload.get("version", 0))
        if state.acked_version < self.sd.version:
            self._send_update_to(message.sender)

    def _renew_tick(self) -> None:
        for addr, state in list(self.registrars.items()):
            if not state.registered:
                continue

            def _rex(_rex: RemoteException, addr: Address = addr) -> None:
                self._drop_registrar(addr)

            self.send_tcp(
                addr,
                m.REGISTER_RENEW,
                {"service_id": self.service_id, "version": self.sd.version},
                on_rex=_rex,
            )

    def handle_register_renew_ack(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is not None:
            state.acked_version = max(state.acked_version, message.payload.get("version", 0))

    def handle_register_renew_error(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is None:
            return
        state.registered = False
        state.send_pending_since = None
        self._register_with(message.sender)

    # ------------------------------------------------------------------ the service change
    def change_service(
        self,
        attributes: Optional[dict] = None,
        service_type: Optional[str] = None,
    ) -> ServiceDescription:
        """Apply a change and re-register the item at every Lookup Service."""
        self.sd = self.sd.with_update(
            service_type=service_type, attributes=attributes or {"changed_at": self.now}
        )
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self.trace("service_changed", version=self.sd.version)
        for addr, state in list(self.registrars.items()):
            if state.registered:
                self._send_update_to(addr)
        return self.sd

    def _send_update_to(self, addr: Address) -> None:
        state = self.registrars.get(addr)
        if state is None or self._send_in_flight(state):
            return
        state.send_pending_since = self.now
        version = self.sd.version

        def _rex(_rex: RemoteException) -> None:
            # Keep the Lookup Service but remember it is stale; announcements
            # and renewal-driven SRC2 requests repair it later.
            current = self.registrars.get(addr)
            if current is not None:
                current.send_pending_since = None
            self.trace("update_rex", registrar=addr, version=version)

        self.send_tcp(addr, m.SERVICE_UPDATE, {"sd": self.sd}, on_rex=_rex)

    def handle_update_ack(self, message: Message) -> None:
        state = self.registrars.get(message.sender)
        if state is None:
            return
        state.send_pending_since = None
        state.acked_version = max(state.acked_version, message.payload.get("version", 0))
        if state.acked_version < self.sd.version:
            # The service changed again while the previous update was in flight.
            self._send_update_to(message.sender)

    def handle_update_request(self, message: Message) -> None:
        """SRC2 from the Lookup Service: it noticed it missed an update."""
        state = self.registrars.setdefault(message.sender, RegistrarState())
        state.registered = True
        self._send_update_to(message.sender)
