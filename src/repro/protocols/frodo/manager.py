"""FRODO Managers.

A Manager owns one service description and keeps the Central's repository
up to date.  3D/3C Managers (3-party subscription) delegate User notification
to the Central; 300D Managers (2-party subscription) maintain their own
subscriber table and notify Users directly, which enables SRN2 (retry of an
unsuccessful notification when the inconsistent User's subscription renewal
arrives) and PR4 (resubscription requests to purged Users).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.retry import AckRetryScheduler
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.discovery.subscription import SubscriptionTable
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.protocols.frodo import messages as m
from repro.protocols.frodo.config import FrodoConfig
from repro.protocols.frodo.device_classes import DeviceClass
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class FrodoManager(DiscoveryNode):
    """A FRODO Manager of either device class."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: FrodoConfig,
        sd: ServiceDescription,
        device_class: DeviceClass = DeviceClass.DOLLAR_3D,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.MANAGER, transports)
        self.config = config.validate()
        self.device_class = device_class
        self.sd = sd
        self.tracker = tracker

        self.central: Optional[Address] = None
        self.registered = False
        #: Last time the Central confirmed our registration (ack or renew ack).
        self.last_central_contact: float = 0.0
        #: Set when the update notification to the Central was never acknowledged.
        self.central_stale = False

        #: 2-party subscription state (300D Managers only).
        self.subscriptions = SubscriptionTable(default_lease=config.subscription_lease)
        #: SRN2: Users whose update notification could not be delivered.
        self.inconsistent_users: set[Address] = set()

        self._retries = AckRetryScheduler(sim)
        self._announce_timer = PeriodicTimer(
            sim, config.node_announce_interval, self._announce_presence
        )
        self._renew_timer = PeriodicTimer(sim, config.renewal_interval, self._renew_registration)

    # ------------------------------------------------------------------ properties
    @property
    def two_party(self) -> bool:
        """``True`` when this Manager handles its own subscribers (300D)."""
        return self.device_class.uses_two_party_subscription

    @property
    def service_id(self) -> str:
        """Identifier of the managed service."""
        return self.sd.service_id

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self._announce_presence()
        self._announce_timer.start()

    def on_stop(self) -> None:
        self._announce_timer.stop()
        self._renew_timer.stop()
        self._retries.cancel_all()

    # ------------------------------------------------------------------ discovery of the Central
    def _announce_presence(self) -> None:
        if self.registered:
            self._announce_timer.stop()
            return
        self.send_multicast(
            m.NODE_ANNOUNCE,
            {"node": self.node_id, "role": "manager", "service_id": self.service_id},
        )

    def _learn_central(self, central: Address) -> None:
        if central == self.node_id:
            return
        if self.central != central:
            self.central = central
            self.registered = False
        if not self.registered:
            self._register()

    def handle_central_announce(self, message: Message) -> None:
        self._learn_central(message.payload["central"])
        if self.registered and self.central_stale:
            # The Central is reachable again; propagate the missed update.
            self._send_update_to_central()

    def handle_registry_here(self, message: Message) -> None:
        self._learn_central(message.payload["central"])

    def handle_reregister_request(self, message: Message) -> None:
        self.central = message.sender
        self.registered = False
        self._register()

    # ------------------------------------------------------------------ registration
    def _register(self) -> None:
        if self.central is None:
            return
        central = self.central

        def _send(_attempt: int) -> None:
            self.send_udp(central, m.REGISTRATION, {"sd": self.sd}, update_related=True)

        self._retries.start(
            ("registration", central),
            _send,
            timeout=self.config.ack_timeout,
            max_retries=self.config.registration_retries,
            on_give_up=lambda _key: self.trace("registration_failed", central=central),
        )

    def handle_registration_ack(self, message: Message) -> None:
        self._retries.acknowledge(("registration", message.sender))
        self.central = message.sender
        self.registered = True
        self.central_stale = message.payload.get("version", 0) < self.sd.version
        self.last_central_contact = self.now
        self._announce_timer.stop()
        if not self._renew_timer.running:
            self._renew_timer.start()
        if self.central_stale:
            self._send_update_to_central()

    def _renew_registration(self) -> None:
        if self.central is None:
            return
        # Watchdog: if the Central has not confirmed anything for longer than
        # the registration lease, assume we were purged (or it is gone) and
        # fall back to announcements until a Central is (re)discovered.
        lease = self.config.registration_lease
        if self.registered and self.now - self.last_central_contact > lease:
            self.registered = False
            self.trace("central_lost", central=self.central)
            self._announce_timer.start(0.0)
        if self.registered:
            self.send_udp(
                self.central,
                m.REGISTRATION_RENEW,
                {"service_id": self.service_id, "version": self.sd.version},
            )

    def handle_registration_renew_ack(self, message: Message) -> None:
        self.last_central_contact = self.now
        if message.payload.get("version", 0) >= self.sd.version:
            self.central_stale = False

    # ------------------------------------------------------------------ the service change
    def change_service(
        self,
        attributes: Optional[Dict[str, object]] = None,
        service_type: Optional[str] = None,
    ) -> ServiceDescription:
        """Apply a change to the service description and propagate it.

        This is the event the whole experiment revolves around: the new SD
        version must reach every subscribed User, via the Central (3-party)
        or directly (2-party).
        """
        self.sd = self.sd.with_update(
            service_type=service_type, attributes=attributes or {"changed_at": self.now}
        )
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self.trace("service_changed", version=self.sd.version)
        self._send_update_to_central()
        if self.two_party:
            for sub in self.subscriptions.subscribers_for(self.service_id, now=self.now):
                self._push_update_to_user(sub.subscriber)
        return self.sd

    def _send_update_to_central(self) -> None:
        if self.central is None:
            self.central_stale = True
            return
        central = self.central
        version = self.sd.version
        self.central_stale = True

        def _send(_attempt: int) -> None:
            self.send_udp(central, m.SERVICE_UPDATE, {"sd": self.sd}, update_related=True)

        self._retries.start(
            ("central_update", central),
            _send,
            timeout=self.config.ack_timeout,
            max_retries=self.config.srn1_retries if self.config.enable_srn1 else 0,
            on_give_up=lambda _key: self.trace("central_update_failed", version=version),
        )

    def handle_update_ack(self, message: Message) -> None:
        if message.payload.get("version", 0) >= self.sd.version:
            self.central_stale = False
        self._retries.acknowledge(("central_update", message.sender))
        self.last_central_contact = self.now

    def handle_update_request(self, message: Message) -> None:
        """SRC2 at the Central: it noticed (via a renewal) that it missed an update."""
        self.send_udp(message.sender, m.SERVICE_UPDATE, {"sd": self.sd}, update_related=True)

    # ------------------------------------------------------------------ 2-party subscription handling
    def _push_update_to_user(self, user: Address) -> None:
        sd = self.sd
        key = ("user_update", user)

        def _send(_attempt: int) -> None:
            self.send_udp(user, m.SERVICE_UPDATE, {"sd": sd}, update_related=True)

        def _give_up(_key: object) -> None:
            if self.config.enable_srn2:
                # SRN2: remember the inconsistent User; retry when it next renews.
                self.inconsistent_users.add(user)
            self.trace("user_update_failed", user=user, version=sd.version)

        self._retries.start(
            key,
            _send,
            timeout=self.config.ack_timeout,
            max_retries=self.config.srn1_retries if self.config.enable_srn1 else 0,
            on_give_up=_give_up,
        )

    def handle_user_update_ack(self, message: Message) -> None:
        version = message.payload.get("version", 0)
        self._retries.acknowledge(("user_update", message.sender))
        self.inconsistent_users.discard(message.sender)
        sub = self.subscriptions.get(
            message.sender, message.payload.get("service_id", self.service_id)
        )
        if sub is not None:
            sub.acked_version = max(sub.acked_version, version)

    def handle_subscribe_request(self, message: Message) -> None:
        if not self.two_party:
            # 3D/3C Managers delegate subscriptions to the Central.
            return
        service_id = message.payload.get("service_id", self.service_id)
        if service_id != self.service_id:
            return
        self.subscriptions.subscribe(
            message.sender,
            service_id,
            self.now,
            lease_duration=self.config.subscription_lease,
            acked_version=self.sd.version,
        )
        self.inconsistent_users.discard(message.sender)
        self.send_udp(
            message.sender,
            m.SUBSCRIBE_ACK,
            {"service_id": service_id, "sd": self.sd, "lease": self.config.subscription_lease},
            update_related=True,
        )

    def handle_subscription_renew(self, message: Message) -> None:
        if not self.two_party:
            return
        service_id = message.payload.get("service_id", self.service_id)
        held_version = message.payload.get("held_version", 0)
        sub = self.subscriptions.renew(message.sender, service_id, self.now)
        if sub is None:
            if self.config.enable_pr4:
                # PR4: the User was purged; ask it to resubscribe.
                self.send_udp(message.sender, m.RESUBSCRIBE_REQUEST, {"service_id": service_id})
            return
        sub.acked_version = max(sub.acked_version, held_version)
        self.send_udp(message.sender, m.SUBSCRIPTION_RENEW_ACK, {"service_id": service_id})
        needs_update = held_version < self.sd.version or message.sender in self.inconsistent_users
        if self.config.enable_srn2 and needs_update:
            # SRN2: the renewal proves the User is reachable again - retry the update.
            self._push_update_to_user(message.sender)

    # ------------------------------------------------------------------ queries
    def handle_multicast_query(self, message: Message) -> None:
        query = ServiceQuery(
            device_type=message.payload.get("device_type"),
            service_type=message.payload.get("service_type"),
            attributes=message.payload.get("attributes", {}) or {},
        )
        if query.matches(self.sd):
            self.send_udp(
                message.sender,
                m.SERVICE_QUERY_RESPONSE,
                {"sds": [self.sd], "from_registry": False},
                update_related=True,
            )

    def handle_service_query(self, message: Message) -> None:
        self.handle_multicast_query(message)
