"""FRODO protocol model.

FRODO (Section 3 of the paper) targets the home environment and is built
around two objectives:

* **Resource awareness** — devices are classified as 3C (Managers only),
  3D (Managers and limited Users) or 300D (Managers, Users, and Registry
  capable).  Resource-lean 3D/3C Managers delegate subscription handling to
  the Central (3-party subscription); 300D Managers handle their own
  subscribers (2-party subscription).
* **Robustness** — 300D nodes elect the most capable node as the *Central*
  (the Registry); a *Backup* stores configuration information and takes over
  automatically when the Central fails.  All unicast traffic uses UDP; the
  service-discovery layer implements its own acknowledgements and
  retransmissions for selected messages (SRN1/SRC1) plus SRN2, SRC2 and the
  purge-rediscovery techniques PR1, PR3, PR4 and PR5.
"""

from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode
from repro.protocols.frodo.device_classes import DeviceClass
from repro.protocols.frodo.central import FrodoCentral
from repro.protocols.frodo.manager import FrodoManager
from repro.protocols.frodo.user import FrodoUser
from repro.protocols.frodo.builder import FrodoDeployment, build_frodo

__all__ = [
    "FrodoConfig",
    "SubscriptionMode",
    "DeviceClass",
    "FrodoCentral",
    "FrodoManager",
    "FrodoUser",
    "FrodoDeployment",
    "build_frodo",
]
