"""The FRODO Central (Registry) and Backup.

The Central is the elected Registry of the FRODO system: the repository for
service descriptions, the relay for 3-party update notifications, and the
active monitor of the system (periodic announcements, purge scans,
resubscription requests).  A registry-capable node that loses the election
becomes a standby; the standby appointed as *Backup* receives configuration
synchronisation messages and takes over automatically when the Central's
announcements stop.

Recovery techniques implemented here:

* SRN1/SRC1 — update notifications to Users are acknowledged and retransmitted
  a bounded number of times.
* SRC2     — version numbers carried on registration renewals let the Central
  detect a missed Manager update and request it explicitly.
* PR1      — on every (re-)registration the Central notifies interested Users
  (existing registrations included, unlike Jini).
* PR3      — a subscription renewal from a purged User triggers an explicit
  resubscription request, whose response carries the updated service
  description.
* PR5      — when the Central purges a Manager it tells the subscribed Users,
  which then purge and rediscover the Manager themselves.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.cache import ServiceCache
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.retry import AckRetryScheduler
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.discovery.subscription import SubscriptionTable
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.protocols.frodo import messages as m
from repro.protocols.frodo.config import FrodoConfig
from repro.protocols.frodo.election import Candidate, ElectionState, compare_centrals
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class FrodoCentral(DiscoveryNode):
    """A 300D node's registry component: Central when elected, Backup otherwise."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: FrodoConfig,
        capability: int = 100,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.REGISTRY, transports)
        self.config = config.validate()
        self.capability = capability
        self.tracker = tracker

        self.active = False
        self.is_backup = False
        self.election = ElectionState(own=Candidate(capability=capability, node_id=node_id))
        self.known_central: Optional[Candidate] = None
        self.last_central_heard: float = 0.0

        #: Registered service descriptions (registration lease enforced).
        self.registrations = ServiceCache(default_lease=config.registration_lease)
        #: Manager address per registered service.
        self.manager_addrs: Dict[str, Address] = {}
        #: 3-party subscribers: pushed updates at change time, PR1, PR3.
        self.subscriptions = SubscriptionTable(default_lease=config.subscription_lease)
        #: 2-party interest registrations: PR1 notifications only.
        self.watchers = SubscriptionTable(default_lease=config.subscription_lease)

        self.backup_addr: Optional[Address] = None
        self._retries = AckRetryScheduler(sim)
        self._announce_timer = PeriodicTimer(sim, config.registry_announce_interval, self._announce)
        self._purge_timer = PeriodicTimer(sim, config.purge_scan_interval, self._purge_scan)
        self._takeover_timer = PeriodicTimer(
            sim, config.registry_announce_interval, self._check_takeover
        )

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        self.send_multicast(
            m.ELECTION_ANNOUNCE, {"node": self.node_id, "capability": self.capability}
        )
        self.after(self.config.election_window, self._conclude_election)

    def on_stop(self) -> None:
        self._announce_timer.stop()
        self._purge_timer.stop()
        self._takeover_timer.stop()
        self._retries.cancel_all()

    def _conclude_election(self) -> None:
        if self.election.i_win():
            self._become_active()
        else:
            self._become_standby()

    def _become_active(self) -> None:
        if self.active:
            return
        self.active = True
        self.known_central = self.election.own
        self.trace("became_central", capability=self.capability)
        self._takeover_timer.stop()
        self._announce()
        self._announce_timer.start()
        self._purge_timer.start()
        if self.config.enable_backup:
            runner_up = self.election.backup_candidate()
            if runner_up is not None:
                self.backup_addr = runner_up.node_id
                self.send_udp(self.backup_addr, m.BACKUP_APPOINT, {"central": self.node_id})
                self._sync_backup()

    def _become_standby(self) -> None:
        was_active = self.active
        self.active = False
        self._announce_timer.stop()
        self._purge_timer.stop()
        self._retries.cancel_all()
        if was_active:
            self.trace("stepped_down")
        self.last_central_heard = self.now
        self._takeover_timer.start()

    # ------------------------------------------------------------------ periodic duties
    def _announce(self) -> None:
        self.send_multicast(
            m.CENTRAL_ANNOUNCE,
            {"central": self.node_id, "capability": self.capability},
            copies=self.config.registry_announce_copies,
        )

    def _purge_scan(self) -> None:
        if not self.active:
            return
        now = self.now
        for service_id in self.registrations.purge_expired(now):
            self.trace("registration_purged", service_id=service_id)
            self.manager_addrs.pop(service_id, None)
            if self.config.enable_pr5:
                for sub in self.subscriptions.subscribers_for(service_id, now=now):
                    self.send_udp(sub.subscriber, m.MANAGER_PURGED, {"service_id": service_id})
        for sub in self.subscriptions.purge_expired(now):
            self.trace("subscription_purged", subscriber=sub.subscriber, service_id=sub.service_id)
            self._retries.cancel((sub.subscriber, sub.service_id))
        for watcher in self.watchers.purge_expired(now):
            self.trace(
                "watcher_purged", subscriber=watcher.subscriber, service_id=watcher.service_id
            )

    def _check_takeover(self) -> None:
        """Backup take-over: promote when the Central has been silent too long."""
        if self.active or not self.is_backup:
            return
        silence = self.now - self.last_central_heard
        if silence >= self.config.backup_takeover_timeout:
            self.trace("backup_takeover", silence=silence)
            self._become_active()

    def _sync_backup(self) -> None:
        """Send the configuration (registered services) to the Backup."""
        if not self.config.enable_backup or self.backup_addr is None:
            return
        snapshot = [
            (self.registrations.get_sd(service_id), self.manager_addrs.get(service_id))
            for service_id in self.registrations.service_ids()
        ]
        self.send_udp(
            self.backup_addr,
            m.BACKUP_SYNC,
            {"registrations": snapshot},
        )

    # ------------------------------------------------------------------ election / peer handling
    def handle_election_announce(self, message: Message) -> None:
        self.election.observe(message.payload["node"], message.payload["capability"])
        if self.active and not self.election.i_win():
            self._become_standby()

    def handle_central_announce(self, message: Message) -> None:
        candidate = Candidate(
            capability=message.payload.get("capability", 0),
            node_id=message.payload["central"],
        )
        self.election.observe(candidate.node_id, candidate.capability)
        self.known_central = compare_centrals(self.known_central, candidate)
        self.last_central_heard = self.now
        if self.active and candidate > self.election.own:
            self._become_standby()

    def handle_backup_appoint(self, message: Message) -> None:
        self.is_backup = True
        self.last_central_heard = self.now
        self.trace("appointed_backup", central=message.payload.get("central"))

    def handle_backup_sync(self, message: Message) -> None:
        for sd, manager_addr in message.payload.get("registrations", []):
            if sd is None:
                continue
            self.registrations.store(sd, self.now)
            if manager_addr is not None:
                self.manager_addrs[sd.service_id] = manager_addr

    def handle_node_announce(self, message: Message) -> None:
        if not self.active:
            return
        self.send_udp(
            message.sender,
            m.REGISTRY_HERE,
            {"central": self.node_id, "capability": self.capability},
        )

    # ------------------------------------------------------------------ registration handling
    def handle_registration(self, message: Message) -> None:
        if not self.active:
            return
        sd: ServiceDescription = message.payload["sd"]
        changed = self.registrations.store(
            sd, self.now, lease_duration=self.config.registration_lease
        )
        self.manager_addrs[sd.service_id] = message.sender
        self.send_udp(
            message.sender,
            m.REGISTRATION_ACK,
            {
                "service_id": sd.service_id,
                "version": sd.version,
                "lease": self.config.registration_lease,
            },
            update_related=True,
        )
        self.trace(
            "registration_stored", service_id=sd.service_id, version=sd.version, changed=changed
        )
        self._sync_backup()
        if self.config.enable_pr1:
            self._notify_interested(sd)

    def handle_registration_renew(self, message: Message) -> None:
        if not self.active:
            return
        service_id = message.payload["service_id"]
        version = message.payload.get("version", 0)
        entry = self.registrations.get(service_id)
        if entry is None:
            # The Manager's registration was purged (PR1): ask it to re-register.
            self.send_udp(message.sender, m.REREGISTER_REQUEST, {"service_id": service_id})
            return
        self.registrations.touch(service_id, self.now)
        self.manager_addrs[service_id] = message.sender
        self.send_udp(
            message.sender,
            m.REGISTRATION_RENEW_ACK,
            {"service_id": service_id, "version": entry.sd.version},
        )
        if self.config.enable_src2 and version > entry.sd.version:
            # SRC2: the renewal advertises a newer version than the repository
            # holds - the update notification was missed, so request it.
            self.send_udp(
                message.sender, m.UPDATE_REQUEST, {"service_id": service_id}, update_related=True
            )

    # ------------------------------------------------------------------ update propagation
    def handle_service_update(self, message: Message) -> None:
        if not self.active:
            return
        sd: ServiceDescription = message.payload["sd"]
        self.registrations.store(sd, self.now)
        self.manager_addrs[sd.service_id] = message.sender
        self.send_udp(
            message.sender,
            m.UPDATE_ACK,
            {"service_id": sd.service_id, "version": sd.version},
            update_related=True,
        )
        self.trace("update_stored", service_id=sd.service_id, version=sd.version)
        self._sync_backup()
        for sub in self.subscriptions.subscribers_for(sd.service_id, now=self.now):
            if sub.acked_version < sd.version:
                self._push_update(sub.subscriber, sd)

    def _notify_interested(self, sd: ServiceDescription) -> None:
        """PR1: push the (re-)registered SD to interested Users that lack it."""
        targets = []
        for table in (self.subscriptions, self.watchers):
            for sub in table.subscribers_for(sd.service_id, now=self.now):
                if sub.acked_version < sd.version:
                    targets.append(sub.subscriber)
        for user in dict.fromkeys(targets):
            self._push_update(user, sd)

    def _push_update(self, user: Address, sd: ServiceDescription) -> None:
        """Send an update notification with SRN1 acknowledgement/retransmission."""
        key = (user, sd.service_id)

        def _send(_attempt: int) -> None:
            self.send_udp(
                user,
                m.SERVICE_UPDATE,
                {"sd": sd, "from_registry": True},
                update_related=True,
            )

        if not self.config.enable_srn1:
            _send(0)
            return
        self._retries.start(
            key,
            _send,
            timeout=self.config.ack_timeout,
            max_retries=self.config.srn1_retries,
            on_give_up=lambda _key: self.trace(
                "update_retries_exhausted", user=user, service_id=sd.service_id
            ),
        )

    def handle_user_update_ack(self, message: Message) -> None:
        service_id = message.payload["service_id"]
        version = message.payload.get("version", 0)
        self._retries.acknowledge((message.sender, service_id))
        for table in (self.subscriptions, self.watchers):
            sub = table.get(message.sender, service_id)
            if sub is not None:
                sub.acked_version = max(sub.acked_version, version)

    def handle_update_request(self, message: Message) -> None:
        """SRC2: a User explicitly requests the current service description."""
        if not self.active:
            return
        service_id = message.payload["service_id"]
        sd = self.registrations.get_sd(service_id)
        if sd is None:
            return
        self.send_udp(
            message.sender, m.SERVICE_UPDATE, {"sd": sd, "from_registry": True}, update_related=True
        )

    # ------------------------------------------------------------------ subscriptions
    def handle_subscribe_request(self, message: Message) -> None:
        if not self.active:
            return
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        sd = self.registrations.get_sd(service_id)
        acked = sd.version if sd is not None else held_version
        self.subscriptions.subscribe(
            message.sender,
            service_id,
            self.now,
            lease_duration=self.config.subscription_lease,
            acked_version=acked,
        )
        self.send_udp(
            message.sender,
            m.SUBSCRIBE_ACK,
            {"service_id": service_id, "sd": sd, "lease": self.config.subscription_lease},
            update_related=True,
        )

    def handle_subscription_renew(self, message: Message) -> None:
        if not self.active:
            return
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        sub = self.subscriptions.renew(message.sender, service_id, self.now)
        if sub is None:
            if self.config.enable_pr3:
                # PR3: the User was purged; request an explicit resubscription.
                self.send_udp(message.sender, m.RESUBSCRIBE_REQUEST, {"service_id": service_id})
            return
        sub.acked_version = max(sub.acked_version, held_version)
        entry = self.registrations.get(service_id)
        current_version = entry.sd.version if entry is not None else 0
        payload = {"service_id": service_id}
        if self.config.enable_src2:
            payload["current_version"] = current_version
        self.send_udp(message.sender, m.SUBSCRIPTION_RENEW_ACK, payload)

    def handle_interest_request(self, message: Message) -> None:
        if not self.active:
            return
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        self.watchers.subscribe(
            message.sender,
            service_id,
            self.now,
            lease_duration=self.config.subscription_lease,
            acked_version=held_version,
        )

    def handle_interest_renew(self, message: Message) -> None:
        if not self.active:
            return
        service_id = message.payload["service_id"]
        held_version = message.payload.get("held_version", 0)
        watcher = self.watchers.renew(message.sender, service_id, self.now)
        if watcher is None:
            # Re-create the interest silently; the next PR1 event will refresh the User.
            self.watchers.subscribe(
                message.sender,
                service_id,
                self.now,
                lease_duration=self.config.subscription_lease,
                acked_version=held_version,
            )
        else:
            watcher.acked_version = max(watcher.acked_version, held_version)

    # ------------------------------------------------------------------ queries
    def handle_service_query(self, message: Message) -> None:
        if not self.active:
            return
        query = self._query_from_payload(message.payload)
        matches = self.registrations.find(query, now=self.now)
        self.send_udp(
            message.sender,
            m.SERVICE_QUERY_RESPONSE,
            {"sds": matches, "from_registry": True},
            update_related=True,
        )

    def handle_multicast_query(self, message: Message) -> None:
        if not self.active:
            return
        query = self._query_from_payload(message.payload)
        matches = self.registrations.find(query, now=self.now)
        if matches:
            self.send_udp(
                message.sender,
                m.SERVICE_QUERY_RESPONSE,
                {"sds": matches, "from_registry": True},
                update_related=True,
            )

    @staticmethod
    def _query_from_payload(payload: Dict[str, object]) -> ServiceQuery:
        return ServiceQuery(
            device_type=payload.get("device_type"),
            service_type=payload.get("service_type"),
            attributes=payload.get("attributes", {}) or {},
        )
