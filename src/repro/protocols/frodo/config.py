"""FRODO model parameters.

Defaults follow Section 5 of the paper (Steps 4 and 5) and Table 4:
1800 s registration and subscription leases, Registry announcements of 2
multicast messages every 1200 s, UDP-only transport with acknowledgements and
retransmissions for selected messages only, and the full set of FRODO
recovery techniques, each individually toggleable for the ablation studies
(Figure 7 toggles PR1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SubscriptionMode(str, Enum):
    """Which subscription scheme the deployment uses."""

    #: 3D/3C Manager: Users subscribe at the Central, which relays updates.
    THREE_PARTY = "3party"
    #: 300D Manager: Users subscribe directly at the Manager.
    TWO_PARTY = "2party"


@dataclass
class FrodoConfig:
    """All tunable parameters of the FRODO model."""

    subscription_mode: SubscriptionMode = SubscriptionMode.THREE_PARTY

    # ------------------------------------------------------------------ leases
    #: Registration lease at the Central (seconds).
    registration_lease: float = 1800.0
    #: Subscription lease at the Central / 300D Manager (seconds).
    subscription_lease: float = 1800.0
    #: Lessees renew after this fraction of the lease has elapsed.
    renewal_fraction: float = 0.5

    # ------------------------------------------------------------------ announcements
    #: Period of the Central's multicast announcements (seconds).
    registry_announce_interval: float = 1200.0
    #: Number of copies per Central announcement ("2 multicast announcements every 1200 s").
    registry_announce_copies: int = 2
    #: Period of node presence announcements while the Central is unknown (seconds).
    node_announce_interval: float = 30.0

    # ------------------------------------------------------------------ SRN1 / SRC1
    #: Acknowledgement time-out for acknowledged messages (seconds).
    ack_timeout: float = 2.0
    #: Retransmission limit for non-critical update notifications (SRN1).
    srn1_retries: int = 3
    #: Retransmission limit for registrations.
    registration_retries: int = 4

    # ------------------------------------------------------------------ recovery technique toggles
    enable_srn1: bool = True
    #: SRN2: the 300D Manager retries an unsuccessful update when it receives a
    #: subscription renewal from an inconsistent User (2-party only).
    enable_srn2: bool = True
    #: SRC2: the Central monitors version numbers carried on registration
    #: renewals and requests missed updates from the Manager; 3-party Users
    #: monitor the version piggy-backed on subscription renewal acknowledgements.
    enable_src2: bool = True
    #: PR1: on (re-)registration the Central notifies interested Users
    #: (existing registrations included, unlike Jini).
    enable_pr1: bool = True
    #: PR3: the Central asks a purged User that renews to resubscribe.
    enable_pr3: bool = True
    #: PR4: the 300D Manager asks a purged User that renews to resubscribe.
    enable_pr4: bool = True
    #: PR5: the User purges the Manager and rediscovers it via the Registry
    #: (unicast query) or multicast queries.
    enable_pr5: bool = True

    # ------------------------------------------------------------------ purge / rediscovery pacing
    #: Period of the Central's purge scan (seconds).
    purge_scan_interval: float = 60.0
    #: How long a User waits for the Registry before falling back to a multicast query (PR5).
    pr5_registry_timeout: float = 10.0
    #: Period of a User's rediscovery attempts while it has no service (seconds).
    rediscovery_interval: float = 120.0
    #: Delay before an unanswered service query is retried during initial discovery.
    query_retry_interval: float = 10.0

    # ------------------------------------------------------------------ Central / Backup
    #: Whether a Backup node is deployed (2-party topology of Table 4).
    enable_backup: bool = True
    #: Duration of the start-up leader election window (seconds).
    election_window: float = 5.0
    #: The Backup takes over after this many missed announcement periods.
    backup_takeover_periods: float = 2.5

    # ------------------------------------------------------------------ misc
    #: Default lease used by User-side service caches (seconds).
    service_cache_lease: float = 1800.0

    @property
    def renewal_interval(self) -> float:
        """Interval between lease renewals (``renewal_fraction * lease``)."""
        return self.renewal_fraction * self.subscription_lease

    @property
    def backup_takeover_timeout(self) -> float:
        """Silence (in seconds) after which the Backup promotes itself."""
        return self.backup_takeover_periods * self.registry_announce_interval

    def validate(self) -> "FrodoConfig":
        """Raise :class:`ValueError` on inconsistent parameter combinations."""
        if not 0.0 < self.renewal_fraction < 1.0:
            raise ValueError("renewal_fraction must be in (0, 1)")
        if self.registration_lease <= 0 or self.subscription_lease <= 0:
            raise ValueError("leases must be positive")
        if self.srn1_retries < 0 or self.registration_retries < 0:
            raise ValueError("retry limits must be non-negative")
        if self.registry_announce_copies < 1:
            raise ValueError("registry_announce_copies must be >= 1")
        return self
