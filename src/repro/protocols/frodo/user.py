"""FRODO Users.

A User discovers the Central (by announcing its presence and by listening to
Central announcements), queries it for the service it needs, caches the
service description, and subscribes for updates — at the Central (3-party,
for 3D/3C Managers) or directly at the Manager (2-party, for 300D Managers).

Recovery behaviour implemented here:

* SRN1/SRC1 — update notifications are acknowledged (the sender retransmits).
* SRC2      — the version piggy-backed on subscription renewal
  acknowledgements lets a 3-party User detect a missed update and request it.
* PR3/PR4   — the User resubscribes when the Central/Manager asks it to.
* PR5       — when the subscription relationship collapses (no contact for a
  full lease period) or the Central reports the Manager purged, the User
  purges the cached service and rediscovers it: unicast query to the Central
  first, multicast query as a fall-back, repeated periodically until the
  service is found again.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.cache import ServiceCache
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.retry import AckRetryScheduler
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.protocols.frodo import messages as m
from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode
from repro.sim.engine import Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer


class FrodoUser(DiscoveryNode):
    """A FRODO User looking for one service."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: FrodoConfig,
        query: ServiceQuery,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.USER, transports)
        self.config = config.validate()
        self.query = query
        self.tracker = tracker

        self.central: Optional[Address] = None
        self.manager_addr: Optional[Address] = None
        self.service_id: Optional[str] = None
        self.cache = ServiceCache(default_lease=config.service_cache_lease)

        self.subscribed = False
        self.lessor: Optional[Address] = None
        self.last_lessor_contact: float = 0.0

        self._retries = AckRetryScheduler(sim)
        self._announce_timer = PeriodicTimer(
            sim, config.node_announce_interval, self._announce_presence
        )
        self._renew_timer = PeriodicTimer(sim, config.renewal_interval, self._renew_tick)
        self._rediscovery_timer = PeriodicTimer(
            sim, config.rediscovery_interval, self._rediscovery_tick
        )
        self._query_retry = OneShotTimer(sim, self._query_central)
        self._pr5_fallback = OneShotTimer(sim, self._multicast_query)

    # ------------------------------------------------------------------ properties
    @property
    def two_party(self) -> bool:
        """``True`` when this User subscribes directly at the Manager."""
        return self.config.subscription_mode is SubscriptionMode.TWO_PARTY

    @property
    def held_version(self) -> int:
        """The version of the service description this User currently holds."""
        if self.service_id is None:
            return 0
        entry = self.cache.get(self.service_id)
        return entry.sd.version if entry is not None else 0

    @property
    def has_service(self) -> bool:
        """``True`` when a service description is cached."""
        return self.service_id is not None and self.cache.get(self.service_id) is not None

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        self._announce_presence()
        self._announce_timer.start()
        self._renew_timer.start()

    def on_stop(self) -> None:
        for timer in (self._announce_timer, self._renew_timer, self._rediscovery_timer):
            timer.stop()
        self._query_retry.cancel()
        self._pr5_fallback.cancel()
        self._retries.cancel_all()

    # ------------------------------------------------------------------ Central discovery
    def _announce_presence(self) -> None:
        if self.central is not None:
            self._announce_timer.stop()
            return
        self.send_multicast(m.NODE_ANNOUNCE, {"node": self.node_id, "role": "user"})

    def _learn_central(self, central: Address) -> None:
        previous = self.central
        self.central = central
        self._announce_timer.stop()
        if not self.has_service:
            self._query_central()
        elif not self.two_party and self.subscribed and self.lessor != central:
            # A new Central (e.g. the Backup took over): transfer the subscription.
            self._subscribe()
        elif not self.subscribed:
            self._subscribe()
        if previous is None and not self.has_service:
            self._query_retry.start(self.config.query_retry_interval)

    def handle_central_announce(self, message: Message) -> None:
        self._learn_central(message.payload["central"])

    def handle_registry_here(self, message: Message) -> None:
        self._learn_central(message.payload["central"])

    # ------------------------------------------------------------------ querying
    def _query_central(self) -> None:
        if self.central is None:
            return
        self.send_udp(
            self.central,
            m.SERVICE_QUERY,
            {
                "device_type": self.query.device_type,
                "service_type": self.query.service_type,
                "attributes": dict(self.query.attributes),
            },
            update_related=True,
        )

    def _multicast_query(self) -> None:
        if self.has_service:
            return
        self.send_multicast(
            m.MULTICAST_QUERY,
            {
                "device_type": self.query.device_type,
                "service_type": self.query.service_type,
                "attributes": dict(self.query.attributes),
            },
            update_related=True,
        )

    def handle_service_query_response(self, message: Message) -> None:
        matches = [
            sd for sd in message.payload.get("sds", []) if sd is not None and self.query.matches(sd)
        ]
        if not matches:
            if not self.has_service:
                self._query_retry.start(self.config.query_retry_interval)
            return
        self._adopt_sd(matches[0])

    # ------------------------------------------------------------------ adopting a service description
    def _adopt_sd(self, sd: ServiceDescription) -> None:
        self.service_id = sd.service_id
        self.manager_addr = sd.manager_id
        self.cache.store(sd, self.now, lease_duration=self.config.service_cache_lease)
        if self.tracker is not None:
            self.tracker.record_view(self.node_id, sd.version, self.now)
        self._rediscovery_timer.stop()
        self._pr5_fallback.cancel()
        self._query_retry.cancel()
        if not self.subscribed:
            self._subscribe()

    # ------------------------------------------------------------------ subscribing
    def _lessor_address(self) -> Optional[Address]:
        return self.manager_addr if self.two_party else self.central

    def _subscribe(self) -> None:
        lessor = self._lessor_address()
        if lessor is None or self.service_id is None:
            return
        service_id = self.service_id
        self.lessor = lessor

        def _send(_attempt: int) -> None:
            self.send_udp(
                lessor,
                m.SUBSCRIBE_REQUEST,
                {"service_id": service_id, "held_version": self.held_version},
            )

        self._retries.start(
            ("subscribe", lessor),
            _send,
            timeout=self.config.ack_timeout,
            max_retries=self.config.srn1_retries,
            on_give_up=lambda _key: self.trace("subscribe_failed", lessor=lessor),
        )
        if self.two_party and self.central is not None:
            # PR1 interest registration at the Central (notification of
            # future/existing registrations of this service).
            self.send_udp(
                self.central,
                m.INTEREST_REQUEST,
                {"service_id": service_id, "held_version": self.held_version},
            )

    def handle_subscribe_ack(self, message: Message) -> None:
        self._retries.acknowledge(("subscribe", message.sender))
        self.subscribed = True
        self.lessor = message.sender
        self.last_lessor_contact = self.now
        sd = message.payload.get("sd")
        if sd is not None and self.query.matches(sd):
            self._adopt_sd(sd)

    def handle_resubscribe_request(self, message: Message) -> None:
        # PR3 (from the Central) / PR4 (from a 300D Manager).
        self.subscribed = False
        if self.two_party and message.sender == self.manager_addr:
            self.lessor = message.sender
        self._subscribe()

    # ------------------------------------------------------------------ renewals and the PR5 watchdog
    def _renew_tick(self) -> None:
        now = self.now
        if self.subscribed and self.lessor is not None and self.service_id is not None:
            self.send_udp(
                self.lessor,
                m.SUBSCRIPTION_RENEW,
                {"service_id": self.service_id, "held_version": self.held_version},
            )
            if self.two_party and self.central is not None:
                self.send_udp(
                    self.central,
                    m.INTEREST_RENEW,
                    {"service_id": self.service_id, "held_version": self.held_version},
                )
        if (
            self.subscribed
            and now - self.last_lessor_contact > self.config.subscription_lease
        ):
            # The lessor has been silent for a whole lease period: the
            # subscription relationship has collapsed.
            self._purge_and_rediscover(reason="lessor_silent")
        elif not self.subscribed and self.has_service:
            # We hold a service but have no live subscription; keep trying.
            self._subscribe()
        elif (
            not self.has_service
            and not self._rediscovery_timer.running
            and self.service_id is not None
        ):
            self._start_rediscovery()

    def handle_subscription_renew_ack(self, message: Message) -> None:
        self.last_lessor_contact = self.now
        if self.service_id is not None:
            self.cache.touch(self.service_id, self.now)
        current_version = message.payload.get("current_version")
        if (
            self.config.enable_src2
            and current_version is not None
            and current_version > self.held_version
            and self.central is not None
            and self.service_id is not None
        ):
            # SRC2: the Registry holds a newer version than we do - request it.
            self.send_udp(
                self.central,
                m.UPDATE_REQUEST,
                {"service_id": self.service_id},
                update_related=True,
            )

    # ------------------------------------------------------------------ update notifications
    def handle_service_update(self, message: Message) -> None:
        sd: ServiceDescription = message.payload["sd"]
        if not self.query.matches(sd):
            return
        self._adopt_sd(sd)
        self.send_udp(
            message.sender,
            m.USER_UPDATE_ACK,
            {"service_id": sd.service_id, "version": sd.version},
        )
        if message.sender == self.lessor:
            self.last_lessor_contact = self.now

    def handle_manager_purged(self, message: Message) -> None:
        if message.payload.get("service_id") != self.service_id:
            return
        self._purge_and_rediscover(reason="registry_purged_manager")

    # ------------------------------------------------------------------ PR5: purge and rediscover
    def _purge_and_rediscover(self, reason: str) -> None:
        self.trace("purge_manager", reason=reason)
        if self.service_id is not None:
            self.cache.remove(self.service_id)
        self.subscribed = False
        self.lessor = None
        if not self.config.enable_pr5:
            return
        self._start_rediscovery()

    def _start_rediscovery(self) -> None:
        self._rediscovery_tick()
        if not self._rediscovery_timer.running:
            self._rediscovery_timer.start()

    def _rediscovery_tick(self) -> None:
        if self.has_service and self.subscribed:
            self._rediscovery_timer.stop()
            return
        if self.central is not None:
            # PR5: unicast query to the Registry first ...
            self._query_central()
            # ... and fall back to a multicast query if it stays silent.
            self._pr5_fallback.start(self.config.pr5_registry_timeout)
        else:
            self.send_multicast(m.NODE_ANNOUNCE, {"node": self.node_id, "role": "user"})
            self._multicast_query()
