"""FRODO message kinds.

Central place for the wire vocabulary of the FRODO model, together with the
accounting flags used by the efficiency metrics.  A message kind is
*update-related* when it either carries a service description after the
change or is an explicit request for one (queries, update requests) or an
acknowledgement on the Manager <-> Central leg of the update handshake; see
EXPERIMENTS.md for the full accounting rules and how they calibrate to
Table 2's ``N + 2`` count.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.protocols.accounting import register_update_related_kinds

PROTOCOL = "frodo"

# ------------------------------------------------------------------ announcements / discovery
CENTRAL_ANNOUNCE = "central_announce"
NODE_ANNOUNCE = "node_announce"
REGISTRY_HERE = "registry_here"
ELECTION_ANNOUNCE = "election_announce"

# ------------------------------------------------------------------ registration (Manager <-> Central)
REGISTRATION = "registration"
REGISTRATION_ACK = "registration_ack"
REGISTRATION_RENEW = "registration_renew"
REGISTRATION_RENEW_ACK = "registration_renew_ack"
REREGISTER_REQUEST = "reregister_request"

# ------------------------------------------------------------------ update propagation
SERVICE_UPDATE = "service_update"
UPDATE_ACK = "update_ack"            # Central -> Manager acknowledgement of an update
USER_UPDATE_ACK = "user_update_ack"  # User -> Central/Manager acknowledgement of an update
UPDATE_REQUEST = "update_request"    # explicit request for a missed update (SRC2)

# ------------------------------------------------------------------ subscriptions
SUBSCRIBE_REQUEST = "subscribe_request"
SUBSCRIBE_ACK = "subscribe_ack"
SUBSCRIPTION_RENEW = "subscription_renew"
SUBSCRIPTION_RENEW_ACK = "subscription_renew_ack"
RESUBSCRIBE_REQUEST = "resubscribe_request"
INTEREST_REQUEST = "interest_request"
INTEREST_RENEW = "interest_renew"

# ------------------------------------------------------------------ queries / purge notifications
SERVICE_QUERY = "service_query"
SERVICE_QUERY_RESPONSE = "service_query_response"
MULTICAST_QUERY = "multicast_query"
MANAGER_PURGED = "manager_purged"

# ------------------------------------------------------------------ Central / Backup coordination
BACKUP_APPOINT = "backup_appoint"
BACKUP_SYNC = "backup_sync"

#: Message kinds counted towards *y* in the efficiency metrics.
UPDATE_RELATED_KINDS: FrozenSet[str] = frozenset(
    {
        REGISTRATION,
        REGISTRATION_ACK,
        SERVICE_UPDATE,
        UPDATE_ACK,
        UPDATE_REQUEST,
        SUBSCRIBE_ACK,
        SERVICE_QUERY,
        SERVICE_QUERY_RESPONSE,
        MULTICAST_QUERY,
    }
)


register_update_related_kinds(PROTOCOL, UPDATE_RELATED_KINDS)
