"""FRODO device classification (Section 3 of the paper).

* **3C (Cent)** — simple devices with restricted resources (e.g. sensors);
  Managers only.
* **3D (Dollar)** — medium-complexity devices; Managers and limited Users.
* **300D (Dollar)** — powerful devices; Managers, Users and Registry capable
  (eligible for Central election).
"""

from __future__ import annotations

from enum import Enum


class DeviceClass(str, Enum):
    """The three FRODO device classes."""

    CENT_3C = "3C"
    DOLLAR_3D = "3D"
    DOLLAR_300D = "300D"

    @property
    def can_be_user(self) -> bool:
        """3D and 300D nodes can act as Users."""
        return self in (DeviceClass.DOLLAR_3D, DeviceClass.DOLLAR_300D)

    @property
    def can_be_manager(self) -> bool:
        """Every device class can act as a Manager."""
        return True

    @property
    def can_be_registry(self) -> bool:
        """Only 300D nodes can be elected Central (Registry)."""
        return self is DeviceClass.DOLLAR_300D

    @property
    def uses_two_party_subscription(self) -> bool:
        """300D Managers handle their own subscribers (2-party subscription)."""
        return self is DeviceClass.DOLLAR_300D


def subscription_mode_for_manager(device_class: DeviceClass) -> str:
    """Which subscription scheme Users must use with a Manager of this class."""
    return "2party" if device_class.uses_two_party_subscription else "3party"
