"""FRODO topology builders (Table 4).

Two standard topologies are modelled:

* **3-party subscription** — one 300D node acting as the Registry (Central),
  one 3D Manager and five 3D Users.
* **2-party subscription** — one 300D Registry, one 300D Manager, five 300D
  Users and one 300D Backup.

Both use UDP for unicast and single-copy multicast (except the Registry
announcements, which are transmitted twice per period).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.multicast import FRODO_MULTICAST_COPIES, MulticastService
from repro.net.network import Network
from repro.net.udp import UdpTransport
from repro.protocols.base import ProtocolDeployment
from repro.protocols.frodo.central import FrodoCentral
from repro.protocols.frodo.config import FrodoConfig, SubscriptionMode
from repro.protocols.frodo.device_classes import DeviceClass
from repro.protocols.frodo.manager import FrodoManager
from repro.protocols.frodo.user import FrodoUser
from repro.sim.engine import Simulator


#: The printing service used throughout the paper as the running example.
def default_service(manager_id: str) -> ServiceDescription:
    """The paper's example service description (a colour printer)."""
    return ServiceDescription(
        service_id="printer-service",
        manager_id=manager_id,
        device_type="Printer",
        service_type="ColorPrinter",
        attributes={"PaperSize": "A4", "Location": "Study"},
        version=1,
    )


def default_query() -> ServiceQuery:
    """The Users' requirement: any printer."""
    return ServiceQuery(device_type="Printer")


class FrodoDeployment(ProtocolDeployment):
    """A FRODO topology ready to simulate."""

    #: Table 2: N + 2 update messages; the class default documents N = 5, the
    #: builder sets the instance value for the actual topology size.
    m_prime = 7

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        config: FrodoConfig,
    ) -> None:
        super().__init__(sim, network, tracker)
        self.config = config
        self.system = (
            "frodo2" if config.subscription_mode is SubscriptionMode.TWO_PARTY else "frodo3"
        )

    def trigger_service_change(
        self, attributes: Optional[Dict[str, object]] = None
    ) -> ServiceDescription:
        manager: FrodoManager = self.primary_manager  # type: ignore[assignment]
        return manager.change_service(attributes=attributes)


def build_frodo(
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    config: Optional[FrodoConfig] = None,
    n_users: int = 5,
) -> FrodoDeployment:
    """Instantiate the FRODO topology for the requested subscription mode."""
    config = (config if config is not None else FrodoConfig()).validate()
    deployment = FrodoDeployment(sim, network, tracker, config)
    deployment.m_prime = n_users + 2
    two_party = config.subscription_mode is SubscriptionMode.TWO_PARTY

    transports = Transports(
        udp=UdpTransport(network),
        tcp=None,
        multicast=MulticastService(network, redundancy=FRODO_MULTICAST_COPIES),
    )

    # ------------------------------------------------------------------ Registry / Backup
    central = FrodoCentral(
        sim,
        network,
        "frodo-registry",
        transports,
        config,
        capability=100,
        tracker=tracker,
    )
    deployment.registries.append(central)

    if two_party and config.enable_backup:
        backup = FrodoCentral(
            sim,
            network,
            "frodo-backup",
            transports,
            config,
            capability=90,
            tracker=tracker,
        )
        deployment.other_nodes.append(backup)

    # ------------------------------------------------------------------ Manager
    manager_class = DeviceClass.DOLLAR_300D if two_party else DeviceClass.DOLLAR_3D
    manager_id = "frodo-manager"
    manager = FrodoManager(
        sim,
        network,
        manager_id,
        transports,
        config,
        sd=default_service(manager_id),
        device_class=manager_class,
        tracker=tracker,
    )
    deployment.managers.append(manager)

    # ------------------------------------------------------------------ Users
    for index in range(n_users):
        user = FrodoUser(
            sim,
            network,
            f"frodo-user-{index + 1}",
            transports,
            config,
            query=default_query(),
            tracker=tracker,
        )
        tracker.register_user(user.node_id)
        deployment.users.append(user)

    return deployment
