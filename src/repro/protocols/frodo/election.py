"""Central (Registry) election among 300D nodes.

The paper (Section 3): "the 300D nodes elect the most powerful node as the
Registry.  We call the Registry the Central ...  A Backup is appointed by the
Central to store configuration information.  The Backup takes over
automatically in case of Central failure."

The election here is capability based: every registry-capable node announces
its capability during a short election window; at the end of the window the
node that heard no higher capability (ties broken by node id) declares itself
Central and announces.  The same comparison rule resolves conflicts later on:
a Central that hears an announcement from a more capable Central steps down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True, order=True)
class Candidate:
    """An election candidate, ordered by (capability, node id)."""

    capability: int
    node_id: str


@dataclass
class ElectionState:
    """Book-keeping for one node's view of the election."""

    own: Candidate
    #: Candidates heard so far (including self).
    heard: Dict[str, Candidate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.heard[self.own.node_id] = self.own

    def observe(self, node_id: str, capability: int) -> None:
        """Record a candidate announcement."""
        self.heard[node_id] = Candidate(capability=capability, node_id=node_id)

    def best(self) -> Candidate:
        """The winning candidate among everything heard so far."""
        return max(self.heard.values())

    def i_win(self) -> bool:
        """``True`` when this node is the current winner."""
        return self.best() == self.own

    def ranking(self) -> Tuple[Candidate, ...]:
        """All candidates, best first."""
        return tuple(sorted(self.heard.values(), reverse=True))

    def backup_candidate(self) -> Optional[Candidate]:
        """The runner-up (the node the Central appoints as Backup), if any."""
        ranking = self.ranking()
        return ranking[1] if len(ranking) > 1 else None


def compare_centrals(current: Optional[Candidate], challenger: Candidate) -> Candidate:
    """Return whichever of two claimed Centrals should win (highest capability, then id)."""
    if current is None:
        return challenger
    return max(current, challenger)
