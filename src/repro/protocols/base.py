"""Deployment interface shared by all protocol models.

A *deployment* is the set of nodes of one system instantiated on one network
(the topology of Table 4), plus the operations the experiment scenario needs:
start everything, trigger the service change, and enumerate the node ids for
failure injection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import DiscoveryNode
from repro.discovery.service import ServiceDescription


class ProtocolDeployment:
    """A concrete topology of one protocol ready to be simulated."""

    #: Registry key of the system ("upnp", "jini1", "jini2", "frodo3", "frodo2").
    system: str = "generic"
    #: The system's own zero-failure update message count (m' in the paper).
    m_prime: int = 7

    def __init__(self, tracker: ConsistencyTracker) -> None:
        self.tracker = tracker
        self.users: List[DiscoveryNode] = []
        self.managers: List[DiscoveryNode] = []
        self.registries: List[DiscoveryNode] = []
        self.other_nodes: List[DiscoveryNode] = []

    # ------------------------------------------------------------------ topology
    @property
    def all_nodes(self) -> List[DiscoveryNode]:
        """Every node of the deployment."""
        return [*self.registries, *self.managers, *self.users, *self.other_nodes]

    def node_ids(self) -> List[str]:
        """Identifiers of every node (the population for failure injection)."""
        return [node.node_id for node in self.all_nodes]

    @property
    def primary_manager(self) -> DiscoveryNode:
        """The Manager whose service changes in the experiment."""
        if not self.managers:
            raise RuntimeError("deployment has no manager")
        return self.managers[0]

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start every node (registries first, then managers, then users)."""
        for node in self.all_nodes:
            node.start()

    def stop(self) -> None:
        """Stop every node."""
        for node in self.all_nodes:
            node.stop()

    # ------------------------------------------------------------------ scenario hooks
    def trigger_service_change(
        self, attributes: Optional[Dict[str, object]] = None
    ) -> ServiceDescription:
        """Change the primary Manager's service description (the paper's update event).

        Concrete deployments forward this to their Manager implementation and
        return the new authoritative service description.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary of the topology."""
        return (
            f"{self.system}: {len(self.registries)} registr{'y' if len(self.registries) == 1 else 'ies'}, "
            f"{len(self.managers)} manager(s), {len(self.users)} user(s)"
            + (f", {len(self.other_nodes)} other node(s)" if self.other_nodes else "")
        )
