"""Deployment interface shared by all protocol models.

A *deployment* is the set of nodes of one system instantiated on one network
(the topology of Table 4), plus the operations the experiment scenario needs:
start everything, trigger the service change, enumerate the node ids for
failure injection, and collect the per-run message statistics the Update
Metrics are computed from.

Concrete deployments are constructed through
:mod:`repro.protocols.registry`, never by hard-coding a builder; the
:class:`~repro.experiments.runner.ExperimentRunner` drives every deployment
exclusively through this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import DiscoveryNode
from repro.discovery.service import ServiceDescription
from repro.net.messages import MessageLayer
from repro.net.network import Network
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DeploymentRunStats:
    """Per-run message accounting extracted from :class:`~repro.net.stats.MessageStats`.

    ``update_message_count`` is *y* in the Update Efficiency / Efficiency
    Degradation metrics: update-related discovery-layer messages sent at or
    after the service-change time (see EXPERIMENTS.md for the accounting
    rules).
    """

    update_message_count: int
    total_discovery_messages: int
    transport_message_count: int
    update_counts_by_kind: Dict[str, int] = field(default_factory=dict)


class ProtocolDeployment:
    """A concrete topology of one protocol ready to be simulated."""

    #: Registry key of the system ("upnp", "jini1", "jini2", "frodo3", "frodo2").
    system: str = "generic"
    #: The system's own zero-failure update message count (m' in the paper).
    m_prime: int = 7

    def __init__(self, sim: Simulator, network: Network, tracker: ConsistencyTracker) -> None:
        self.sim = sim
        self.network = network
        self.tracker = tracker
        self.users: List[DiscoveryNode] = []
        self.managers: List[DiscoveryNode] = []
        self.registries: List[DiscoveryNode] = []
        self.other_nodes: List[DiscoveryNode] = []

    # ------------------------------------------------------------------ topology
    @property
    def all_nodes(self) -> List[DiscoveryNode]:
        """Every node of the deployment."""
        return [*self.registries, *self.managers, *self.users, *self.other_nodes]

    def node_ids(self) -> List[str]:
        """Identifiers of every node (the population for failure injection)."""
        return [node.node_id for node in self.all_nodes]

    @property
    def primary_manager(self) -> DiscoveryNode:
        """The Manager whose service changes in the experiment."""
        if not self.managers:
            raise RuntimeError("deployment has no manager")
        return self.managers[0]

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start every node (registries first, then managers, then users)."""
        for node in self.all_nodes:
            node.start()

    def stop(self) -> None:
        """Stop every node."""
        for node in self.all_nodes:
            node.stop()

    # ------------------------------------------------------------------ scenario hooks
    def trigger_service_change(
        self, attributes: Optional[Dict[str, object]] = None
    ) -> ServiceDescription:
        """Change the primary Manager's service description (the paper's update event).

        Concrete deployments forward this to their Manager implementation and
        return the new authoritative service description.
        """
        raise NotImplementedError

    def collect_run_stats(self, change_time: float) -> DeploymentRunStats:
        """Extract the per-run message accounting after the run finished.

        Subclasses may override this when their accounting deviates from the
        default (e.g. UPnP/Jini over TCP, where transport overhead is excluded
        from Table 2 counts but still reported separately).
        """
        stats = self.network.stats
        return DeploymentRunStats(
            update_message_count=stats.update_messages(since=change_time),
            total_discovery_messages=stats.total_sent(layer=MessageLayer.DISCOVERY),
            transport_message_count=stats.transport_overhead(),
            update_counts_by_kind={
                kind: count
                for kind, count in sorted(
                    stats.counts_by_kind(
                        layer=MessageLayer.DISCOVERY, since=change_time, update_related=True
                    ).items()
                )
            },
        )

    def extra_details(self, change_time: float) -> Dict[str, object]:
        """Deployment-specific additions to the per-run ``details`` dict.

        Called by the runner after :meth:`collect_run_stats`; the returned
        mapping is merged into :attr:`~repro.experiments.runner.RunResult.details`.
        The default contributes nothing, so legacy output is unchanged —
        federated deployments use this to report cross-registry consistency
        metrics.
        """
        return {}

    def describe(self) -> str:
        """One-line summary of the topology."""
        return (
            f"{self.system}: {len(self.registries)} registr{'y' if len(self.registries) == 1 else 'ies'}, "
            f"{len(self.managers)} manager(s), {len(self.users)} user(s)"
            + (f", {len(self.other_nodes)} other node(s)" if self.other_nodes else "")
        )
