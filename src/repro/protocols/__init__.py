"""Protocol models.

One subpackage per modelled system:

* :mod:`repro.protocols.frodo` — the paper's own protocol (registry names
  ``frodo2``/``frodo3``: 2-party and 3-party subscription, UDP-only,
  Central/Backup, SRN1/SRN2/SRC1/SRC2, PR1/PR3/PR4/PR5),
* :mod:`repro.protocols.jini` — Jini with one or two Lookup Services
  (``jini1``/``jini2``: 3-party remote events over TCP, PR1/PR2/PR3, SRC2),
* :mod:`repro.protocols.upnp` — UPnP (``upnp``: 2-party GENA eventing over
  TCP, invalidation-based notification, PR4/PR5).

:mod:`repro.protocols.base` defines the :class:`~repro.protocols.base.ProtocolDeployment`
interface the experiment harness drives, :mod:`repro.protocols.registry` maps
the system names above to their builders, and
:mod:`repro.protocols.accounting` holds each protocol's declaration of which
message kinds are update-related for the efficiency metrics.
"""

from repro.protocols.base import ProtocolDeployment
from repro.protocols.registry import SYSTEMS, build_system, system_names

__all__ = ["ProtocolDeployment", "SYSTEMS", "build_system", "system_names"]
