"""Protocol models.

One subpackage per modelled system:

* :mod:`repro.protocols.frodo` — the paper's own protocol (2-party and
  3-party subscription, UDP-only, Central/Backup, SRN1/SRN2/SRC1/SRC2,
  PR1/PR3/PR4/PR5),
* :mod:`repro.protocols.jini` — Jini with one or two Registries (3-party
  subscription over TCP),
* :mod:`repro.protocols.upnp` — UPnP (2-party subscription over TCP,
  invalidation-based notification).

:mod:`repro.protocols.base` defines the :class:`~repro.protocols.base.ProtocolDeployment`
interface the experiment harness drives, and :mod:`repro.protocols.registry`
maps system names ("frodo2", "jini1", ...) to their builders.
"""

from repro.protocols.base import ProtocolDeployment
from repro.protocols.registry import SYSTEMS, build_system, system_names

__all__ = ["ProtocolDeployment", "SYSTEMS", "build_system", "system_names"]
