"""UPnP model parameters.

Defaults follow Table 3/Table 4 of the paper: redundant multicast (6 copies
per logical announcement or search), TCP unicast for description fetches and
GENA eventing, and an 1800 s subscription lease renewed at half-life.  Like
FRODO's defaults, every periodic grid is chosen *off* the default
service-change time (2000 s) so the zero-failure baseline is exactly m'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.multicast import REDUNDANT_MULTICAST_COPIES


@dataclass
class UpnpConfig:
    """All tunable parameters of the UPnP model."""

    # ------------------------------------------------------------------ SSDP
    #: Period of the root device's ssdp:alive announcements (seconds).
    #: Ticks at 800/1600/2400 s never coincide with the 2000 s change.
    announce_interval: float = 800.0
    #: Redundant copies per logical multicast (Table 3: 6 for UPnP and Jini).
    multicast_copies: int = REDUNDANT_MULTICAST_COPIES
    #: Delay before an unanswered M-SEARCH is repeated during initial discovery.
    search_retry_interval: float = 10.0

    # ------------------------------------------------------------------ GENA subscription
    #: Subscription lease (GENA SUBSCRIBE timeout), seconds.
    subscription_lease: float = 1800.0
    #: Subscribers renew after this fraction of the lease has elapsed.
    renewal_fraction: float = 0.5

    # ------------------------------------------------------------------ PR5 rediscovery
    #: Period of a control point's M-SEARCH attempts after purging the device.
    rediscovery_interval: float = 120.0
    #: How long an in-flight description fetch / subscription suppresses a
    #: duplicate before it is presumed lost (covers the case where the request
    #: leg was delivered but the reply leg ended in a Remote Exception; must
    #: exceed TCP's worst-case connection-retry schedule of ~78 s).
    response_timeout: float = 120.0

    # ------------------------------------------------------------------ misc
    #: Default lease used by control-point service caches (seconds).
    service_cache_lease: float = 1800.0

    @property
    def renewal_interval(self) -> float:
        """Interval between subscription renewals (``renewal_fraction * lease``)."""
        return self.renewal_fraction * self.subscription_lease

    def validate(self) -> "UpnpConfig":
        """Raise :class:`ValueError` on inconsistent parameter combinations."""
        if not 0.0 < self.renewal_fraction < 1.0:
            raise ValueError("renewal_fraction must be in (0, 1)")
        if self.subscription_lease <= 0:
            raise ValueError("subscription_lease must be positive")
        if self.announce_interval <= 0 or self.rediscovery_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.response_timeout <= 0:
            raise ValueError("response_timeout must be positive")
        if self.multicast_copies < 1:
            raise ValueError("multicast_copies must be >= 1")
        return self
