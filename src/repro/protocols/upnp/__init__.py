"""UPnP protocol model (Table 2 / Table 4).

UPnP is the 2-party system of the comparison: there is no Registry.  The root
device (the Manager) advertises itself with redundant SSDP multicast
announcements, control points (the Users) search with redundant multicast
M-SEARCH queries, and eventing is GENA-style over TCP: a service change is
propagated as an *invalidation* event, after which each subscriber fetches
the updated description ("Users poll back for the update"), giving the
paper's 3N update messages (m' = 15 for N = 5 Users).

Recovery techniques (Table 2): SRC1/SRN1 only through TCP's bounded
connection retries, PR4 (a renewal from a dropped subscriber is answered with
an error that triggers resubscription) and PR5 (a control point that loses
its device purges it and rediscovers via multicast).
"""

from repro.protocols.upnp.builder import UpnpDeployment, build_upnp
from repro.protocols.upnp.config import UpnpConfig

__all__ = ["UpnpConfig", "UpnpDeployment", "build_upnp"]
