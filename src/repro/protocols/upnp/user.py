"""UPnP control points (the Users of the 2-party topology).

A control point searches for the service with redundant multicast M-SEARCH
queries, adopts the description from the search response (or fetches it over
TCP after an ssdp:alive advertising a newer version), and subscribes to the
device's event service over TCP.

Recovery behaviour:

* SRC1/SRN1 come only from TCP's bounded connection retries — when TCP raises
  a Remote Exception the operation is abandoned (Table 2: no native
  acknowledgement/retransmission scheme).
* PR4 — a renewal answered with a subscription error (the device dropped us)
  triggers an immediate fresh subscription, whose ack carries the current
  description.
* PR5 — a Remote Exception on any unicast exchange with the device purges it;
  the control point then rediscovers via periodic multicast M-SEARCH and by
  listening to ssdp:alive announcements.
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.cache import ServiceCache
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.upnp import messages as m
from repro.protocols.upnp.config import UpnpConfig
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class UpnpControlPoint(DiscoveryNode):
    """A UPnP control point looking for one service."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: UpnpConfig,
        query: ServiceQuery,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.USER, transports)
        self.config = config.validate()
        self.query = query
        self.tracker = tracker

        self.device_addr: Optional[Address] = None
        self.service_id: Optional[str] = None
        self.cache = ServiceCache(default_lease=config.service_cache_lease)
        self.subscribed = False
        #: Start time of an in-flight description fetch (duplicate guard).
        #: Timestamps, not booleans: the reply leg is a separate TCP exchange
        #: whose Remote Exception fires on the *device*, so this node would
        #: never learn of the loss — the guard expires after
        #: ``response_timeout`` instead of sticking forever.
        self._fetch_pending_since: Optional[float] = None
        #: Start time of an in-flight subscription request (duplicate guard).
        self._subscribe_pending_since: Optional[float] = None

        self._search_timer = PeriodicTimer(sim, config.search_retry_interval, self._search_tick)
        self._renew_timer = PeriodicTimer(sim, config.renewal_interval, self._renew_tick)
        self._rediscovery_timer = PeriodicTimer(
            sim, config.rediscovery_interval, self._rediscovery_tick
        )

    # ------------------------------------------------------------------ properties
    @property
    def held_version(self) -> int:
        """The version of the service description this control point holds."""
        if self.service_id is None:
            return 0
        entry = self.cache.get(self.service_id)
        return entry.sd.version if entry is not None else 0

    @property
    def has_service(self) -> bool:
        """``True`` when a service description is cached."""
        return self.service_id is not None and self.cache.get(self.service_id) is not None

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        self._send_msearch()
        self._search_timer.start()
        self._renew_timer.start()

    def on_stop(self) -> None:
        for timer in (self._search_timer, self._renew_timer, self._rediscovery_timer):
            timer.stop()

    # ------------------------------------------------------------------ SSDP discovery
    def _send_msearch(self) -> None:
        self.send_multicast(
            m.MSEARCH,
            {
                "device_type": self.query.device_type,
                "service_type": self.query.service_type,
                "attributes": dict(self.query.attributes),
            },
        )

    def _search_tick(self) -> None:
        if self.has_service:
            self._search_timer.stop()
            return
        self._send_msearch()

    def handle_search_response(self, message: Message) -> None:
        sd: ServiceDescription = message.payload["sd"]
        if self.query.matches(sd):
            self._adopt_sd(sd)

    def handle_ssdp_alive(self, message: Message) -> None:
        if self.query.device_type is not None and (
            message.payload.get("device_type") != self.query.device_type
        ):
            return
        if self.query.service_type is not None and (
            message.payload.get("service_type") != self.query.service_type
        ):
            return
        advertised = message.payload.get("version", 0)
        device = message.payload.get("device", message.sender)
        if not self.has_service or advertised > self.held_version:
            self._fetch_description(device)

    # ------------------------------------------------------------------ description fetch
    def _exchange_in_flight(self, since: Optional[float]) -> bool:
        """``True`` while a request started at ``since`` may still be answered."""
        return since is not None and self.now - since < self.config.response_timeout

    def _fetch_description(self, device: Address) -> None:
        if self._exchange_in_flight(self._fetch_pending_since):
            return
        self._fetch_pending_since = self.now

        def _rex(_rex: RemoteException) -> None:
            self._fetch_pending_since = None
            self._purge_and_rediscover(reason="description_rex")

        self.send_tcp(device, m.DESCRIPTION_GET, {"service_id": self.service_id}, on_rex=_rex)

    def handle_description_response(self, message: Message) -> None:
        self._fetch_pending_since = None
        sd: ServiceDescription = message.payload["sd"]
        if self.query.matches(sd):
            self._adopt_sd(sd)

    # ------------------------------------------------------------------ adopting a service description
    def _adopt_sd(self, sd: ServiceDescription) -> None:
        if self.has_service and sd.version < self.held_version:
            return
        self.service_id = sd.service_id
        self.device_addr = sd.manager_id
        self.cache.store(sd, self.now, lease_duration=self.config.service_cache_lease)
        if self.tracker is not None:
            self.tracker.record_view(self.node_id, sd.version, self.now)
        self._search_timer.stop()
        self._rediscovery_timer.stop()
        if not self.subscribed:
            self._subscribe()

    # ------------------------------------------------------------------ GENA subscription
    def _subscribe(self) -> None:
        if self.device_addr is None or self.service_id is None:
            return
        if self._exchange_in_flight(self._subscribe_pending_since):
            return
        self._subscribe_pending_since = self.now

        def _rex(_rex: RemoteException) -> None:
            self._subscribe_pending_since = None
            self._purge_and_rediscover(reason="subscribe_rex")

        self.send_tcp(
            self.device_addr,
            m.SUBSCRIBE_REQUEST,
            {"service_id": self.service_id, "held_version": self.held_version},
            on_rex=_rex,
        )

    def handle_subscribe_ack(self, message: Message) -> None:
        self._subscribe_pending_since = None
        self.subscribed = True
        sd = message.payload.get("sd")
        if sd is not None and self.query.matches(sd):
            self._adopt_sd(sd)

    def handle_subscribe_error(self, message: Message) -> None:
        # PR4: the device dropped our subscription; resubscribe afresh (the
        # ack carries the current description, restoring consistency).
        self._subscribe_pending_since = None
        self.subscribed = False
        self._subscribe()

    def _renew_tick(self) -> None:
        if self.subscribed and self.device_addr is not None and self.service_id is not None:

            def _rex(_rex: RemoteException) -> None:
                self._purge_and_rediscover(reason="renew_rex")

            self.send_tcp(
                self.device_addr,
                m.SUBSCRIBE_RENEW,
                {"service_id": self.service_id},
                on_rex=_rex,
            )
        elif self.has_service and not self.subscribed:
            self._subscribe()
        elif (
            not self.has_service
            and not self._rediscovery_timer.running
            and not self._search_timer.running
        ):
            self._start_rediscovery()

    def handle_subscribe_renew_ack(self, message: Message) -> None:
        if self.service_id is not None:
            self.cache.touch(self.service_id, self.now)

    # ------------------------------------------------------------------ eventing
    def handle_event_notify(self, message: Message) -> None:
        """Invalidation event: poll back for the updated description."""
        version = message.payload.get("version", 0)
        if version > self.held_version:
            self._fetch_description(message.sender)

    # ------------------------------------------------------------------ PR5: purge and rediscover
    def _purge_and_rediscover(self, reason: str) -> None:
        self.trace("purge_device", reason=reason)
        if self.service_id is not None:
            self.cache.remove(self.service_id)
        self.subscribed = False
        self._fetch_pending_since = None
        self._subscribe_pending_since = None
        self._start_rediscovery()

    def _start_rediscovery(self) -> None:
        self._rediscovery_tick()
        if not self._rediscovery_timer.running:
            self._rediscovery_timer.start()

    def _rediscovery_tick(self) -> None:
        if self.has_service and self.subscribed:
            self._rediscovery_timer.stop()
            return
        self._send_msearch()
