"""UPnP topology builder (Table 4).

One root device (the Manager) and five control points (the Users).  UPnP is
2-party: there is no Registry node.  Unicast control traffic (description
fetches, GENA subscription and eventing) runs over TCP with the Table 3
failure response; SSDP search responses use UDP; every multicast is
transmitted redundantly (6 copies, Table 3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.net.multicast import MulticastService
from repro.net.network import Network
from repro.net.tcp import TcpTransport
from repro.net.udp import UdpTransport
from repro.protocols.base import ProtocolDeployment
from repro.protocols.upnp.config import UpnpConfig
from repro.protocols.upnp.manager import UpnpRootDevice
from repro.protocols.upnp.user import UpnpControlPoint
from repro.sim.engine import Simulator


def default_service(manager_id: str) -> ServiceDescription:
    """The paper's example service description (a colour printer)."""
    return ServiceDescription(
        service_id="printer-service",
        manager_id=manager_id,
        device_type="Printer",
        service_type="ColorPrinter",
        attributes={"PaperSize": "A4", "Location": "Study"},
        version=1,
    )


def default_query() -> ServiceQuery:
    """The control points' requirement: any printer."""
    return ServiceQuery(device_type="Printer")


class UpnpDeployment(ProtocolDeployment):
    """A UPnP topology ready to simulate."""

    system = "upnp"
    #: Table 2: 3N update messages (invalidation + get + response per User);
    #: the class default documents N = 5, the builder sets the instance value
    #: for the actual topology size.
    m_prime = 15

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tracker: ConsistencyTracker,
        config: UpnpConfig,
    ) -> None:
        super().__init__(sim, network, tracker)
        self.config = config

    def trigger_service_change(
        self, attributes: Optional[Dict[str, object]] = None
    ) -> ServiceDescription:
        device: UpnpRootDevice = self.primary_manager  # type: ignore[assignment]
        return device.change_service(attributes=attributes)


def build_upnp(
    sim: Simulator,
    network: Network,
    tracker: ConsistencyTracker,
    config: Optional[UpnpConfig] = None,
    n_users: int = 5,
) -> UpnpDeployment:
    """Instantiate the UPnP topology (1 root device, ``n_users`` control points)."""
    config = (config if config is not None else UpnpConfig()).validate()
    deployment = UpnpDeployment(sim, network, tracker, config)
    deployment.m_prime = 3 * n_users

    transports = Transports(
        udp=UdpTransport(network),
        tcp=TcpTransport(network),
        multicast=MulticastService(network, redundancy=config.multicast_copies),
    )

    device_id = "upnp-device"
    device = UpnpRootDevice(
        sim,
        network,
        device_id,
        transports,
        config,
        sd=default_service(device_id),
        tracker=tracker,
    )
    deployment.managers.append(device)

    for index in range(n_users):
        user = UpnpControlPoint(
            sim,
            network,
            f"upnp-cp-{index + 1}",
            transports,
            config,
            query=default_query(),
            tracker=tracker,
        )
        tracker.register_user(user.node_id)
        deployment.users.append(user)

    return deployment
