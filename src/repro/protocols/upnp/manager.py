"""The UPnP root device (the Manager of the 2-party topology).

The root device advertises itself with periodic redundant ``ssdp:alive``
multicasts, answers M-SEARCH queries with a unicast response, serves its
description over TCP, and runs GENA eventing: subscribers are stored with a
lease, a service change sends each of them an invalidation event over TCP,
and — as in GENA — a subscriber whose event delivery fails (Remote Exception
after TCP's bounded connection retries) is dropped from the subscriber table.
A renewal from a dropped subscriber is answered with an error, which makes
the control point resubscribe (PR4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.consistency import ConsistencyTracker
from repro.discovery.node import DiscoveryNode, NodeRole, Transports
from repro.discovery.service import ServiceDescription, ServiceQuery
from repro.discovery.subscription import SubscriptionTable
from repro.net.addressing import Address
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.tcp import RemoteException
from repro.protocols.upnp import messages as m
from repro.protocols.upnp.config import UpnpConfig
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class UpnpRootDevice(DiscoveryNode):
    """A UPnP root device hosting one service."""

    protocol = m.PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Address,
        transports: Transports,
        config: UpnpConfig,
        sd: ServiceDescription,
        tracker: Optional[ConsistencyTracker] = None,
    ) -> None:
        super().__init__(sim, network, node_id, NodeRole.MANAGER, transports)
        self.config = config.validate()
        self.sd = sd
        self.tracker = tracker
        self.subscriptions = SubscriptionTable(default_lease=config.subscription_lease)
        self._announce_timer = PeriodicTimer(sim, config.announce_interval, self._announce_alive)

    # ------------------------------------------------------------------ properties
    @property
    def service_id(self) -> str:
        """Identifier of the hosted service."""
        return self.sd.service_id

    # ------------------------------------------------------------------ lifecycle
    def on_start(self) -> None:
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self._announce_alive()
        self._announce_timer.start()

    def on_stop(self) -> None:
        self._announce_timer.stop()

    # ------------------------------------------------------------------ SSDP
    def _announce_alive(self) -> None:
        """Periodic ssdp:alive: advertises the device and its current version."""
        self.send_multicast(
            m.SSDP_ALIVE,
            {
                "device": self.node_id,
                "service_id": self.service_id,
                "device_type": self.sd.device_type,
                "service_type": self.sd.service_type,
                "version": self.sd.version,
            },
        )

    def handle_msearch(self, message: Message) -> None:
        query = ServiceQuery(
            device_type=message.payload.get("device_type"),
            service_type=message.payload.get("service_type"),
            attributes=message.payload.get("attributes", {}) or {},
        )
        if query.matches(self.sd):
            self.send_udp(message.sender, m.SEARCH_RESPONSE, {"sd": self.sd})

    # ------------------------------------------------------------------ description
    def handle_description_get(self, message: Message) -> None:
        self.send_tcp(message.sender, m.DESCRIPTION_RESPONSE, {"sd": self.sd})

    # ------------------------------------------------------------------ GENA subscription
    def handle_subscribe_request(self, message: Message) -> None:
        service_id = message.payload.get("service_id", self.service_id)
        if service_id != self.service_id:
            return
        self.subscriptions.subscribe(
            message.sender,
            service_id,
            self.now,
            lease_duration=self.config.subscription_lease,
            acked_version=self.sd.version,
        )
        self.send_tcp(
            message.sender,
            m.SUBSCRIBE_ACK,
            {"service_id": service_id, "sd": self.sd, "lease": self.config.subscription_lease},
        )

    def handle_subscribe_renew(self, message: Message) -> None:
        service_id = message.payload.get("service_id", self.service_id)
        sub = self.subscriptions.renew(message.sender, service_id, self.now)
        if sub is None:
            # PR4: the subscriber was dropped (failed event delivery or lease
            # expiry); a 412-style error makes it resubscribe afresh.
            self.send_tcp(message.sender, m.SUBSCRIBE_ERROR, {"service_id": service_id})
            return
        self.send_tcp(message.sender, m.SUBSCRIBE_RENEW_ACK, {"service_id": service_id})

    # ------------------------------------------------------------------ the service change
    def change_service(
        self,
        attributes: Optional[dict] = None,
        service_type: Optional[str] = None,
    ) -> ServiceDescription:
        """Apply a change and propagate the invalidation to every subscriber."""
        self.sd = self.sd.with_update(
            service_type=service_type, attributes=attributes or {"changed_at": self.now}
        )
        if self.tracker is not None:
            self.tracker.record_authoritative(self.sd, self.now)
        self.trace("service_changed", version=self.sd.version)
        for sub in self.subscriptions.subscribers_for(self.service_id, now=self.now):
            self._notify_subscriber(sub.subscriber)
        return self.sd

    def _notify_subscriber(self, user: Address) -> None:
        """GENA NOTIFY over TCP; on Remote Exception the subscriber is dropped."""
        service_id = self.service_id
        version = self.sd.version

        def _dropped(_rex: RemoteException) -> None:
            self.subscriptions.unsubscribe(user, service_id)
            self.trace("subscriber_dropped", user=user, version=version)

        self.send_tcp(
            user,
            m.EVENT_NOTIFY,
            {"service_id": service_id, "version": version},
            on_rex=_dropped,
        )
