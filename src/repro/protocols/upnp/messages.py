"""UPnP message kinds.

The wire vocabulary of the UPnP model and its update-message accounting
declaration.  The zero-failure update flow is invalidation-based: per
subscriber one ``event_notify`` (GENA NOTIFY, no service description), one
``description_get`` and one ``description_response`` — 3N messages, matching
Table 2's UPnP count (m' = 15 for N = 5).  Searches and their responses are
update-related like FRODO's queries: before the change they fall outside the
accounting window, after the change they are exactly the PR5 recovery traffic
the Efficiency Degradation metric is supposed to see.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.protocols.accounting import register_update_related_kinds

PROTOCOL = "upnp"

# ------------------------------------------------------------------ SSDP (multicast, 6 copies)
SSDP_ALIVE = "ssdp_alive"
MSEARCH = "msearch"
SEARCH_RESPONSE = "search_response"  # unicast UDP reply to an M-SEARCH

# ------------------------------------------------------------------ description (HTTP over TCP)
DESCRIPTION_GET = "description_get"
DESCRIPTION_RESPONSE = "description_response"

# ------------------------------------------------------------------ GENA eventing (TCP)
SUBSCRIBE_REQUEST = "subscribe_request"
SUBSCRIBE_ACK = "subscribe_ack"
SUBSCRIBE_ERROR = "subscribe_error"  # renewal of an unknown subscription (412)
SUBSCRIBE_RENEW = "subscribe_renew"
SUBSCRIBE_RENEW_ACK = "subscribe_renew_ack"
EVENT_NOTIFY = "event_notify"  # invalidation: carries the version, not the SD

#: Message kinds counted towards *y* in the efficiency metrics.
UPDATE_RELATED_KINDS: FrozenSet[str] = frozenset(
    {
        MSEARCH,
        SEARCH_RESPONSE,
        DESCRIPTION_GET,
        DESCRIPTION_RESPONSE,
        SUBSCRIBE_ACK,
        EVENT_NOTIFY,
    }
)

register_update_related_kinds(PROTOCOL, UPDATE_RELATED_KINDS)
