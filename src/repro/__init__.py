"""Reproduction of conf_ipps_SundramoorthyHS06.

Consistency maintenance in service discovery: a discrete-event simulation of
FRODO (and, in later milestones, UPnP and Jini) under interface failures,
measured with the NIST Update Metrics (Responsiveness, Effectiveness,
Efficiency) and the paper's Efficiency Degradation metric.

Layers
------
* :mod:`repro.sim` — deterministic discrete-event kernel,
* :mod:`repro.net` — shared LAN, transports, interface-failure injection,
* :mod:`repro.discovery` — service descriptions, leases, caches, node base,
* :mod:`repro.protocols` — protocol models and the deployment registry,
* :mod:`repro.core` — consistency tracking and the Update Metrics,
* :mod:`repro.experiments` — scenario runner, failure-rate sweeps, reports.

Run an experiment from the command line with ``python -m repro sweep ...``
(see EXPERIMENTS.md).
"""

__version__ = "0.1.0"
