"""Fault-tolerant sweep execution: timeouts, retries, quarantine, fault hook.

A multi-hour sweep must survive the failure modes of its own harness — a
hung cell, a crashed worker process, a poisoned cell that raises on every
attempt — without losing the work it already did.  This module carries the
pieces the executors (:mod:`repro.experiments.executors`) and the sweep
driver (:mod:`repro.experiments.sweep`) compose into that guarantee:

* :class:`ResiliencePolicy` — per-cell wall-clock timeout, deterministic
  retry-with-backoff, the ``--max-cell-failures`` graceful-degradation
  budget, and the pool-rebuild cap for ``BrokenProcessPool`` recovery.
* :func:`run_cell_guarded` — the guarded task body both executors use: it
  applies the fault hook, arms the timeout, retries transient failures, and
  wraps a finally-failed cell into :class:`CellExecutionError` carrying a
  typed :class:`CellFailure` record (the checkpoint journal's ``cell_error``
  payload).
* The ``REPRO_FAULT_INJECT`` environment hook — the CI chaos gate's way to
  kill one worker or poison one cell mid-sweep without patching any code.

Determinism rules
-----------------
A retried cell is byte-identical to a first-try cell: every attempt rebuilds
the *entire* stack (simulator, RNG registry, network, deployment) from the
spec's own derived seed, and the runner tears the previous attempt down in a
``finally`` block — so retries never consume scenario RNG streams, never
leak state between attempts, and never depend on which attempt succeeded.
The retry *backoff* is wall-clock only and therefore invisible in results.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # imported for annotations only
    from repro.core.metrics import RunResult

#: Environment variable holding fault directives: ``;``-separated
#: ``kill:<key-substring>`` (the worker process exits hard, breaking the
#: pool) and ``poison:<key-substring>`` (the cell raises
#: :class:`InjectedFaultError`) entries, matched against the cell key.
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Environment variable naming a directory for once-only fault markers.
#: With it set, each directive fires exactly once across every process of a
#: sweep *and its resumes* — the crash-recovery identity gate relies on the
#: retried/resumed attempt running clean.  Without it, directives fire on
#: every match (a deterministically-poisoned cell).
FAULT_STATE_ENV = "REPRO_FAULT_STATE"

#: Exit code of a ``kill:`` directive — distinguishable from a Python crash.
KILL_EXIT_CODE = 87

#: Retry backoff is capped so exponential growth cannot stall a sweep.
_MAX_BACKOFF_SECONDS = 5.0


class CellTimeoutError(RuntimeError):
    """A cell exceeded its per-cell wall-clock timeout."""


class InjectedFaultError(RuntimeError):
    """A ``poison:`` directive of the fault hook fired for this cell."""


class FailureBudgetExceededError(ValueError):
    """More cells failed than ``--max-cell-failures`` allows."""


class PoolRecoveryError(RuntimeError):
    """The worker pool kept breaking beyond the rebuild cap."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the executors respond to cell failures."""

    #: Per-cell wall-clock timeout in seconds (``None`` = unlimited).  Armed
    #: via ``SIGALRM`` where available (main thread, POSIX); elsewhere the
    #: timeout is silently unenforced rather than unsupported.
    cell_timeout: Optional[float] = None
    #: Re-attempts per failed cell before it counts as failed.  Retries are
    #: deterministic: each attempt rebuilds the full stack from the cell's
    #: derived seed (see the module docstring).
    max_retries: int = 0
    #: Base sleep before the first retry; doubles per attempt (wall-clock
    #: only, capped, never part of results).
    retry_backoff: float = 0.1
    #: Failure budget: up to this many failed cells are quarantined as typed
    #: ``cell_error`` journal records and reported as gaps; one more aborts
    #: the sweep.
    max_cell_failures: int = 0
    #: How often a broken process pool is rebuilt (unfinished chunks are
    #: resubmitted) before giving up with :class:`PoolRecoveryError`.
    max_pool_rebuilds: int = 2

    def validate(self) -> "ResiliencePolicy":
        """Raise :class:`ValueError` on an inconsistent policy."""
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {self.cell_timeout!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {self.retry_backoff!r}")
        if self.max_cell_failures < 0:
            raise ValueError(
                f"max_cell_failures must be >= 0, got {self.max_cell_failures!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds!r}"
            )
        return self


#: The executors' default: no timeout, no retries, no failure budget — a
#: failing cell propagates exactly as it always did — but broken-pool
#: recovery stays on (worker death is an infrastructure fault, not a result).
DEFAULT_POLICY = ResiliencePolicy()


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: the typed ``cell_error`` checkpoint record."""

    key: str
    #: Exception type name (``"CellTimeoutError"``, ``"InjectedFaultError"``, ...).
    error: str
    message: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (checkpoint journal / report payload)."""
        return {
            "key": self.key,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(
            key=data["key"],
            error=data["error"],
            message=data["message"],
            attempts=int(data["attempts"]),
        )


class CellExecutionError(RuntimeError):
    """A cell failed after exhausting its retries (carries the original)."""

    def __init__(self, key: str, attempts: int, original: BaseException) -> None:
        super().__init__(
            f"cell {key!r} failed after {attempts} attempt(s): "
            f"{type(original).__name__}: {original}"
        )
        self.key = key
        self.attempts = attempts
        self.original = original

    def failure(self) -> CellFailure:
        """The typed quarantine record of this failure."""
        return CellFailure(
            key=self.key,
            error=type(self.original).__name__,
            message=str(self.original)[:500],
            attempts=self.attempts,
        )


@dataclass
class ExecutionStats:
    """What an executor's last ``run_scenarios`` call had to do to finish.

    Purely observational (telemetry journal header, progress notes): none of
    these figures ever enter results, so byte-identity gates stay unaffected
    by how bumpy the execution happened to be.
    """

    #: Cell key -> attempts the cell took (1 = first try succeeded).
    attempts: Dict[str, int] = field(default_factory=dict)
    retried_cells: int = 0
    failed_cells: int = 0
    pool_rebuilds: int = 0

    def record(self, key: str, attempts: int, failed: bool = False) -> None:
        """Account one finished (or finally-failed) cell."""
        self.attempts[key] = attempts
        if attempts > 1:
            self.retried_cells += 1
        if failed:
            self.failed_cells += 1


# --------------------------------------------------------------------------- fault hook
def parse_fault_directives(text: str) -> List[Tuple[str, str]]:
    """Parse :data:`FAULT_ENV`: ``"kill:frodo3~5u@0.2#1;poison:upnp"`` ->
    ``[("kill", ...), ("poison", ...)]``.  Raises :class:`ValueError` on a
    malformed directive."""
    directives: List[Tuple[str, str]] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        action, sep, pattern = part.partition(":")
        action = action.strip()
        if not sep or not pattern or action not in ("kill", "poison"):
            raise ValueError(
                f"bad {FAULT_ENV} directive {part!r}; expected "
                f"kill:<key-substring> or poison:<key-substring>"
            )
        directives.append((action, pattern))
    return directives


def _claim_fault(action: str, pattern: str) -> bool:
    """``True`` when the directive may fire now (once-only via the state dir).

    The marker is created *before* the fault fires, so a ``kill`` that takes
    the whole worker down has already burned its one shot — the resubmitted
    chunk runs clean, which is what lets a chaotic sweep converge to the
    undisturbed output.
    """
    state_dir = os.environ.get(FAULT_STATE_ENV)
    if not state_dir:
        return True
    os.makedirs(state_dir, exist_ok=True)
    digest = hashlib.sha1(pattern.encode("utf-8")).hexdigest()[:16]
    marker = os.path.join(state_dir, f"{action}-{digest}")
    try:
        with open(marker, "x"):
            return True
    except FileExistsError:
        return False


def maybe_inject_fault(key: str) -> None:
    """Fire any :data:`FAULT_ENV` directive matching ``key`` (test/CI hook).

    ``kill`` exits the process hard (``os._exit``), which in a pool worker
    surfaces as ``BrokenProcessPool`` in the parent; ``poison`` raises
    :class:`InjectedFaultError`, exercising the retry/quarantine path.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    for action, pattern in parse_fault_directives(spec):
        if pattern not in key:
            continue
        if not _claim_fault(action, pattern):
            continue
        if action == "kill":
            os._exit(KILL_EXIT_CODE)
        raise InjectedFaultError(
            f"injected fault poisoned cell {key!r} (directive poison:{pattern})"
        )


# --------------------------------------------------------------------------- timeouts
@contextmanager
def cell_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` in the block after ``seconds`` of wall time.

    Implemented with ``SIGALRM``/``setitimer``, which both executor paths can
    use because cells always run on the main thread of their process (the
    serial executor in the caller's process, pool tasks in the worker's).
    Where signals are unavailable (non-POSIX, non-main thread) the block runs
    unguarded — a missing timeout only weakens resilience, never correctness.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise CellTimeoutError(f"cell exceeded its {seconds:g}s wall-clock timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# --------------------------------------------------------------------------- guarded runs
def run_cell_guarded(
    runner: Any,
    scenario: Any,
    key: str,
    policy: ResiliencePolicy = DEFAULT_POLICY,
) -> Tuple["RunResult", int]:
    """Run one cell under ``policy``; returns ``(result, attempts)``.

    Applies the fault hook, arms the per-cell timeout, and retries transient
    failures with exponential backoff.  When every attempt failed, raises
    :class:`CellExecutionError` wrapping the last exception.
    ``KeyboardInterrupt``/``SystemExit`` always propagate immediately — an
    interrupt must never be retried away.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            maybe_inject_fault(key)
            with cell_deadline(policy.cell_timeout):
                return runner.run(scenario), attempt
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if attempt <= policy.max_retries:
                time.sleep(
                    min(policy.retry_backoff * (2 ** (attempt - 1)), _MAX_BACKOFF_SECONDS)
                )
                continue
            raise CellExecutionError(key, attempt, exc) from exc
