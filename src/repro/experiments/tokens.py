"""The shared ``name@key=value,...`` token grammar.

Scenario selections (``--scenario churn@rate=0.1``) and system selections
(``--system jini@k=8,mode=gossip``) use the same CLI token shape: a bare
name, optionally followed by ``@`` and a comma-separated list of
``key=value`` options.  This module is the single implementation of that
grammar — :func:`parse_token` and :func:`canonical_token` are wrapped by
``parse_scenario``/``scenario_token`` in :mod:`repro.experiments.scenarios`
and ``parse_system``/``system_token`` in :mod:`repro.protocols.registry`,
so quoting, whitespace tolerance and error wording can never drift between
the two front ends.

Grammar rules (shared, by construction, with the scenario grammar that
predates this module):

* values parse as ``true``/``false``, int, float, or fall back to string;
* canonical tokens sort options by key and format floats via ``repr``, so
  equal selections always produce equal tokens — the property cell keys and
  checkpoint identities rely on;
* a selection without options is just the bare name;
* surrounding whitespace around names, keys and values is tolerated on
  input and absent from canonical output.

The ``label`` argument ("scenario", "system") only parameterises error
messages; the grammar itself is identical for every front end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple


def format_option_value(value: Any) -> str:
    """Canonical text of one option value (bools lowercase, floats via ``repr``)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_option_value(text: str) -> Any:
    """Parse one option value: ``true``/``false``, int, float, or string."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def canonical_token(name: str, options: Mapping[str, Any]) -> str:
    """Canonical ``name@key=value,...`` token of a (name, options) selection.

    Options are sorted by name and values formatted canonically (floats via
    ``repr``), so equal selections always produce equal tokens.  A selection
    without options is just the bare name.
    """
    if not options:
        return name
    parts = ",".join(f"{key}={format_option_value(options[key])}" for key in sorted(options))
    return f"{name}@{parts}"


def parse_token(text: str, label: str = "token") -> Tuple[str, Dict[str, Any]]:
    """Parse one ``name@key=value,...`` token into its name and options.

    ``label`` names the token kind in error messages ("scenario", "system")
    and nothing else — the grammar is label-independent.  The name is *not*
    resolved against any registry here; callers validate it so the error can
    carry the known names.
    """
    name, sep, option_text = text.partition("@")
    name = name.strip()
    if not name:
        raise ValueError(f"{label} token {text!r} has no name")
    options: Dict[str, Any] = {}
    if sep:
        if not option_text.strip():
            raise ValueError(f"{label} token {text!r} has a dangling '@'")
        for item in option_text.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise ValueError(
                    f"{label} option {item!r} must look like key=value (in token {text!r})"
                )
            if key in options:
                raise ValueError(f"duplicate {label} option {key!r} in token {text!r}")
            options[key] = parse_option_value(value.strip())
    return name, options


def split_token_list(text: str) -> List[str]:
    """Split a comma-separated list of tokens, keeping option lists intact.

    The ``--system`` flag accepts comma-separated lists (``frodo3,upnp``)
    *and* parameterised tokens whose option lists themselves contain commas
    (``jini@k=8,mode=gossip``).  The two are disambiguated by shape: a
    comma-separated segment containing ``=`` but no ``@`` continues the
    preceding token's option list (a bare system name can never contain
    ``=``), anything else starts a new token.

    >>> split_token_list("upnp,jini@k=8,mode=gossip,frodo3")
    ['upnp', 'jini@k=8,mode=gossip', 'frodo3']
    """
    tokens: List[str] = []
    for segment in text.split(","):
        if "=" in segment and "@" not in segment and tokens:
            tokens[-1] += "," + segment.strip()
        elif segment.strip():
            tokens.append(segment.strip())
    return tokens
