"""Scenario specification (Section 5 of the paper).

A :class:`ScenarioSpec` fully determines one simulation run: which system to
deploy (a :mod:`repro.protocols.registry` name), how many Users, the
interface-failure rate lambda, the master seed all random streams derive
from, the time of the service change and the measurement deadline.  Two runs
with equal specs produce identical results, event for event.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.sim.rng import derive_seed

#: Run length used throughout Section 5 of the paper, in seconds.
DEFAULT_SIM_DURATION = 5400.0
#: Default time of the service change: late enough that discovery and
#: subscription are settled, early enough to leave a failure-exposed
#: propagation window before the deadline.  Deliberately off the periodic
#: timer grids (renewals every 900 s, Registry announcements every 1200 s):
#: a change coinciding with a renewal tick races SRC2 into sending redundant
#: update requests, inflating the zero-failure baseline above m'.
DEFAULT_CHANGE_TIME = 2000.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that defines one experiment run."""

    #: Registry name of the deployed system ("frodo3", "frodo2", ...).
    system: str
    #: The paper's lambda: fraction of the run each node's interface is down.
    failure_rate: float = 0.0
    #: Master seed; every random stream of the run derives from it.
    seed: int = 0
    #: Number of measured Users (topology size, Table 4 uses 5).
    n_users: int = 5
    #: Simulation time of the service change (C in the metrics).
    change_time: float = DEFAULT_CHANGE_TIME
    #: Measurement deadline / end of the run (D in the metrics).
    deadline: float = DEFAULT_SIM_DURATION
    #: Keep the structured trace in memory (debugging only; sweeps disable it).
    trace: bool = False
    #: Stream the trace to this NDJSON file instead of accumulating it in
    #: memory (implies tracing on).  Purely observational: the path never
    #: feeds the seed derivation, so traced and untraced runs are identical.
    trace_path: Optional[str] = None
    #: Extra keyword options forwarded to the deployment builder.
    builder_options: Dict[str, Any] = field(default_factory=dict)
    #: Scenario-family name from :data:`repro.experiments.scenarios.SCENARIOS`.
    #: The default, ``"table4"``, is the paper's model: one outage per node,
    #: one service change.
    scenario: str = "table4"
    #: Options of the scenario family (e.g. ``{"rate": 0.1}`` for ``churn``).
    scenario_options: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ValueError` on inconsistent parameters."""
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {self.failure_rate!r}")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        if self.change_time <= 0:
            raise ValueError("change_time must be positive")
        if self.deadline <= self.change_time:
            raise ValueError("deadline must be after the change time")
        # Imported lazily: the scenario registry builds on this module.
        from repro.experiments.scenarios import SCENARIOS

        SCENARIOS.get(self.scenario).validate_options(self.scenario_options)
        return self

    @property
    def scenario_token(self) -> str:
        """Canonical ``name@k=v,...`` form of the scenario selection."""
        from repro.experiments.scenarios import scenario_token

        return scenario_token(self.scenario, self.scenario_options)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """Copy of this spec with a different master seed (one per replication)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """Short human-readable summary used in logs."""
        return (
            f"{self.system} lambda={self.failure_rate:.0%} seed={self.seed} "
            f"users={self.n_users} change@{self.change_time:g}s deadline={self.deadline:g}s"
        )


def run_seed(base_seed: int, system: str, failure_rate: float, run_index: int) -> int:
    """Derive the master seed of one replication in a sweep.

    The derivation hashes the full cell coordinates, so adding systems, rates
    or replications to a sweep never perturbs the seeds of existing runs.
    """
    return derive_seed(base_seed, "run", system, repr(float(failure_rate)), int(run_index))


def cell_key(
    system: str,
    failure_rate: float,
    run_index: int,
    n_users: int = 5,
    scenario: str = "table4",
) -> str:
    """Stable string identity of one sweep cell (v4: system x users x rate x replication x scenario).

    Like :func:`run_seed` the key depends only on the cell coordinates, never
    on grid position.  (Checkpoint journals additionally pin the full grid:
    resume requires the identical sweep spec, not merely matching keys.)
    The rate uses ``repr`` (not a formatted percentage) so distinct floats can
    never collide.

    ``system`` is the canonical *system token* (v4): a parameterised
    selection like ``jini@k=8,mode=gossip`` carries its token verbatim, a
    legacy bare name ("jini2") stays bare — so every pre-v4 key, seed and
    trace file name is unchanged.  The CLI canonicalises tokens before they
    reach the spec, so equal selections always produce equal keys.

    ``scenario`` is the canonical scenario token
    (:func:`~repro.experiments.scenarios.scenario_token`).  The default
    ``table4`` scenario keeps the bare v2 shape — existing trace file names
    and journal keys for the paper's model are unchanged — while every other
    scenario appends ``!<token>``, so a churn journal can never silently
    collide with a table4 journal.
    """
    key = f"{system}~{int(n_users)}u@{float(failure_rate)!r}#{int(run_index)}"
    if scenario != "table4":
        key += f"!{scenario}"
    return key
