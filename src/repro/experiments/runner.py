"""End-to-end execution of one experiment run (Section 5, Steps 1-5).

The :class:`ExperimentRunner` assembles the full stack for one
:class:`~repro.experiments.scenario.ScenarioSpec`:

1. a fresh :class:`~repro.sim.engine.Simulator` and a per-run
   :class:`~repro.sim.rng.RngRegistry` derived from the spec's master seed,
2. the shared :class:`~repro.net.network.Network`,
3. the deployment, built by name through the
   :mod:`~repro.protocols.registry` (Step 1: topology of Table 4),
4. the interface-failure plan from :mod:`repro.net.failures` (Step 2),
5. the service change at ``change_time`` (Step 3) and the run to the
   measurement deadline (Steps 4-5),

then extracts a :class:`~repro.core.metrics.RunResult` from the consistency
tracker and the network's message statistics.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.consistency import ConsistencyTracker
from repro.core.metrics import RunResult
from repro.experiments.scenario import ScenarioSpec
from repro.net.failures import DisruptionPlan, FailureInjector
from repro.net.network import Network, NetworkConfig
from repro.obs.sinks import NDJSONSink
from repro.obs.telemetry import collect_run_telemetry
from repro.protocols.base import ProtocolDeployment
from repro.protocols.registry import DeploymentRegistry, SYSTEMS
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


@dataclass
class RunContext:
    """The fully assembled stack of one run (exposed for tests and debugging)."""

    spec: ScenarioSpec
    sim: Simulator
    rng: RngRegistry
    network: Network
    tracker: ConsistencyTracker
    deployment: ProtocolDeployment
    injector: FailureInjector
    plan: DisruptionPlan


class ExperimentRunner:
    """Builds and executes single runs against a deployment registry."""

    def __init__(
        self,
        registry: DeploymentRegistry = SYSTEMS,
        network_config: Optional[NetworkConfig] = None,
    ) -> None:
        self.registry = registry
        self.network_config = network_config

    # ------------------------------------------------------------------ assembly
    @staticmethod
    def _build_tracer(spec: ScenarioSpec) -> Tracer:
        """The tracer for one run: streaming, in-memory, or disabled.

        ``spec.trace_path`` wins: the trace streams to an NDJSON file with
        bounded memory (the sink is closed by :meth:`execute`'s teardown).
        The header's ``meta`` carries the run identity so a capture is
        self-describing; all values are deterministic.
        """
        if spec.trace_path:
            meta = {
                "system": spec.system,
                "failure_rate": spec.failure_rate,
                "seed": spec.seed,
                "users": spec.n_users,
                "change_time": spec.change_time,
                "deadline": spec.deadline,
            }
            if spec.scenario != "table4":
                # Only non-default scenarios tag the header: table4 trace
                # files stay byte-identical to pre-scenario captures.
                meta["scenario"] = spec.scenario_token
            return Tracer(enabled=True, sink=NDJSONSink(spec.trace_path, meta=meta))
        return Tracer(enabled=spec.trace)

    def setup(self, spec: ScenarioSpec) -> RunContext:
        """Construct the stack for ``spec`` without running it."""
        spec.validate()
        rng = RngRegistry(spec.seed)
        sim = Simulator(tracer=self._build_tracer(spec))
        network = Network(sim, rng, config=self.network_config)
        tracker = ConsistencyTracker()
        deployment = self.registry.build(
            spec.system, sim, network, tracker, n_users=spec.n_users, **spec.builder_options
        )

        # The spec's scenario family turns the built deployment into this
        # run's disruption plan (the default ``table4`` family reproduces
        # the paper's one-outage-per-node draw byte-for-byte).
        from repro.experiments.scenarios import SCENARIOS

        plan = SCENARIOS.get(spec.scenario).build(spec, deployment, rng)
        nodes = {node.node_id: node for node in deployment.all_nodes}
        injector = FailureInjector(
            sim,
            network,
            plan.outages,
            churn=plan.churn,
            loss_windows=plan.loss_windows,
            link_cuts=plan.link_cuts,
            deadline=spec.deadline,
            node_resolver=nodes.get,
        )
        return RunContext(
            spec=spec,
            sim=sim,
            rng=rng,
            network=network,
            tracker=tracker,
            deployment=deployment,
            injector=injector,
            plan=plan,
        )

    # ------------------------------------------------------------------ execution
    def run(self, spec: ScenarioSpec) -> RunResult:
        """Execute one run and return its :class:`~repro.core.metrics.RunResult`."""
        context = self.setup(spec)
        return self.execute(context)

    def execute(self, context: RunContext) -> RunResult:
        """Run an assembled :class:`RunContext` to the deadline and collect results.

        The ``finally`` block is the explicit per-run reset: it stops every
        node and the injector *and closes the tracer sink*, so no run-scoped
        state — open trace files included — survives into the next run of a
        warm (reused) runner, whether in-process or in a pool worker.
        """
        spec = context.spec
        try:
            context.deployment.start()
            context.injector.start()
            context.sim.schedule_at(spec.change_time, context.deployment.trigger_service_change)
            for change_time in context.plan.extra_change_times:
                context.sim.schedule_at(change_time, context.deployment.trigger_service_change)
            context.sim.run(until=spec.deadline)
            return self.collect(context)
        finally:
            context.deployment.stop()
            context.injector.stop()
            context.sim.tracer.close()

    def collect(self, context: RunContext) -> RunResult:
        """Extract the :class:`~repro.core.metrics.RunResult` after the run finished."""
        spec = context.spec
        changed_version = context.tracker.authoritative_version
        change_time = context.tracker.change_time(changed_version)
        if change_time is None:
            raise RuntimeError(
                f"run {spec.describe()} never recorded a service change; "
                "the deployment's trigger_service_change hook is broken"
            )
        stats = context.deployment.collect_run_stats(change_time)
        details = {
            "m_prime": context.deployment.m_prime,
            "n_outages": len(context.injector.plan),
            "executed_events": context.sim.executed_events,
            "changed_version": changed_version,
            "update_counts_by_kind": stats.update_counts_by_kind,
            # RunTelemetry: deterministic engine/network counters (see
            # repro.obs.telemetry for the field glossary).  Persisted
            # with the run through checkpoints and --per-run output.
            "telemetry": collect_run_telemetry(context.sim, context.network, context.injector),
        }
        # Deployment-specific additions (e.g. federation consistency
        # metrics); the default hook contributes nothing.
        details.update(context.deployment.extra_details(change_time))
        return RunResult(
            system=spec.system,
            failure_rate=spec.failure_rate,
            seed=spec.seed,
            change_time=change_time,
            deadline=spec.deadline,
            user_update_times=dict(
                sorted(context.tracker.update_times(changed_version).items())
            ),
            update_message_count=stats.update_message_count,
            total_discovery_messages=stats.total_discovery_messages,
            transport_message_count=stats.transport_message_count,
            details=details,
        )


def run_scenario(spec: ScenarioSpec) -> RunResult:
    """Execute one scenario against the default registry with a fresh runner.

    This is the self-contained form of a sweep cell: everything the run needs
    is in ``spec`` (including the derived seed), so the function is safe to
    call from worker processes — the parallel executor
    (:mod:`repro.experiments.executors`) uses it as its task body.
    """
    return ExperimentRunner().run(spec)


#: Default importable reference of the standard deployment registry.
DEFAULT_REGISTRY_REF = "repro.protocols.registry:SYSTEMS"


@dataclass(frozen=True)
class RunnerSpec:
    """Picklable recipe for building an :class:`ExperimentRunner` anywhere.

    Deployment builders are closures and cannot cross process boundaries, so
    a customised registry cannot be shipped to pool workers directly.  A
    :class:`RunnerSpec` ships the *recipe* instead: an importable
    ``"module:attr"`` reference that resolves — in whatever process — to
    either a :class:`~repro.protocols.registry.DeploymentRegistry` instance
    or a zero-setup factory callable returning one (``registry_options`` are
    passed to the factory), plus an optional
    :class:`~repro.net.network.NetworkConfig`.  This is what lifts the old
    "customised registries must use ``--jobs 1``" restriction.
    """

    #: ``"module:attr"`` naming a registry instance or a registry factory.
    registry_ref: str = DEFAULT_REGISTRY_REF
    #: Keyword options for the factory (must be empty for plain instances).
    registry_options: Dict[str, Any] = field(default_factory=dict)
    network_config: Optional[NetworkConfig] = None

    def resolve(self) -> ExperimentRunner:
        """Import the registry (or call the factory) and build the runner."""
        module_name, sep, attr = self.registry_ref.partition(":")
        if not sep or not module_name or not attr:
            raise ValueError(
                f"registry_ref must look like 'package.module:attribute', "
                f"got {self.registry_ref!r}"
            )
        target = getattr(importlib.import_module(module_name), attr)
        if isinstance(target, DeploymentRegistry):
            if self.registry_options:
                raise ValueError(
                    f"{self.registry_ref!r} is a registry instance; "
                    f"registry_options only apply to factories"
                )
            registry = target
        elif callable(target):
            registry = target(**self.registry_options)
            if not isinstance(registry, DeploymentRegistry):
                raise TypeError(
                    f"factory {self.registry_ref!r} returned "
                    f"{type(registry).__name__}, expected a DeploymentRegistry"
                )
        else:
            raise TypeError(
                f"{self.registry_ref!r} is neither a DeploymentRegistry nor a factory"
            )
        return ExperimentRunner(registry, network_config=self.network_config)
