"""Experiment orchestration: scenarios, the runner, sweeps and reporting.

This package turns the simulation ingredients (:mod:`repro.sim`,
:mod:`repro.net`, :mod:`repro.protocols`, :mod:`repro.core`) into the paper's
experiment:

* :mod:`repro.experiments.scenario` — :class:`ScenarioSpec`, the full
  description of one run,
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, which builds
  the stack (deployment via the protocol registry, failure plan, consistency
  tracker), triggers the service change and extracts a
  :class:`~repro.core.metrics.RunResult`,
* :mod:`repro.experiments.sweep` — the systems x failure-rates x seeds
  driver with deterministic per-run seed derivation,
* :mod:`repro.experiments.report` — JSON / CSV / table emitters.

The ``python -m repro`` CLI (:mod:`repro.__main__`) is a thin wrapper over
this package.
"""

from repro.experiments.scenario import (
    DEFAULT_CHANGE_TIME,
    DEFAULT_SIM_DURATION,
    ScenarioSpec,
    run_seed,
)
from repro.experiments.runner import ExperimentRunner, RunContext
from repro.experiments.sweep import SweepResult, SweepSpec, sweep
from repro.experiments.report import (
    format_summary_table,
    summaries_to_csv,
    sweep_to_dict,
    to_json,
    write_sweep_json,
)

__all__ = [
    "DEFAULT_CHANGE_TIME",
    "DEFAULT_SIM_DURATION",
    "ScenarioSpec",
    "run_seed",
    "ExperimentRunner",
    "RunContext",
    "SweepSpec",
    "SweepResult",
    "sweep",
    "format_summary_table",
    "summaries_to_csv",
    "sweep_to_dict",
    "to_json",
    "write_sweep_json",
]
