"""Experiment orchestration: scenarios, the runner, sweeps and reporting.

This package turns the simulation ingredients (:mod:`repro.sim`,
:mod:`repro.net`, :mod:`repro.protocols`, :mod:`repro.core`) into the paper's
experiment:

* :mod:`repro.experiments.scenario` — :class:`ScenarioSpec`, the full
  description of one run,
* :mod:`repro.experiments.scenarios` — the named disruption-scenario
  families (``table4``, ``churn``, ``cascade``, ...) that turn a spec into a
  :class:`~repro.net.failures.DisruptionPlan`,
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, which builds
  the stack (deployment via the protocol registry, failure plan, consistency
  tracker), triggers the service change and extracts a
  :class:`~repro.core.metrics.RunResult`,
* :mod:`repro.experiments.sweep` — the systems x failure-rates x seeds
  driver with deterministic per-run seed derivation, cell-based task
  expansion and checkpoint/resume,
* :mod:`repro.experiments.executors` — serial and process-parallel cell
  execution with ordered (byte-identical) aggregation,
* :mod:`repro.experiments.report` — JSON / CSV / table emitters.

The ``python -m repro`` CLI (:mod:`repro.__main__`) is a thin wrapper over
this package.
"""

from repro.experiments.scenario import (
    DEFAULT_CHANGE_TIME,
    DEFAULT_SIM_DURATION,
    ScenarioSpec,
    cell_key,
    run_seed,
)
from repro.experiments.scenarios import (
    SCENARIOS,
    ScenarioFamily,
    ScenarioRegistry,
    UnknownScenarioError,
    parse_scenario,
    scenario_token,
)
from repro.experiments.runner import ExperimentRunner, RunContext, RunnerSpec, run_scenario
from repro.experiments.resilience import (
    DEFAULT_POLICY,
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    ExecutionStats,
    FailureBudgetExceededError,
    InjectedFaultError,
    PoolRecoveryError,
    ResiliencePolicy,
)
from repro.experiments.executors import (
    ParallelExecutor,
    SerialExecutor,
    SweepExecutor,
    make_executor,
)
from repro.experiments.sweep import (
    CheckpointMismatchError,
    SweepCell,
    SweepResult,
    SweepSpec,
    append_cell_error,
    append_checkpoint,
    load_checkpoint,
    save_checkpoint,
    sweep,
)
from repro.experiments.report import (
    format_summary_table,
    run_from_dict,
    run_to_dict,
    summaries_to_csv,
    sweep_to_dict,
    to_json,
    write_sweep_json,
)

__all__ = [
    "DEFAULT_CHANGE_TIME",
    "DEFAULT_SIM_DURATION",
    "ScenarioSpec",
    "cell_key",
    "run_seed",
    "SCENARIOS",
    "ScenarioFamily",
    "ScenarioRegistry",
    "UnknownScenarioError",
    "parse_scenario",
    "scenario_token",
    "ExperimentRunner",
    "RunContext",
    "RunnerSpec",
    "run_scenario",
    "DEFAULT_POLICY",
    "CellExecutionError",
    "CellFailure",
    "CellTimeoutError",
    "ExecutionStats",
    "FailureBudgetExceededError",
    "InjectedFaultError",
    "PoolRecoveryError",
    "ResiliencePolicy",
    "ParallelExecutor",
    "SerialExecutor",
    "SweepExecutor",
    "make_executor",
    "CheckpointMismatchError",
    "SweepCell",
    "SweepSpec",
    "SweepResult",
    "append_cell_error",
    "append_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "sweep",
    "format_summary_table",
    "run_from_dict",
    "run_to_dict",
    "summaries_to_csv",
    "sweep_to_dict",
    "to_json",
    "write_sweep_json",
]
