"""Result reporting: MetricSummary tables as JSON and CSV.

All emitters are deterministic: dictionary keys are sorted, no timestamps or
environment data are embedded, and floats keep their full ``repr`` so that
re-running a sweep with the same seeds produces byte-identical output (the
reproducibility check the CLI relies on).
"""

from __future__ import annotations

import csv
import io
import json
import sys
from typing import Any, Dict, Sequence, TextIO, Union

from repro.core.metrics import MetricSummary, RunResult
from repro.experiments.sweep import SweepResult

#: Column order of the summary CSV (one row per (system, users, failure rate) cell).
SUMMARY_FIELDS = [
    "system",
    "failure_rate",
    "n_users",
    "runs",
    "responsiveness",
    "effectiveness",
    "update_efficiency",
    "efficiency_degradation",
    "mean_update_messages",
]


def summary_to_dict(summary: MetricSummary) -> Dict[str, Any]:
    """Plain-data form of one cell summary (JSON-serialisable)."""
    return {name: getattr(summary, name) for name in SUMMARY_FIELDS}


def run_to_dict(run: RunResult) -> Dict[str, Any]:
    """Plain-data form of one run (JSON-serialisable)."""
    return run.to_dict()


def run_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_to_dict` (used by sweep checkpoints and tools)."""
    return RunResult.from_dict(data)


def sweep_to_dict(
    result: SweepResult,
    include_runs: bool = False,
) -> Dict[str, Any]:
    """Plain-data form of a whole sweep.

    Quarantined cells (fault-tolerant sweeps under a failure budget) appear
    under ``"failures"`` so the output names its own gaps; clean sweeps omit
    the key entirely, keeping their JSON byte-identical to pre-resilience
    output.
    """
    data: Dict[str, Any] = {
        "spec": result.spec.grid_dict(),
        "summaries": [summary_to_dict(summary) for summary in result.summaries],
    }
    if include_runs:
        data["runs"] = [run_to_dict(run) for run in result.runs]
    if result.failures:
        data["failures"] = [failure.to_dict() for failure in result.failures]
    return data


def to_json(data: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, stable separators, trailing newline."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def summaries_to_csv(summaries: Sequence[MetricSummary]) -> str:
    """The summary table as CSV text (header + one row per cell)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=SUMMARY_FIELDS, lineterminator="\n")
    writer.writeheader()
    for summary in summaries:
        writer.writerow(summary_to_dict(summary))
    return buffer.getvalue()


def format_summary_table(summaries: Sequence[MetricSummary]) -> str:
    """Fixed-width table for terminal output."""
    header = (
        f"{'system':<10} {'lambda':>7} {'users':>6} {'runs':>5} "
        f"{'R':>7} {'F':>7} {'E':>7} {'G':>7} {'msgs':>8}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.system:<10} {s.failure_rate:>6.0%} {s.n_users:>6d} {s.runs:>5d} "
            f"{s.responsiveness:>7.4f} {s.effectiveness:>7.4f} "
            f"{s.update_efficiency:>7.4f} {s.efficiency_degradation:>7.4f} "
            f"{s.mean_update_messages:>8.1f}"
        )
    return "\n".join(lines) + "\n"


def write_text(text: str, out: Union[str, TextIO, None]) -> None:
    """Write ``text`` to a path, to an open stream, or to stdout (``"-"``/``None``)."""
    if out is None or out == "-":
        sys.stdout.write(text)
        return
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        return
    out.write(text)


def write_sweep_json(
    result: SweepResult,
    out: Union[str, TextIO, None],
    include_runs: bool = False,
) -> str:
    """Serialise a sweep to canonical JSON and write it to ``out``; returns the text."""
    text = to_json(sweep_to_dict(result, include_runs=include_runs))
    write_text(text, out)
    return text
