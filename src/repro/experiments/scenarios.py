"""Composable scenario library: named disruption-plan families.

The paper's Section 5 model — one interface outage per node, one service
change per run — is just one point in the space of disruptions FRODO's
purge/rediscovery techniques should be stress-tested against.  This module
generalises the experiment harness: a *scenario family* is a named recipe
that turns one :class:`~repro.experiments.scenario.ScenarioSpec` plus the
built deployment into a :class:`~repro.net.failures.DisruptionPlan` (typed
outage/churn/loss/extra-change events), and the
:class:`~repro.experiments.runner.ExperimentRunner` applies whatever plan
the spec's family produces.

Families register by name in the module-level :data:`SCENARIOS` registry
(mirroring :mod:`repro.protocols.registry`) and are selectable from the CLI
as ``--scenario name@key=value,...``.

Determinism rules
-----------------
* The default ``table4`` family draws its outage plan from the run's
  ``failures`` RNG stream exactly as the pre-scenario harness did, so its
  runs are byte-identical to the paper's model.
* Every other family draws its extra events from dedicated
  ``("scenario", <family>)`` streams.  Streams are independently seeded from
  the run's master seed, so (a) two runs of the same spec are event-for-event
  identical regardless of process/host/executor, and (b) families that keep
  the baseline outage plan (churn, lossy, multichange) share the *same*
  per-node outages as ``table4`` at equal seeds — paired comparisons.

Conformance invariants
----------------------
Each family carries a ``check(spec, result)`` hook returning a list of
violated-invariant descriptions (empty when conformant).  All families share
the generic recovery invariant: when the last disruption (outage end, loss
window end, churn rejoin — and the last service change) leaves a
failure-free window of at least :data:`RECOVERY_BOUND` seconds before the
deadline, every measured User must have regained consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.metrics import RunResult
from repro.experiments.scenario import ScenarioSpec
from repro.net.failures import (
    DisruptionPlan,
    FailureModelConfig,
    InterfaceOutage,
    LinkCut,
    LossWindow,
    NodeChurn,
    build_interface_failure_plan,
)
from repro.experiments.tokens import canonical_token, parse_token
from repro.protocols.base import ProtocolDeployment
from repro.sim.rng import RngRegistry

#: Builder signature: spec + built deployment + the run's RNG registry +
#: merged options -> the run's disruption plan.
PlanBuilder = Callable[
    [ScenarioSpec, ProtocolDeployment, RngRegistry, Dict[str, Any]], DisruptionPlan
]

#: Conformance hook signature: returns violated-invariant descriptions.
ConformanceCheck = Callable[[ScenarioSpec, RunResult], List[str]]

#: Upper bound, in seconds, on purge + rediscovery + update propagation for
#: every modelled system once disruptions have ceased: the slowest periodic
#: recovery channels are the 900 s lease renewals and the 1200 s Registry
#: re-announcements, and a rejoining/restarted node bootstraps within one
#: announcement round.  Two such periods plus propagation slack is a safe
#: bound; the conformance battery exercises it across every family x system.
RECOVERY_BOUND = 3000.0

#: Disruptions never start before this time (discovery must settle first,
#: matching the paper's 100 s failure-free onset — churn waits a bit longer
#: so subscriptions exist before nodes start leaving).
EARLIEST_DISRUPTION = 200.0


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not registered."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.name!r}; "
            f"registered scenarios: {', '.join(self.known) or '(none)'}"
        )


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered scenario family: plan builder + options + invariants."""

    name: str
    builder: PlanBuilder
    #: Option names with their default values; unknown options are rejected.
    defaults: Dict[str, Any] = field(default_factory=dict)
    description: str = ""
    #: Family-specific conformance hook (the generic recovery invariant
    #: always runs in addition).
    checker: Optional[ConformanceCheck] = None

    def validate_options(self, options: Mapping[str, Any]) -> Dict[str, Any]:
        """Merge ``options`` over the defaults, rejecting unknown names."""
        unknown = sorted(set(options) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} does not accept option(s) "
                f"{', '.join(unknown)}; known options: "
                f"{', '.join(sorted(self.defaults)) or '(none)'}"
            )
        merged = dict(self.defaults)
        for key, value in options.items():
            default = self.defaults[key]
            if isinstance(default, bool):
                if not isinstance(value, bool):
                    raise ValueError(
                        f"scenario option {self.name}@{key} must be a bool, got {value!r}"
                    )
            elif isinstance(default, (int, float)):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"scenario option {self.name}@{key} must be a number, got {value!r}"
                    )
            merged[key] = value
        return merged

    def build(
        self, spec: ScenarioSpec, deployment: ProtocolDeployment, rng: RngRegistry
    ) -> DisruptionPlan:
        """The disruption plan of one run (deterministic in the spec's seed)."""
        options = self.validate_options(spec.scenario_options)
        return self.builder(spec, deployment, rng, options)

    def check(self, spec: ScenarioSpec, result: RunResult) -> List[str]:
        """Violated conformance invariants of one finished run (empty = pass)."""
        problems = _recovery_invariant(spec, result)
        if self.checker is not None:
            problems.extend(self.checker(spec, result))
        return problems


class ScenarioRegistry:
    """Name -> scenario-family mapping (mirrors the deployment registry)."""

    def __init__(self) -> None:
        self._entries: Dict[str, ScenarioFamily] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScenarioFamily]:
        return iter(self._entries.values())

    def register(self, family: ScenarioFamily, replace: bool = False) -> ScenarioFamily:
        """Register ``family`` under its name; duplicates raise unless ``replace``."""
        if not family.name:
            raise ValueError("scenario name must be non-empty")
        if family.name in self._entries and not replace:
            raise ValueError(f"scenario {family.name!r} already registered")
        self._entries[family.name] = family
        return family

    def unregister(self, name: str) -> None:
        """Remove a registration (no-op when absent)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> ScenarioFamily:
        """Look up a family; raises :class:`UnknownScenarioError` with the known names."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownScenarioError(name, self.names()) from None

    def names(self) -> List[str]:
        """All registered scenario names, sorted."""
        return sorted(self._entries.keys())


#: The default registry every standard scenario family registers into.
SCENARIOS = ScenarioRegistry()


# --------------------------------------------------------------------------- CLI tokens
def scenario_token(name: str, options: Mapping[str, Any]) -> str:
    """Canonical ``name@key=value,...`` token of a scenario selection.

    Options are sorted by name and values formatted canonically (floats via
    ``repr``), so equal selections always produce equal tokens — the property
    cell keys and checkpoint identities rely on.  A selection without
    options is just the bare name.  (The grammar is shared with ``--system``
    tokens; see :mod:`repro.experiments.tokens`.)
    """
    return canonical_token(name, options)


def parse_scenario(text: str) -> Tuple[str, Dict[str, Any]]:
    """Parse a CLI scenario token: ``churn@rate=0.1,gap=600`` -> name + options.

    Values parse as ``true``/``false``, int, float, or fall back to string.
    The name is *not* resolved against the registry here — callers validate
    via :meth:`ScenarioRegistry.get` so the error carries the known names.
    """
    return parse_token(text, label="scenario")


# --------------------------------------------------------------------------- shared pieces
def _baseline_outages(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    fit_to_deadline: bool = False,
) -> Tuple[InterfaceOutage, ...]:
    """The paper's per-node outage plan, drawn from the ``failures`` stream.

    This is byte-for-byte the draw the pre-scenario harness made, so every
    family built on top of it shares its outages with ``table4`` at equal
    seeds (paired comparisons across scenarios).
    """
    config = FailureModelConfig(
        sim_duration=spec.deadline,
        latest_onset=spec.deadline,
        fit_to_deadline=fit_to_deadline,
    )
    plan = build_interface_failure_plan(
        deployment.node_ids(), spec.failure_rate, rng.stream("failures"), config=config
    )
    return tuple(plan)


def _failure_section(result: RunResult) -> Dict[str, Any]:
    telemetry = result.details.get("telemetry")
    if isinstance(telemetry, dict):
        failures = telemetry.get("failures")
        if isinstance(failures, dict):
            return failures
    return {}


def _recovery_invariant(spec: ScenarioSpec, result: RunResult) -> List[str]:
    """Effectiveness must be 1.0 when the recovery window is comfortable.

    The invariant only claims full coverage when (a) every churned node came
    back (a User absent at the deadline legitimately never updates) and
    (b) at least :data:`RECOVERY_BOUND` disruption-free seconds separate the
    last disruption/change from the deadline.
    """
    failures = _failure_section(result)
    departed = set(failures.get("departed", ()))
    rejoined = set(failures.get("rejoined", ()))
    if departed - rejoined:
        return []
    last_disruption = max(
        result.change_time,
        float(failures.get("last_outage_end", 0.0)),
        float(failures.get("last_loss_end", 0.0)),
        float(failures.get("last_churn_end", 0.0)),
        float(failures.get("last_cut_end", 0.0)),
    )
    if result.deadline - last_disruption < RECOVERY_BOUND:
        return []
    updated = result.users_updated()
    if updated != result.n_users:
        return [
            f"recovery invariant violated: {updated}/{result.n_users} users updated "
            f"although the last disruption ended at {last_disruption:g}s, "
            f"{result.deadline - last_disruption:g}s (>= {RECOVERY_BOUND:g}s) "
            f"before the deadline"
        ]
    return []


def _fitted_onset(rng: Any, duration: float, deadline: float) -> float:
    """Uniform onset that keeps ``[start, start + duration]`` inside the run."""
    return rng.uniform(
        EARLIEST_DISRUPTION, max(EARLIEST_DISRUPTION, deadline - duration)
    )


# --------------------------------------------------------------------------- families
def _build_table4(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    return DisruptionPlan(outages=_baseline_outages(spec, deployment, rng))


def _check_table4(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    if failures.get("n_churn", 0) or failures.get("n_loss_windows", 0):
        problems.append("table4 must not schedule churn or loss windows")
    if failures.get("skipped_ops", 0):
        problems.append("table4 must never skip a failure operation (no churn)")
    return problems


def _build_overlap(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    per_node = int(options["n"])
    if per_node < 2:
        raise ValueError(f"overlap@n must be >= 2, got {per_node!r}")
    if spec.failure_rate == 0.0:
        return DisruptionPlan()
    stream = rng.stream("scenario", "overlap")
    duration = spec.failure_rate * spec.deadline / per_node
    modes = ("tx", "rx", "both")
    outages: List[InterfaceOutage] = []
    for node in deployment.node_ids():
        for _ in range(per_node):
            start = _fitted_onset(stream, duration, spec.deadline)
            mode = stream.choice(modes)
            outages.append(
                InterfaceOutage(node=node, start=start, duration=duration, mode=mode)
            )
    return DisruptionPlan(outages=tuple(outages))


def _check_overlap(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    per_node = int(spec.scenario_options.get("n", 2))
    n_outages = int(failures.get("n_outages", 0))
    if spec.failure_rate > 0 and (n_outages == 0 or n_outages % per_node):
        problems.append(
            f"overlap must schedule a multiple of n={per_node} outages, got {n_outages}"
        )
    # Windows are fitted, so merged realized downtime can never exceed the
    # nominal budget (it undershoots exactly when windows overlap).
    realized = float(failures.get("realized_fraction_mean", 0.0))
    if realized > spec.failure_rate + 1e-9:
        problems.append(
            f"overlap realized downtime fraction {realized:.4f} exceeds "
            f"nominal lambda {spec.failure_rate:.4f}"
        )
    return problems


def _build_churn(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    rate = float(options["rate"])
    gap = float(options["gap"])
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"churn@rate must be in [0, 1], got {rate!r}")
    if gap <= 0:
        raise ValueError(f"churn@gap must be positive, got {gap!r}")
    outages = _baseline_outages(spec, deployment, rng)
    users = [node.node_id for node in deployment.users]
    if rate == 0.0 or not users:
        return DisruptionPlan(outages=outages)
    latest_leave = spec.deadline - gap - RECOVERY_BOUND / 2
    if latest_leave <= EARLIEST_DISRUPTION:
        raise ValueError(
            f"churn@gap={gap:g} leaves no room for a leave/rejoin cycle before "
            f"the {spec.deadline:g}s deadline"
        )
    stream = rng.stream("scenario", "churn")
    count = min(len(users), max(1, round(rate * len(users))))
    churn: List[NodeChurn] = []
    for node in stream.sample(users, count):
        leave = stream.uniform(EARLIEST_DISRUPTION, latest_leave)
        churn.append(NodeChurn(node=node, leave=leave, rejoin=leave + gap).validate())
    return DisruptionPlan(outages=outages, churn=tuple(churn))


def _check_churn(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    departed = list(failures.get("departed", ()))
    rejoined = list(failures.get("rejoined", ()))
    if sorted(departed) != sorted(rejoined):
        problems.append(
            f"churn events always rejoin, yet departed={departed!r} != rejoined={rejoined!r}"
        )
    return problems


def _build_correlated(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    groups = int(options["groups"])
    if groups < 1:
        raise ValueError(f"correlated@groups must be >= 1, got {groups!r}")
    if spec.failure_rate == 0.0:
        return DisruptionPlan()
    stream = rng.stream("scenario", "correlated")
    nodes = deployment.node_ids()
    order = list(nodes)
    stream.shuffle(order)
    duration = spec.failure_rate * spec.deadline
    outages: List[InterfaceOutage] = []
    for group_index in range(min(groups, len(order))):
        members = order[group_index::groups]
        start = _fitted_onset(stream, duration, spec.deadline)
        # One draw fails the whole group: every member shares the window.
        outages.extend(
            InterfaceOutage(node=node, start=start, duration=duration, mode="both")
            for node in members
        )
    return DisruptionPlan(outages=tuple(outages))


def _check_correlated(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    if spec.failure_rate > 0:
        groups = int(spec.scenario_options.get("groups", 2))
        downtimes = failures.get("realized_downtime", {})
        distinct = len(set(downtimes.values()))
        if distinct > groups:
            problems.append(
                f"correlated failures must share group windows: "
                f"{distinct} distinct downtimes for {groups} group(s)"
            )
    return problems


def _build_cascade(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    lag = float(options["lag"])
    if lag <= 0:
        raise ValueError(f"cascade@lag must be positive, got {lag!r}")
    if spec.failure_rate == 0.0:
        return DisruptionPlan()
    stream = rng.stream("scenario", "cascade")
    order = deployment.node_ids()
    stream.shuffle(order)
    duration = spec.failure_rate * spec.deadline
    # The root failure's onset is fitted so the *last* dependent failure in
    # the chain still ends by the deadline whenever the geometry allows it.
    span = duration + lag * (len(order) - 1)
    root_start = _fitted_onset(stream, span, spec.deadline)
    outages = tuple(
        InterfaceOutage(
            node=node, start=root_start + index * lag, duration=duration, mode="both"
        )
        for index, node in enumerate(order)
    )
    return DisruptionPlan(outages=outages)


def _check_cascade(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    if spec.failure_rate > 0 and not failures.get("n_outages", 0):
        problems.append("cascade with lambda > 0 must schedule outages")
    if failures.get("skipped_ops", 0):
        problems.append("cascade schedules no churn, so no operation can be skipped")
    return problems


def _build_lossy(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    p = float(options["p"])
    windows = int(options["windows"])
    span = float(options["span"])
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"lossy@p must be in [0, 1], got {p!r}")
    if windows < 1:
        raise ValueError(f"lossy@windows must be >= 1, got {windows!r}")
    if span <= 0:
        raise ValueError(f"lossy@span must be positive, got {span!r}")
    outages = _baseline_outages(spec, deployment, rng)
    if p == 0.0:
        return DisruptionPlan(outages=outages)
    stream = rng.stream("scenario", "lossy")
    loss_windows = tuple(
        LossWindow(
            start=_fitted_onset(stream, span, spec.deadline),
            duration=span,
            drop_probability=p,
        ).validate()
        for _ in range(windows)
    )
    return DisruptionPlan(outages=outages, loss_windows=loss_windows)


def _check_lossy(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    p = float(spec.scenario_options.get("p", 0.2))
    expected = int(spec.scenario_options.get("windows", 3)) if p > 0 else 0
    if int(failures.get("n_loss_windows", 0)) != expected:
        problems.append(
            f"lossy must schedule exactly {expected} loss window(s), "
            f"got {failures.get('n_loss_windows', 0)}"
        )
    return problems


def _build_restart(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    at = float(options["at"])
    outage = float(options["outage"])
    if not 0 < at < spec.deadline:
        raise ValueError(f"restart@at must fall inside the run, got {at!r}")
    if outage <= 0:
        raise ValueError(f"restart@outage must be positive, got {outage!r}")
    if at + outage >= spec.deadline:
        raise ValueError(
            f"restart@at={at:g} + outage={outage:g} must end before the "
            f"{spec.deadline:g}s deadline"
        )
    # Restart the infrastructure: the Registries where the system has them,
    # otherwise its auxiliary nodes (FRODO's Central), otherwise the primary
    # Manager — every system has *something* whose restart triggers a
    # flash-crowd of rediscovery traffic.
    targets = deployment.registries or deployment.other_nodes or deployment.managers[:1]
    churn = tuple(
        NodeChurn(node=node.node_id, leave=at, rejoin=at + outage).validate()
        for node in targets
    )
    return DisruptionPlan(outages=_baseline_outages(spec, deployment, rng), churn=churn)


def _check_restart(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    if not failures.get("n_churn", 0):
        problems.append("restart must churn at least one infrastructure node")
    departed = list(failures.get("departed", ()))
    rejoined = list(failures.get("rejoined", ()))
    if sorted(departed) != sorted(rejoined):
        problems.append(
            f"restarted nodes must come back: departed={departed!r} != rejoined={rejoined!r}"
        )
    return problems


def _build_multichange(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    changes = int(options["changes"])
    spacing = float(options["spacing"])
    if changes < 2:
        raise ValueError(f"multichange@changes must be >= 2, got {changes!r}")
    if spacing <= 0:
        raise ValueError(f"multichange@spacing must be positive, got {spacing!r}")
    last = spec.change_time + (changes - 1) * spacing
    if last >= spec.deadline:
        raise ValueError(
            f"multichange: the last of {changes} changes lands at {last:g}s, "
            f"at or past the {spec.deadline:g}s deadline"
        )
    extra = tuple(spec.change_time + i * spacing for i in range(1, changes))
    return DisruptionPlan(
        outages=_baseline_outages(spec, deployment, rng), extra_change_times=extra
    )


def _check_multichange(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    changes = int(spec.scenario_options.get("changes", 3))
    # The initial description is version 1 and every change bumps by one.
    version = result.details.get("changed_version")
    if isinstance(version, int) and version != changes + 1:
        problems.append(
            f"multichange triggered {changes} changes so the authoritative "
            f"version must reach {changes + 1}, got {version}"
        )
    spacing = float(spec.scenario_options.get("spacing", 400.0))
    expected_last = spec.change_time + (changes - 1) * spacing
    if abs(result.change_time - expected_last) > 1e-6:
        problems.append(
            f"metrics must follow the last change at {expected_last:g}s, "
            f"but the measured change time is {result.change_time:g}s"
        )
    return problems


#: The registry-graph disruption shapes of the ``partition`` family.
PARTITION_MODES: Tuple[str, ...] = ("split", "link", "crash")


def _build_partition(
    spec: ScenarioSpec,
    deployment: ProtocolDeployment,
    rng: RngRegistry,
    options: Dict[str, Any],
) -> DisruptionPlan:
    mode = str(options["mode"])
    start = float(options["start"])
    duration = float(options["duration"])
    if mode not in PARTITION_MODES:
        raise ValueError(
            f"partition@mode must be one of {', '.join(PARTITION_MODES)}, got {mode!r}"
        )
    if start < EARLIEST_DISRUPTION:
        raise ValueError(
            f"partition@start must be >= {EARLIEST_DISRUPTION:g}, got {start!r}"
        )
    if duration <= 0:
        raise ValueError(f"partition@duration must be positive, got {duration!r}")
    if start + duration >= spec.deadline:
        raise ValueError(
            f"partition@start={start:g} + duration={duration:g} must heal before "
            f"the {spec.deadline:g}s deadline"
        )
    outages = _baseline_outages(spec, deployment, rng)
    ids = deployment.registry_ids() if hasattr(deployment, "registry_ids") else []
    if len(ids) < 2:
        # Single-registry and non-federated systems have no inter-registry
        # links to sever: partition degrades to the table4 plan, which keeps
        # the cross-system conformance battery meaningful.
        return DisruptionPlan(outages=outages)
    if mode == "crash":
        stream = rng.stream("scenario", "partition")
        node = stream.choice(ids)
        churn = (NodeChurn(node=node, leave=start, rejoin=start + duration).validate(),)
        return DisruptionPlan(outages=outages, churn=churn)
    if mode == "split":
        # Bipartition the registry graph: sever every near/far pair.  Pairs
        # that are not adjacency edges matter too — pull mode's home
        # fallback crosses the graph regardless of topology.
        half = (len(ids) + 1) // 2
        cuts = tuple(
            LinkCut(a=a, b=b, start=start, duration=duration).validate()
            for a in ids[:half]
            for b in ids[half:]
        )
        return DisruptionPlan(outages=outages, link_cuts=cuts)
    # mode == "link": sever one randomly drawn adjacency edge.
    edges = deployment.federation_edges()
    if not edges:
        return DisruptionPlan(outages=outages)
    stream = rng.stream("scenario", "partition")
    a, b = stream.choice(edges)
    cut = LinkCut(a=a, b=b, start=start, duration=duration).validate()
    return DisruptionPlan(outages=outages, link_cuts=(cut,))


def _check_partition(spec: ScenarioSpec, result: RunResult) -> List[str]:
    problems: List[str] = []
    failures = _failure_section(result)
    mode = str(spec.scenario_options.get("mode", "split"))
    start = float(spec.scenario_options.get("start", 1800.0))
    heal = start + float(spec.scenario_options.get("duration", 600.0))
    n_cuts = int(failures.get("n_link_cuts", 0))
    if mode == "crash":
        if n_cuts:
            problems.append(f"partition@mode=crash must not cut links, got {n_cuts}")
        departed = list(failures.get("departed", ()))
        rejoined = list(failures.get("rejoined", ()))
        if sorted(departed) != sorted(rejoined):
            problems.append(
                f"the crashed registry must restart: "
                f"departed={departed!r} != rejoined={rejoined!r}"
            )
    elif failures.get("n_churn", 0):
        problems.append(f"partition@mode={mode} must not churn nodes")
    federation = result.details.get("federation")
    if not isinstance(federation, dict):
        return problems
    k = int(federation.get("k", 0))
    ids = list(federation.get("registry_ids", ()))
    half = (k + 1) // 2
    if mode == "split" and k >= 2 and n_cuts != half * (k - half):
        problems.append(
            f"partition@mode=split over k={k} must cut "
            f"{half * (k - half)} link(s), got {n_cuts}"
        )
    if mode == "link" and n_cuts > 1:
        problems.append(f"partition@mode=link cuts at most one link, got {n_cuts}")
    # Stale-entry fallback bound: while the federation is split, the far
    # side can only serve its TTL-bounded stale entry — a change published
    # during the cut must not reach a far-side registry before the heal.
    # (Push mode is exempt: its multi-homed Manager updates every registry
    # directly, so registry-to-registry cuts cannot isolate the far side.)
    staleness = federation.get("staleness", {})
    if (
        mode == "split"
        and federation.get("mode") in ("pull", "gossip")
        and k >= 2
        and start - 1e-9 <= result.change_time < heal
    ):
        for registry_id in ids[half:]:
            window = staleness.get(registry_id)
            if window is not None and result.change_time + window < heal - 1e-9:
                problems.append(
                    f"partition leak: far-side registry {registry_id} stored the "
                    f"change at {result.change_time + window:g}s, before the "
                    f"{heal:g}s heal"
                )
    # Post-heal reconvergence: once the heal (and every other disruption)
    # leaves a comfortable failure-free tail, every registry must hold the
    # authoritative version again and the convergence time must be defined.
    if mode != "crash":
        tail_start = max(
            heal,
            result.change_time,
            float(failures.get("last_outage_end", 0.0)),
            float(failures.get("last_loss_end", 0.0)),
            float(failures.get("last_churn_end", 0.0)),
            float(failures.get("last_cut_end", 0.0)),
        )
        if result.deadline - tail_start >= RECOVERY_BOUND:
            change_version = federation.get("change_version")
            versions = federation.get("registry_versions", {})
            lagging = sorted(
                registry_id
                for registry_id, version in versions.items()
                if version != change_version
            )
            if lagging:
                problems.append(
                    f"partition reconvergence: registries {', '.join(lagging)} "
                    f"still hold a stale version although the post-heal tail "
                    f"exceeds {RECOVERY_BOUND:g}s"
                )
            if federation.get("convergence_time") is None:
                problems.append(
                    "partition reconvergence: convergence_time is undefined "
                    "although the post-heal tail exceeds the recovery bound"
                )
    return problems


def _register_standard_scenarios() -> None:
    SCENARIOS.register(
        ScenarioFamily(
            name="table4",
            builder=_build_table4,
            defaults={},
            description=(
                "The paper's Section 5 model: one outage per node, one service "
                "change (byte-identical to the pre-scenario harness)"
            ),
            checker=_check_table4,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="overlap",
            builder=_build_overlap,
            defaults={"n": 2},
            description=(
                "n outages per node of lambda*D/n seconds each, independently placed "
                "— windows repeat and overlap (depth-counted interfaces)"
            ),
            checker=_check_overlap,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="churn",
            builder=_build_churn,
            defaults={"rate": 0.1, "gap": 600.0},
            description=(
                "table4 outages plus a fraction `rate` of Users leaving mid-run "
                "and rejoining `gap` seconds later with a fresh bootstrap"
            ),
            checker=_check_churn,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="correlated",
            builder=_build_correlated,
            defaults={"groups": 2},
            description=(
                "nodes partitioned into `groups` groups; one draw fails a whole "
                "group for the same lambda*D window (mode both)"
            ),
            checker=_check_correlated,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="cascade",
            builder=_build_cascade,
            defaults={"lag": 30.0},
            description=(
                "a root node failure cascades: each next node fails `lag` "
                "seconds after the previous one, each for lambda*D seconds"
            ),
            checker=_check_cascade,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="lossy",
            builder=_build_lossy,
            defaults={"p": 0.2, "windows": 3, "span": 300.0},
            description=(
                "table4 outages plus `windows` loss windows of `span` seconds "
                "dropping each delivery with probability `p`"
            ),
            checker=_check_lossy,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="partition",
            builder=_build_partition,
            defaults={"mode": "split", "start": 1800.0, "duration": 600.0},
            description=(
                "table4 outages plus a federation partition at `start`: "
                "`mode` split severs every link between the two registry "
                "halves, link severs one adjacency edge, crash restarts one "
                "registry; everything heals after `duration` seconds "
                "(non-federated systems degrade to plain table4)"
            ),
            checker=_check_partition,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="restart",
            builder=_build_restart,
            defaults={"at": 2500.0, "outage": 60.0},
            description=(
                "table4 outages plus an infrastructure restart at `at`: the "
                "Registries (or Central/Manager) leave and rejoin `outage` "
                "seconds later, triggering flash-crowd rediscovery"
            ),
            checker=_check_restart,
        )
    )
    SCENARIOS.register(
        ScenarioFamily(
            name="multichange",
            builder=_build_multichange,
            defaults={"changes": 3, "spacing": 400.0},
            description=(
                "table4 outages plus `changes` service changes `spacing` "
                "seconds apart (metrics follow the last change)"
            ),
            checker=_check_multichange,
        )
    )


_register_standard_scenarios()
