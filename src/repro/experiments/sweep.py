"""Failure-rate sweeps (the paper's experiment proper).

A sweep is the cross product *systems x topology sizes x failure rates x
replications*.  Every run's master seed is derived deterministically from the
sweep's base seed and the run's cell coordinates
(:func:`~repro.experiments.scenario.run_seed`), so

* the same sweep specification always produces byte-identical results, and
* extending a sweep (more systems, rates or replications) never changes the
  results of the runs it already contained.

Execution is cell-based: :meth:`SweepSpec.expand` turns the grid into
:class:`SweepCell` tasks (one per replication, each a pure function of the
spec), an executor from :mod:`repro.experiments.executors` runs them — in
process or across a worker pool — and :func:`sweep` re-assembles the results
in grid order, so parallel output is byte-identical to serial output.

Sweeps can be checkpointed: pass ``checkpoint="path.jsonl"`` and every
finished cell is appended to the journal immediately (O(1) per cell);
re-running the same sweep with the same checkpoint path skips the cells the
journal already contains and produces exactly the output an uninterrupted
sweep would have produced.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import MetricSummary, RunResult
from repro.experiments.executors import SerialExecutor, SweepExecutor
from repro.experiments.resilience import (
    DEFAULT_POLICY,
    CellFailure,
    FailureBudgetExceededError,
    ResiliencePolicy,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenario import (
    DEFAULT_CHANGE_TIME,
    DEFAULT_SIM_DURATION,
    ScenarioSpec,
    cell_key,
    run_seed,
)
from repro.obs.analyze import TELEMETRY_JOURNAL
from repro.obs.progress import SweepProgress
from repro.obs.sinks import trace_filename
from repro.protocols.registry import DeploymentRegistry, SYSTEMS

#: Observer called after every finished run (progress reporting).  With a
#: parallel executor the observer fires in completion order; aggregated
#: results are always in grid order regardless.
RunObserver = Callable[[RunResult], None]

#: Format version of the checkpoint file (bumped on incompatible changes).
#: Version 2: cell keys carry the topology size (the ``users`` axis) and the
#: grid header records the full users grid.
#: Version 3: sweeps carry a scenario selection; non-default scenarios
#: append their canonical token to the cell key and the grid header, so a
#: journal written by one scenario can never be resumed by another — and
#: journals from the pre-scenario format fail loudly on this version check
#: instead of silently colliding.
#: Version 4: the system axis accepts parameterised ``name@k=v,...`` tokens
#: (``jini@k=8,mode=gossip``); the canonical token is the cell key's system
#: field, bare names stay bare (legacy keys are unchanged), and the registry
#: fingerprint evaluates the closed-form m' at the reference N instead of
#: recording an N=5 constant.
#: Version 5: journals carry typed ``cell_error`` quarantine records
#: ({"key": ..., "cell_error": CellFailure.to_dict()}) alongside finished
#: cells; loaders that only know ``run`` records would silently drop them,
#: so the version gates them out.  Errored cells stay *pending* on resume —
#: they are retried, which is what lets an interrupted chaotic sweep
#: converge to the undisturbed output.
CHECKPOINT_VERSION = 5


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a single replication of one grid cell.

    A cell is pure: its scenario (including the derived master seed) depends
    only on the sweep spec and the cell coordinates, never on execution
    order, which is what makes cells safe to run in parallel or to skip on
    resume.
    """

    system: str
    failure_rate: float
    run_index: int
    scenario: ScenarioSpec
    n_users: int = 5

    @property
    def key(self) -> str:
        """Stable checkpoint identity (see :func:`~repro.experiments.scenario.cell_key`)."""
        return cell_key(
            self.system,
            self.failure_rate,
            self.run_index,
            self.n_users,
            scenario=self.scenario.scenario_token,
        )


@dataclass(frozen=True)
class SweepSpec:
    """The full experiment grid."""

    systems: Sequence[str] = ("frodo3",)
    #: Failure rates as fractions in [0, 1] (the paper sweeps 0 % .. 80 %).
    failure_rates: Sequence[float] = (0.0,)
    #: Replications per (system, users, rate) cell.
    runs_per_cell: int = 20
    #: Base seed every per-run seed is derived from.
    base_seed: int = 0
    #: Topology size when ``users`` is not given (Table 4 uses 5).
    n_users: int = 5
    #: Optional topology-size grid (the ``--users`` axis).  ``None`` means a
    #: single size, :attr:`n_users`.  Seeds are shared across sizes of the
    #: same (system, rate, replication) — :func:`run_seed` deliberately does
    #: not hash the size, so adding sizes to a sweep never perturbs the seeds
    #: (and therefore results) of the sizes it already contained.
    users: Optional[Sequence[int]] = None
    change_time: float = DEFAULT_CHANGE_TIME
    deadline: float = DEFAULT_SIM_DURATION
    builder_options: Dict[str, Any] = field(default_factory=dict)
    #: Scenario family applied to every cell (``scenario`` is taken by the
    #: per-cell spec factory method below).  The default, ``table4``, is the
    #: paper's model and keeps sweep output byte-identical to the
    #: pre-scenario harness.
    scenario_name: str = "table4"
    #: Options of the scenario family (e.g. ``{"rate": 0.1}`` for ``churn``).
    scenario_options: Dict[str, Any] = field(default_factory=dict)

    @property
    def scenario_token(self) -> str:
        """Canonical ``name@k=v,...`` token of the sweep's scenario selection."""
        from repro.experiments.scenarios import scenario_token

        return scenario_token(self.scenario_name, self.scenario_options)

    @property
    def users_grid(self) -> Tuple[int, ...]:
        """The topology sizes the sweep covers, in execution order."""
        if self.users:
            return tuple(int(n) for n in self.users)
        return (self.n_users,)

    def validate(self, registry: DeploymentRegistry = SYSTEMS) -> "SweepSpec":
        """Check the grid against the registry before spending any cycles."""
        if not self.systems:
            raise ValueError("sweep needs at least one system")
        if not self.failure_rates:
            raise ValueError("sweep needs at least one failure rate")
        if self.runs_per_cell < 1:
            raise ValueError("runs_per_cell must be >= 1")
        if len(set(self.users_grid)) != len(self.users_grid):
            raise ValueError(f"duplicate sizes in users grid {self.users_grid!r}")
        for n in self.users_grid:
            if n < 1:
                raise ValueError(f"users grid sizes must be >= 1, got {n!r}")
        for system in self.systems:
            # Raises UnknownSystemError / ValueError with the known names;
            # accepts bare names and parameterised tokens alike.
            registry.resolve(system)
        self.scenario(self.systems[0], self.failure_rates[0], 0).validate()
        return self

    def scenario(
        self,
        system: str,
        failure_rate: float,
        run_index: int,
        n_users: Optional[int] = None,
    ) -> ScenarioSpec:
        """The :class:`ScenarioSpec` of one cell replication."""
        return ScenarioSpec(
            system=system,
            failure_rate=failure_rate,
            seed=run_seed(self.base_seed, system, failure_rate, run_index),
            n_users=self.n_users if n_users is None else n_users,
            change_time=self.change_time,
            deadline=self.deadline,
            builder_options=dict(self.builder_options),
            scenario=self.scenario_name,
            scenario_options=dict(self.scenario_options),
        )

    def cells(self) -> List[Tuple[str, int, float]]:
        """All (system, users, failure rate) cells in execution order."""
        return [
            (system, n, rate)
            for system in self.systems
            for n in self.users_grid
            for rate in self.failure_rates
        ]

    def expand(self) -> List[SweepCell]:
        """The grid as per-replication :class:`SweepCell` tasks, in grid order."""
        return [
            SweepCell(
                system=system,
                failure_rate=rate,
                run_index=run_index,
                scenario=self.scenario(system, rate, run_index, n),
                n_users=n,
            )
            for system, n, rate in self.cells()
            for run_index in range(self.runs_per_cell)
        ]

    def grid_dict(self) -> Dict[str, Any]:
        """The grid parameters as plain data (JSON output and checkpoint identity).

        The scenario token joins the dict only for non-default scenarios:
        the default ``table4`` sweep's JSON output must stay byte-identical
        to the pre-scenario harness (a pinned fixture enforces this).
        """
        grid = {
            "systems": list(self.systems),
            "failure_rates": [float(rate) for rate in self.failure_rates],
            "runs_per_cell": self.runs_per_cell,
            "base_seed": self.base_seed,
            "n_users": self.n_users,
            "users": list(self.users_grid),
            "change_time": self.change_time,
            "deadline": self.deadline,
        }
        token = self.scenario_token
        if token != "table4":
            grid["scenario"] = token
        return grid

    @property
    def total_runs(self) -> int:
        """Number of simulation runs the sweep will execute."""
        return (
            len(self.systems)
            * len(self.users_grid)
            * len(self.failure_rates)
            * self.runs_per_cell
        )


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced: per-run results plus per-cell summaries."""

    spec: SweepSpec
    runs: List[RunResult]
    summaries: List[MetricSummary]
    #: Cells quarantined under the failure budget (empty for a clean sweep).
    #: Their runs/summaries are *gaps*, never fabricated values; the report
    #: layer surfaces this list so partial output is explicit.
    failures: List[CellFailure] = field(default_factory=list)

    def cell_runs(
        self, system: str, failure_rate: float, n_users: Optional[int] = None
    ) -> List[RunResult]:
        """The replications of one cell (all sizes unless ``n_users`` is given)."""
        return [
            run
            for run in self.runs
            if run.system == system
            and run.failure_rate == failure_rate
            and (n_users is None or run.n_users == n_users)
        ]

    def summary_for(
        self, system: str, failure_rate: float, n_users: Optional[int] = None
    ) -> MetricSummary:
        """The metric summary of one cell (first matching size unless ``n_users`` is given)."""
        for summary in self.summaries:
            if (
                summary.system == system
                and summary.failure_rate == failure_rate
                and (n_users is None or summary.n_users == n_users)
            ):
                return summary
        raise KeyError(f"no summary for ({system!r}, {failure_rate!r}, users={n_users!r})")


# --------------------------------------------------------------------------- checkpoints
# The checkpoint is an append-only JSONL journal: line 1 is a header with the
# format version and the grid parameters, every further line is one finished
# cell ({"key": ..., "run": ...}).  Appending keeps per-cell persistence at
# O(1) (a full-file rewrite per cell would make checkpointing O(n^2) over a
# sweep and throttle the parallel coordinator), and a torn final line — the
# crash case appends exist for — is detected and dropped on load.
class CheckpointMismatchError(ValueError):
    """The checkpoint on disk was written by a different sweep specification."""


def _registry_fingerprint(registry: DeploymentRegistry) -> List[List[Any]]:
    # The closed-form m' evaluated at the reference N (5): equal to the old
    # integer fingerprint for every legacy registry, so v4 journals only
    # refuse resume when a system's closed form actually changed.
    return [
        [entry.name, entry.m_prime_at(5)] for entry in sorted(registry, key=lambda e: e.name)
    ]


def _checkpoint_header(spec: SweepSpec, registry: DeploymentRegistry) -> Dict[str, Any]:
    return {
        "version": CHECKPOINT_VERSION,
        "spec": spec.grid_dict(),
        # builder_options and the registry change the deployment being
        # measured, so both join the journal identity.  Both checks are
        # best-effort: option values need a stable repr (a default object
        # repr embeds an address and will spuriously refuse resume — the
        # safe direction), and the registry fingerprint (names + m') cannot
        # see inside builder closures, so two same-shaped registries with
        # different builders are indistinguishable.
        "builder_options": repr(sorted(spec.builder_options.items())),
        "registry": _registry_fingerprint(registry),
    }


def _record_line(key: str, run: RunResult) -> str:
    return json.dumps({"key": key, "run": run.to_dict()}, sort_keys=True) + "\n"


def _error_line(key: str, failure: CellFailure) -> str:
    return json.dumps({"key": key, "cell_error": failure.to_dict()}, sort_keys=True) + "\n"


def append_checkpoint(
    path: str,
    spec: SweepSpec,
    key: str,
    run: RunResult,
    registry: DeploymentRegistry = SYSTEMS,
) -> None:
    """Append one finished cell to the journal (writing the header first if new)."""
    fresh = not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, "a", encoding="utf-8") as handle:
        if fresh:
            handle.write(json.dumps(_checkpoint_header(spec, registry), sort_keys=True) + "\n")
        handle.write(_record_line(key, run))


def append_cell_error(
    path: str,
    spec: SweepSpec,
    key: str,
    failure: CellFailure,
    registry: DeploymentRegistry = SYSTEMS,
) -> None:
    """Append one quarantined cell to the journal as a typed ``cell_error`` record.

    Error records document *why* a cell is missing; they never mark it
    completed.  On resume the cell is pending again (and compaction drops
    the stale error record), so a later run retries it.
    """
    fresh = not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, "a", encoding="utf-8") as handle:
        if fresh:
            handle.write(json.dumps(_checkpoint_header(spec, registry), sort_keys=True) + "\n")
        handle.write(_error_line(key, failure))


def save_checkpoint(
    path: str,
    spec: SweepSpec,
    completed: Dict[str, RunResult],
    registry: DeploymentRegistry = SYSTEMS,
) -> None:
    """Atomically rewrite the whole journal (compaction; appends do the hot path).

    Only finished cells survive compaction: ``cell_error`` records are
    deliberately dropped, because the cells they describe are pending again
    and will either finish (a ``run`` record) or fail afresh (a new error
    record) in the resuming sweep.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_checkpoint_header(spec, registry), sort_keys=True) + "\n")
        for key, run in sorted(completed.items()):
            handle.write(_record_line(key, run))
    os.replace(tmp_path, path)


def load_checkpoint(
    path: str,
    spec: SweepSpec,
    registry: DeploymentRegistry = SYSTEMS,
    errors_out: Optional[List[CellFailure]] = None,
) -> Dict[str, RunResult]:
    """Load the finished cells of a previous partial sweep.

    Returns an empty mapping when ``path`` does not exist or is empty (a
    fresh sweep that will start checkpointing there).  A torn final line
    (interrupted append) is dropped.  ``cell_error`` quarantine records are
    collected into ``errors_out`` (when given) but never mark a cell
    completed — errored cells are retried on resume.  Raises
    :class:`CheckpointMismatchError` when the journal belongs to a different
    grid and :class:`ValueError` when it is not a checkpoint journal at all.
    """
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        expected = json.dumps(_checkpoint_header(spec, registry), sort_keys=True)
        if len(lines) == 1 and expected.startswith(lines[0]):
            # A crash during the very first append tore the header itself;
            # the journal carries no results yet, so treat it as fresh.
            return {}
        raise ValueError(f"checkpoint {path!r} is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or "spec" not in header:
        raise ValueError(f"checkpoint {path!r} is not a sweep checkpoint file")
    if header.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint journal {path!r} has version {header.get('version')!r} but "
            f"this harness reads version {CHECKPOINT_VERSION}; old journals cannot "
            f"be resumed — re-run the sweep with a fresh --resume path (or delete "
            f"{path!r}) to regenerate it"
        )
    expected = _checkpoint_header(spec, registry)
    if any(header.get(field) != expected[field] for field in ("spec", "builder_options")):
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written by a different sweep spec "
            f"({header['spec']!r}); refusing to mix results"
        )
    if header.get("registry") != expected["registry"]:
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written against a different deployment "
            f"registry ({header.get('registry')!r}); refusing to mix results"
        )
    completed: Dict[str, RunResult] = {}
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):  # torn final append from an interrupted sweep
                break
            raise ValueError(f"checkpoint {path!r} is corrupt at line {number}") from None
        try:
            key = record["key"]
            if "cell_error" in record:
                failure = CellFailure.from_dict(record["cell_error"])
                if errors_out is not None:
                    errors_out.append(failure)
                continue
            run = RunResult.from_dict(record["run"])
        except (KeyError, TypeError):
            # Valid JSON of the wrong shape is corruption, not a torn append.
            raise ValueError(f"checkpoint {path!r} is corrupt at line {number}") from None
        completed[key] = run
    return completed


# --------------------------------------------------------------------------- telemetry journal
#: Format tag of the sweep telemetry journal header line.
TELEMETRY_FORMAT = "repro-telemetry"


def _write_telemetry_journal(
    path: str,
    spec: SweepSpec,
    cells: Sequence[SweepCell],
    completed: Dict[str, RunResult],
    walls: Dict[str, float],
    attempts: Optional[Dict[str, int]] = None,
    errors: Optional[Dict[str, str]] = None,
    resilience: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the per-cell telemetry journal of a finished sweep.

    One NDJSON line per cell, in grid order: the cell coordinates, the wall
    time measured by the executor (``null`` for cells resumed from a
    checkpoint — they were not executed this time), the deterministic
    :mod:`~repro.obs.telemetry` counters carried in the run's details, the
    attempts the cell took this execution (``null`` when resumed), and the
    error type of a quarantined cell (``null`` otherwise — quarantined
    cells keep their line so gaps are explicit, with ``telemetry: null``).
    A sweep that had to retry, quarantine, or rebuild pools additionally
    carries a ``resilience`` summary in the header.
    """
    attempts = attempts or {}
    errors = errors or {}
    with open(path, "w", encoding="utf-8") as handle:
        header: Dict[str, Any] = {
            "format": TELEMETRY_FORMAT,
            "version": 1,
            "grid": spec.grid_dict(),
        }
        if resilience is not None:
            header["resilience"] = resilience
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for cell in cells:
            run = completed.get(cell.key)
            record = {
                "key": cell.key,
                "system": cell.system,
                "users": cell.n_users,
                "failure_rate": cell.failure_rate,
                "run_index": cell.run_index,
                "wall_seconds": walls.get(cell.key),
                "telemetry": run.details.get("telemetry") if run is not None else None,
                "attempts": attempts.get(cell.key),
                "error": errors.get(cell.key),
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")


# --------------------------------------------------------------------------- driver
def sweep(
    spec: SweepSpec,
    registry: DeploymentRegistry = SYSTEMS,
    runner: Optional[ExperimentRunner] = None,
    observer: Optional[RunObserver] = None,
    *,
    executor: Optional[SweepExecutor] = None,
    checkpoint: Optional[str] = None,
    trace_dir: Optional[str] = None,
    progress: Optional[SweepProgress] = None,
    policy: Optional[ResiliencePolicy] = None,
) -> SweepResult:
    """Execute the full grid and aggregate each cell into a :class:`MetricSummary`.

    When an explicit ``runner`` is supplied its registry wins: validation and
    the per-system ``m_prime`` lookup must see the same registry the
    deployments are built from.  ``executor`` selects where cells run
    (default: serial, in process); ``checkpoint`` enables resume — completed
    cells found in the file are skipped, new completions are persisted after
    every cell, and the aggregated result is byte-identical to an
    uninterrupted sweep.

    Observability (both purely additive — they never change the results):

    * ``trace_dir`` streams every executed cell's full event trace to
      ``trace_dir/<cell-key>.ndjson`` with bounded memory, and writes a
      ``telemetry.ndjson`` journal (per-cell counters + wall time, grid
      order) next to the traces when the sweep finishes.
    * ``progress`` receives live cell-completion updates (typically a
      :class:`~repro.obs.progress.SweepProgress` printing to stderr).

    ``policy`` adds fault tolerance (:mod:`repro.experiments.resilience`):
    per-cell timeouts, deterministic retries, and a failure budget — up to
    ``policy.max_cell_failures`` cells may fail, each quarantined as a typed
    ``cell_error`` journal record and reported in ``SweepResult.failures``
    with its runs/summaries left as explicit gaps; one failure more raises
    :class:`~repro.experiments.resilience.FailureBudgetExceededError`.  The
    default policy keeps the legacy behaviour: the first failing cell aborts
    the sweep (after writing its quarantine record when checkpointing).
    """
    if runner is None:
        runner = ExperimentRunner(registry)
    else:
        registry = runner.registry
    spec.validate(registry)
    policy = (policy if policy is not None else DEFAULT_POLICY).validate()
    if executor is None:
        executor = SerialExecutor()

    cells = spec.expand()
    completed: Dict[str, RunResult] = (
        load_checkpoint(checkpoint, spec, registry) if checkpoint is not None else {}
    )
    if checkpoint is not None and os.path.exists(checkpoint):
        # Compact the journal before appending: this truncates a torn final
        # line left by an interrupted append, so new records never extend a
        # partial line (which would merge into one corrupt record).
        save_checkpoint(checkpoint, spec, completed, registry)
    pending = [cell for cell in cells if cell.key not in completed]

    if trace_dir is not None:
        try:
            os.makedirs(trace_dir, exist_ok=True)
        except OSError as exc:
            # Observability must never kill the run it observes: an
            # unwritable trace dir degrades to no tracing, loudly but once.
            print(
                f"warning: cannot create trace dir {trace_dir!r} ({exc}); "
                f"tracing disabled for this sweep",
                file=sys.stderr,
            )
            trace_dir = None
    if trace_dir is not None:
        scenarios = [
            replace(cell.scenario, trace_path=os.path.join(trace_dir, trace_filename(cell.key)))
            for cell in pending
        ]
    else:
        scenarios = [cell.scenario for cell in pending]

    def on_result(pending_index: int, result: RunResult) -> None:
        key = pending[pending_index].key
        completed[key] = result
        if checkpoint is not None:
            append_checkpoint(checkpoint, spec, key, result, registry)
        if observer is not None:
            observer(result)

    failures: List[CellFailure] = []

    def on_error(pending_index: int, failure: CellFailure) -> None:
        failures.append(failure)
        if checkpoint is not None:
            append_cell_error(checkpoint, spec, failure.key, failure, registry)
        if progress is not None:
            progress.cell_failed(failure.key, failure.error)
        if len(failures) > policy.max_cell_failures:
            resume_hint = (
                f"; completed cells are checkpointed — fix the cause and re-run "
                f"with --resume {checkpoint}"
                if checkpoint is not None
                else ""
            )
            raise FailureBudgetExceededError(
                f"{len(failures)} cell(s) failed, exceeding the failure budget of "
                f"{policy.max_cell_failures} (--max-cell-failures): "
                + "; ".join(f"{f.key} [{f.error}: {f.message}]" for f in failures)
                + resume_hint
            )

    # Wall times are observational only: they flow to the progress reporter
    # and the telemetry journal, never into RunResults (which must stay
    # byte-identical across hosts, executors, and observability settings).
    walls: Dict[str, float] = {}
    on_progress: Optional[Callable[[int, RunResult, float], None]] = None
    if progress is not None or trace_dir is not None:

        def on_progress(pending_index: int, result: RunResult, wall_seconds: float) -> None:
            key = pending[pending_index].key
            walls[key] = wall_seconds
            if progress is not None:
                progress.cell_done(key, wall_seconds)

    if progress is not None:
        progress.start(len(cells), resumed=len(cells) - len(pending))
    executor.run_scenarios(
        scenarios,
        runner=runner,
        on_result=on_result,
        on_progress=on_progress,
        keys=[cell.key for cell in pending],
        policy=policy,
        on_error=on_error,
    )
    if progress is not None:
        progress.finish()
    if trace_dir is not None:
        stats = getattr(executor, "last_stats", None)
        noteworthy = stats is not None and (
            stats.retried_cells or stats.failed_cells or stats.pool_rebuilds or failures
        )
        from repro.obs.telemetry import collect_sweep_resilience

        _write_telemetry_journal(
            os.path.join(trace_dir, TELEMETRY_JOURNAL),
            spec,
            cells,
            completed,
            walls,
            attempts=stats.attempts if stats is not None else None,
            errors={failure.key: failure.error for failure in failures},
            resilience=collect_sweep_resilience(stats, failures) if noteworthy else None,
        )

    # Ordered aggregation: grid order, independent of execution/completion
    # order and of which cells were resumed from the checkpoint.  Quarantined
    # cells are *gaps*: their runs are absent and a cell whose every
    # replication failed gets no summary row at all, rather than a fabricated
    # value.
    run_rows = [completed.get(cell.key) for cell in cells]
    runs = [run for run in run_rows if run is not None]
    summaries: List[MetricSummary] = []
    for offset, (system, n, _rate) in enumerate(spec.cells()):
        cell_runs = [
            run
            for run in run_rows[offset * spec.runs_per_cell : (offset + 1) * spec.runs_per_cell]
            if run is not None
        ]
        if not cell_runs:
            continue
        # The deployment's own m' wins over the registry metadata; the
        # fallback evaluates the registry's closed form at the cell's actual
        # topology size, so both agree at every N (not just at 5).
        m_prime = cell_runs[0].details.get("m_prime", registry.resolve(system).m_prime(n))
        summaries.append(MetricSummary.from_runs(cell_runs, m_prime=int(m_prime)))
    return SweepResult(
        spec=spec,
        runs=runs,
        summaries=summaries,
        failures=sorted(failures, key=lambda failure: failure.key),
    )
