"""Failure-rate sweeps (the paper's experiment proper).

A sweep is the cross product *systems x failure rates x replications*.  Every
run's master seed is derived deterministically from the sweep's base seed and
the run's cell coordinates (:func:`~repro.experiments.scenario.run_seed`), so

* the same sweep specification always produces byte-identical results, and
* extending a sweep (more systems, rates or replications) never changes the
  results of the runs it already contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import MetricSummary, RunResult
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenario import (
    DEFAULT_CHANGE_TIME,
    DEFAULT_SIM_DURATION,
    ScenarioSpec,
    run_seed,
)
from repro.protocols.registry import DeploymentRegistry, SYSTEMS

#: Observer called after every finished run (progress reporting).
RunObserver = Callable[[RunResult], None]


@dataclass(frozen=True)
class SweepSpec:
    """The full experiment grid."""

    systems: Sequence[str] = ("frodo3",)
    #: Failure rates as fractions in [0, 1] (the paper sweeps 0 % .. 80 %).
    failure_rates: Sequence[float] = (0.0,)
    #: Replications per (system, rate) cell.
    runs_per_cell: int = 20
    #: Base seed every per-run seed is derived from.
    base_seed: int = 0
    n_users: int = 5
    change_time: float = DEFAULT_CHANGE_TIME
    deadline: float = DEFAULT_SIM_DURATION
    builder_options: Dict[str, Any] = field(default_factory=dict)

    def validate(self, registry: DeploymentRegistry = SYSTEMS) -> "SweepSpec":
        """Check the grid against the registry before spending any cycles."""
        if not self.systems:
            raise ValueError("sweep needs at least one system")
        if not self.failure_rates:
            raise ValueError("sweep needs at least one failure rate")
        if self.runs_per_cell < 1:
            raise ValueError("runs_per_cell must be >= 1")
        for system in self.systems:
            registry.get(system)  # raises UnknownSystemError with the known names
        self.scenario(self.systems[0], self.failure_rates[0], 0).validate()
        return self

    def scenario(self, system: str, failure_rate: float, run_index: int) -> ScenarioSpec:
        """The :class:`ScenarioSpec` of one cell replication."""
        return ScenarioSpec(
            system=system,
            failure_rate=failure_rate,
            seed=run_seed(self.base_seed, system, failure_rate, run_index),
            n_users=self.n_users,
            change_time=self.change_time,
            deadline=self.deadline,
            builder_options=dict(self.builder_options),
        )

    def cells(self) -> List[Tuple[str, float]]:
        """All (system, failure rate) cells in execution order."""
        return [(system, rate) for system in self.systems for rate in self.failure_rates]

    @property
    def total_runs(self) -> int:
        """Number of simulation runs the sweep will execute."""
        return len(self.systems) * len(self.failure_rates) * self.runs_per_cell


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced: per-run results plus per-cell summaries."""

    spec: SweepSpec
    runs: List[RunResult]
    summaries: List[MetricSummary]

    def cell_runs(self, system: str, failure_rate: float) -> List[RunResult]:
        """The replications of one (system, rate) cell."""
        return [
            run
            for run in self.runs
            if run.system == system and run.failure_rate == failure_rate
        ]

    def summary_for(self, system: str, failure_rate: float) -> MetricSummary:
        """The metric summary of one cell."""
        for summary in self.summaries:
            if summary.system == system and summary.failure_rate == failure_rate:
                return summary
        raise KeyError(f"no summary for ({system!r}, {failure_rate!r})")


def sweep(
    spec: SweepSpec,
    registry: DeploymentRegistry = SYSTEMS,
    runner: Optional[ExperimentRunner] = None,
    observer: Optional[RunObserver] = None,
) -> SweepResult:
    """Execute the full grid and aggregate each cell into a :class:`MetricSummary`.

    When an explicit ``runner`` is supplied its registry wins: validation and
    the per-system ``m_prime`` lookup must see the same registry the
    deployments are built from.
    """
    if runner is None:
        runner = ExperimentRunner(registry)
    else:
        registry = runner.registry
    spec.validate(registry)
    runs: List[RunResult] = []
    summaries: List[MetricSummary] = []
    for system, rate in spec.cells():
        cell_runs: List[RunResult] = []
        for run_index in range(spec.runs_per_cell):
            result = runner.run(spec.scenario(system, rate, run_index))
            cell_runs.append(result)
            if observer is not None:
                observer(result)
        runs.extend(cell_runs)
        # The deployment's own m' wins over the registry metadata: it scales
        # with the topology (e.g. 3N for UPnP), so sweeps with --users != 5
        # keep the zero-failure degradation at exactly 1.0.
        m_prime = cell_runs[0].details.get("m_prime", registry.get(system).m_prime)
        summaries.append(MetricSummary.from_runs(cell_runs, m_prime=int(m_prime)))
    return SweepResult(spec=spec, runs=runs, summaries=summaries)
