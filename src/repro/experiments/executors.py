"""Pluggable sweep execution: serial and process-parallel cell running.

The sweep driver (:mod:`repro.experiments.sweep`) expands its grid into pure
per-cell tasks — each a :class:`~repro.experiments.scenario.ScenarioSpec`
carrying its own derived seed — and hands them to an executor.  Executors
only decide *where* cells run; aggregation order is fixed by the caller, so
parallel sweeps produce byte-identical output to serial ones:

* :class:`SerialExecutor` runs every cell in submission order in the calling
  process (the classic single-process sweep path),
* :class:`ParallelExecutor` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker rebuilds a
  fresh :class:`~repro.experiments.runner.ExperimentRunner` per cell, and
  every random stream derives from the cell's own seed, so results do not
  depend on which worker ran a cell or in which order cells finished.

``make_executor(jobs)`` is the CLI-facing factory: ``--jobs 1`` selects the
serial path, ``--jobs N`` (N > 1) the process pool.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, List, Optional, Sequence, Union

from repro.core.metrics import RunResult
from repro.experiments.runner import ExperimentRunner, run_scenario
from repro.experiments.scenario import ScenarioSpec
from repro.protocols.registry import SYSTEMS

#: Completion callback: ``(index_into_submitted_scenarios, result)``.  Serial
#: execution invokes it in submission order; parallel execution in completion
#: order.  Ordered aggregation must therefore happen on the *returned* list
#: (which is always in submission order), never on callback order.
CellCallback = Callable[[int, RunResult], None]


class SerialExecutor:
    """Runs cells one after another in the calling process."""

    jobs = 1

    def __init__(self, runner: Optional[ExperimentRunner] = None) -> None:
        self.runner = runner

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` in order; returns results in the same order."""
        active = runner or self.runner or ExperimentRunner()
        results: List[RunResult] = []
        for index, scenario in enumerate(scenarios):
            result = active.run(scenario)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ParallelExecutor:
    """Fans cells out over a process pool (``--jobs N``, N > 1).

    Workers always build against the default :data:`~repro.protocols.registry.SYSTEMS`
    registry and default network configuration — registry builders are
    closures and cannot be pickled into workers.  Supplying a customised
    runner raises :class:`ValueError`; use the serial path for instrumented
    registries.
    """

    def __init__(self, jobs: int, runner: Optional[ExperimentRunner] = None) -> None:
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.runner = runner

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` concurrently; returns results in submission order."""
        runner = runner or self.runner
        if runner is not None and (
            type(runner) is not ExperimentRunner
            or runner.registry is not SYSTEMS
            or runner.network_config is not None
        ):
            raise ValueError(
                "parallel execution only supports the default registry, network "
                "configuration and ExperimentRunner type; run customised sweeps "
                "with jobs=1"
            )
        results: List[Optional[RunResult]] = [None] * len(scenarios)
        if not scenarios:
            return []
        # run_scenario is module-level (hence picklable) and rebuilds a fresh
        # default-registry runner inside the worker: deployment builders are
        # closures and cannot cross process boundaries.
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(run_scenario, scenario): index
                for index, scenario in enumerate(scenarios)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                result = future.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
        return [result for result in results if result is not None]


#: Either executor satisfies the same structural interface.
SweepExecutor = Union[SerialExecutor, ParallelExecutor]


def make_executor(jobs: int, runner: Optional[ExperimentRunner] = None) -> SweepExecutor:
    """Executor for ``--jobs``: 1 falls back to the serial in-process path.

    ``runner`` is carried by the returned executor either way, so a
    customised runner still hits :class:`ParallelExecutor`'s guard instead
    of being silently replaced by the default registry in the workers.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor(runner)
    return ParallelExecutor(jobs, runner)
