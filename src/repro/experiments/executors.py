"""Pluggable sweep execution: serial and process-parallel cell running.

The sweep driver (:mod:`repro.experiments.sweep`) expands its grid into pure
per-cell tasks — each a :class:`~repro.experiments.scenario.ScenarioSpec`
carrying its own derived seed — and hands them to an executor.  Executors
only decide *where* cells run; aggregation order is fixed by the caller, so
parallel sweeps produce byte-identical output to serial ones:

* :class:`SerialExecutor` runs every cell in submission order in the calling
  process (the classic single-process sweep path),
* :class:`ParallelExecutor` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with *warm workers*: a pool
  initializer builds one :class:`~repro.experiments.runner.ExperimentRunner`
  per worker process (from a picklable
  :class:`~repro.experiments.runner.RunnerSpec`), cells are submitted in
  chunks to amortise task-dispatch overhead, and workers stream back compact
  ``RunResult.to_dict()`` payloads instead of pickled objects.  Every random
  stream derives from the cell's own seed, so results do not depend on which
  worker ran a cell, how cells were chunked, or in which order chunks
  finished.

``make_executor(jobs)`` is the CLI-facing factory: ``--jobs 1`` selects the
serial path, ``--jobs N`` (N > 1) the process pool.  Customised registries
ride along by handing the pool a :class:`RunnerSpec` (an importable
``"module:attr"`` reference) instead of a closure-carrying runner.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.metrics import RunResult
from repro.experiments.runner import ExperimentRunner, RunnerSpec
from repro.experiments.scenario import ScenarioSpec
from repro.protocols.registry import SYSTEMS

#: Completion callback: ``(index_into_submitted_scenarios, result)``.  Serial
#: execution invokes it in submission order; parallel execution in completion
#: order.  Ordered aggregation must therefore happen on the *returned* list
#: (which is always in submission order), never on callback order.
CellCallback = Callable[[int, RunResult], None]

#: Observability callback: ``(index, result, wall_seconds)``, fired alongside
#: :data:`CellCallback` with the cell's measured wall time.  Wall time is for
#: progress/telemetry reporting only — it never enters the RunResult, so
#: results (and byte-identity gates) stay independent of host speed.  With a
#: parallel executor the wall time is measured inside the worker process.
CellProgress = Callable[[int, RunResult, float], None]

#: Chunks submitted per worker: enough that a slow chunk cannot leave workers
#: idle for long, few enough that dispatch overhead stays amortised.
_CHUNKS_PER_WORKER = 4


class SerialExecutor:
    """Runs cells one after another in the calling process."""

    jobs = 1

    def __init__(self, runner: Optional[ExperimentRunner] = None) -> None:
        self.runner = runner

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
        on_progress: Optional[CellProgress] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` in order; returns results in the same order."""
        active = runner or self.runner or ExperimentRunner()
        results: List[RunResult] = []
        for index, scenario in enumerate(scenarios):
            started = time.perf_counter()
            result = active.run(scenario)
            wall = time.perf_counter() - started
            results.append(result)
            if on_result is not None:
                on_result(index, result)
            if on_progress is not None:
                on_progress(index, result, wall)
        return results


# ----------------------------------------------------------------- worker side
#: Per-worker-process runner, built once by the pool initializer and reused
#: for every chunk the worker executes (the "warm worker" amortisation).
_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_worker(runner_spec: RunnerSpec) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner_spec.resolve()


def _run_chunk(scenarios: Sequence[ScenarioSpec]) -> List[Dict[str, Any]]:
    """Task body: run a chunk of cells on the warm runner, stream plain dicts.

    Each payload is ``{"run": RunResult.to_dict(), "wall_seconds": float}``:
    the ``to_dict`` form keeps the result pickle small and JSON-shaped (the
    same representation the sweep checkpoint uses) and the parent rebuilds
    full :class:`RunResult` objects via ``from_dict`` — a lossless round
    trip by contract.  ``wall_seconds`` is measured here, in the worker, so
    per-cell timing survives chunked submission.
    """
    runner = _WORKER_RUNNER
    if runner is None:  # pool built without initializer (defensive)
        runner = ExperimentRunner()
    payloads: List[Dict[str, Any]] = []
    for scenario in scenarios:
        started = time.perf_counter()
        result = runner.run(scenario)
        wall = time.perf_counter() - started
        payloads.append({"run": result.to_dict(), "wall_seconds": wall})
    return payloads


class ParallelExecutor:
    """Fans cells out over a process pool of warm workers (``--jobs N``, N > 1).

    Workers default to the standard :data:`~repro.protocols.registry.SYSTEMS`
    registry and network configuration.  A customised deployment is supported
    by passing ``runner_spec`` — a picklable, importable recipe — because
    registry builders themselves are closures and cannot cross process
    boundaries.  Supplying a customised ``runner`` *object* without a spec
    still raises :class:`ValueError` (the old ``--jobs 1`` restriction, now
    with an escape hatch).
    """

    def __init__(
        self,
        jobs: int,
        runner: Optional[ExperimentRunner] = None,
        runner_spec: Optional[RunnerSpec] = None,
    ) -> None:
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.runner = runner
        self.runner_spec = runner_spec

    def _effective_spec(self, runner: Optional[ExperimentRunner]) -> RunnerSpec:
        if self.runner_spec is not None:
            return self.runner_spec
        if runner is not None and (
            type(runner) is not ExperimentRunner
            or runner.registry is not SYSTEMS
            or runner.network_config is not None
        ):
            raise ValueError(
                "parallel execution cannot pickle a customised runner into "
                "workers; pass a RunnerSpec (an importable 'module:attr' "
                "registry reference) or run with jobs=1"
            )
        return RunnerSpec()

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
        on_progress: Optional[CellProgress] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` concurrently; returns results in submission order."""
        runner_spec = self._effective_spec(runner or self.runner)
        if not scenarios:
            return []
        # Chunked submission: one future per chunk (not per cell) amortises
        # pool dispatch and result-pickling overhead over many cells.
        chunk_size = max(1, -(-len(scenarios) // (self.jobs * _CHUNKS_PER_WORKER)))
        chunks = [
            (start, list(scenarios[start : start + chunk_size]))
            for start in range(0, len(scenarios), chunk_size)
        ]
        results: List[Optional[RunResult]] = [None] * len(scenarios)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)),
            initializer=_init_worker,
            initargs=(runner_spec,),
        ) as pool:
            futures = {
                pool.submit(_run_chunk, chunk): start for start, chunk in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                start = futures[future]
                for offset, payload in enumerate(future.result()):
                    result = RunResult.from_dict(payload["run"])
                    results[start + offset] = result
                    if on_result is not None:
                        on_result(start + offset, result)
                    if on_progress is not None:
                        on_progress(start + offset, result, payload["wall_seconds"])
        return [result for result in results if result is not None]


#: Either executor satisfies the same structural interface.
SweepExecutor = Union[SerialExecutor, ParallelExecutor]


def make_executor(
    jobs: int,
    runner: Optional[ExperimentRunner] = None,
    runner_spec: Optional[RunnerSpec] = None,
) -> SweepExecutor:
    """Executor for ``--jobs``: 1 falls back to the serial in-process path.

    ``runner`` is carried by the returned executor either way, so a
    customised runner still hits :class:`ParallelExecutor`'s guard instead
    of being silently replaced by the default registry in the workers;
    ``runner_spec`` is the picklable alternative that lets customised
    registries run in parallel.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        if runner is None and runner_spec is not None:
            runner = runner_spec.resolve()
        return SerialExecutor(runner)
    return ParallelExecutor(jobs, runner, runner_spec)
