"""Pluggable sweep execution: serial and process-parallel cell running.

The sweep driver (:mod:`repro.experiments.sweep`) expands its grid into pure
per-cell tasks — each a :class:`~repro.experiments.scenario.ScenarioSpec`
carrying its own derived seed — and hands them to an executor.  Executors
only decide *where* cells run; aggregation order is fixed by the caller, so
parallel sweeps produce byte-identical output to serial ones:

* :class:`SerialExecutor` runs every cell in submission order in the calling
  process (the classic single-process sweep path),
* :class:`ParallelExecutor` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with *warm workers*: a pool
  initializer builds one :class:`~repro.experiments.runner.ExperimentRunner`
  per worker process (from a picklable
  :class:`~repro.experiments.runner.RunnerSpec`), cells are submitted in
  chunks to amortise task-dispatch overhead, and workers stream back compact
  ``RunResult.to_dict()`` payloads instead of pickled objects.  Every random
  stream derives from the cell's own seed, so results do not depend on which
  worker ran a cell, how cells were chunked, or in which order chunks
  finished.

Both executors run cells through the resilience layer
(:mod:`repro.experiments.resilience`): a
:class:`~repro.experiments.resilience.ResiliencePolicy` adds per-cell
timeouts and deterministic retries, an ``on_error`` callback routes
finally-failed cells to the caller as typed
:class:`~repro.experiments.resilience.CellFailure` records (without one the
original exception propagates, the legacy behaviour), and the parallel
executor survives worker death: a ``BrokenProcessPool`` rebuilds the pool
and resubmits only the chunks that never finished.  A ``KeyboardInterrupt``
drains already-finished chunks through ``on_result`` before re-raising, so
an interrupted checkpointed sweep keeps every completed cell.

``make_executor(jobs)`` is the CLI-facing factory: ``--jobs 1`` selects the
serial path, ``--jobs N`` (N > 1) the process pool.  Customised registries
ride along by handing the pool a :class:`RunnerSpec` (an importable
``"module:attr"`` reference) instead of a closure-carrying runner.
"""

from __future__ import annotations

import concurrent.futures
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.metrics import RunResult
from repro.experiments.resilience import (
    DEFAULT_POLICY,
    CellExecutionError,
    CellFailure,
    ExecutionStats,
    PoolRecoveryError,
    ResiliencePolicy,
    run_cell_guarded,
)
from repro.experiments.runner import ExperimentRunner, RunnerSpec
from repro.experiments.scenario import ScenarioSpec
from repro.protocols.registry import SYSTEMS

#: Completion callback: ``(index_into_submitted_scenarios, result)``.  Serial
#: execution invokes it in submission order; parallel execution in completion
#: order.  Ordered aggregation must therefore happen on the *returned* list
#: (which is always in submission order), never on callback order.
CellCallback = Callable[[int, RunResult], None]

#: Observability callback: ``(index, result, wall_seconds)``, fired alongside
#: :data:`CellCallback` with the cell's measured wall time.  Wall time is for
#: progress/telemetry reporting only — it never enters the RunResult, so
#: results (and byte-identity gates) stay independent of host speed.  With a
#: parallel executor the wall time is measured inside the worker process.
CellProgress = Callable[[int, RunResult, float], None]

#: Failure callback: ``(index_into_submitted_scenarios, CellFailure)`` for a
#: cell that exhausted its retries.  Without one, the cell's own exception
#: propagates and aborts the sweep (the legacy behaviour).
CellErrorCallback = Callable[[int, CellFailure], None]

#: Chunks submitted per worker: enough that a slow chunk cannot leave workers
#: idle for long, few enough that dispatch overhead stays amortised.
_CHUNKS_PER_WORKER = 4


def _cell_keys(scenarios: Sequence[ScenarioSpec], keys: Optional[Sequence[str]]) -> List[str]:
    """The per-cell keys used for fault matching and stats (defaulted by index)."""
    if keys is None:
        return [f"cell-{index}" for index in range(len(scenarios))]
    if len(keys) != len(scenarios):
        raise ValueError(f"got {len(keys)} keys for {len(scenarios)} scenarios")
    return list(keys)


class SerialExecutor:
    """Runs cells one after another in the calling process."""

    jobs = 1

    def __init__(self, runner: Optional[ExperimentRunner] = None) -> None:
        self.runner = runner
        #: Stats of the most recent :meth:`run_scenarios` call (observability).
        self.last_stats = ExecutionStats()

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
        on_progress: Optional[CellProgress] = None,
        keys: Optional[Sequence[str]] = None,
        policy: Optional[ResiliencePolicy] = None,
        on_error: Optional[CellErrorCallback] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` in order; returns successful results in order.

        Failed cells (after ``policy`` retries) go to ``on_error`` and are
        omitted from the returned list; without ``on_error`` the original
        exception propagates.
        """
        active = runner or self.runner or ExperimentRunner()
        policy = policy if policy is not None else DEFAULT_POLICY
        stats = ExecutionStats()
        self.last_stats = stats
        cell_keys = _cell_keys(scenarios, keys)
        results: List[RunResult] = []
        for index, scenario in enumerate(scenarios):
            started = time.perf_counter()
            try:
                result, attempts = run_cell_guarded(active, scenario, cell_keys[index], policy)
            except CellExecutionError as exc:
                stats.record(exc.key, exc.attempts, failed=True)
                if on_error is None:
                    # Legacy contract: the cell's own exception aborts the run.
                    raise exc.original from None
                on_error(index, exc.failure())
                continue
            wall = time.perf_counter() - started
            stats.record(cell_keys[index], attempts)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
            if on_progress is not None:
                on_progress(index, result, wall)
        return results


# ----------------------------------------------------------------- worker side
#: Per-worker-process runner, built once by the pool initializer and reused
#: for every chunk the worker executes (the "warm worker" amortisation).
_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_worker(runner_spec: RunnerSpec) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner_spec.resolve()


def _run_chunk(
    scenarios: Sequence[ScenarioSpec],
    keys: Sequence[str],
    policy: ResiliencePolicy,
) -> List[Dict[str, Any]]:
    """Task body: run a chunk of cells on the warm runner, stream plain dicts.

    A successful cell yields ``{"run": RunResult.to_dict(), "wall_seconds":
    float, "attempts": int}``: the ``to_dict`` form keeps the result pickle
    small and JSON-shaped (the same representation the sweep checkpoint uses)
    and the parent rebuilds full :class:`RunResult` objects via ``from_dict``
    — a lossless round trip by contract.  A cell that exhausted its retries
    yields ``{"error": CellFailure.to_dict(), "wall_seconds": float}``
    instead — the worker never dies on a poisoned cell, only on being killed.
    ``wall_seconds`` is measured here, in the worker, so per-cell timing
    survives chunked submission.
    """
    runner = _WORKER_RUNNER
    if runner is None:  # pool built without initializer (defensive)
        runner = ExperimentRunner()
    payloads: List[Dict[str, Any]] = []
    for scenario, key in zip(scenarios, keys):
        started = time.perf_counter()
        try:
            result, attempts = run_cell_guarded(runner, scenario, key, policy)
        except CellExecutionError as exc:
            payloads.append(
                {
                    "error": exc.failure().to_dict(),
                    "wall_seconds": time.perf_counter() - started,
                }
            )
            continue
        payloads.append(
            {
                "run": result.to_dict(),
                "wall_seconds": time.perf_counter() - started,
                "attempts": attempts,
            }
        )
    return payloads


class ParallelExecutor:
    """Fans cells out over a process pool of warm workers (``--jobs N``, N > 1).

    Workers default to the standard :data:`~repro.protocols.registry.SYSTEMS`
    registry and network configuration.  A customised deployment is supported
    by passing ``runner_spec`` — a picklable, importable recipe — because
    registry builders themselves are closures and cannot cross process
    boundaries.  Supplying a customised ``runner`` *object* without a spec
    still raises :class:`ValueError` (the old ``--jobs 1`` restriction, now
    with an escape hatch).
    """

    def __init__(
        self,
        jobs: int,
        runner: Optional[ExperimentRunner] = None,
        runner_spec: Optional[RunnerSpec] = None,
    ) -> None:
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.runner = runner
        self.runner_spec = runner_spec
        #: Stats of the most recent :meth:`run_scenarios` call (observability).
        self.last_stats = ExecutionStats()

    def _effective_spec(self, runner: Optional[ExperimentRunner]) -> RunnerSpec:
        if self.runner_spec is not None:
            return self.runner_spec
        if runner is not None and (
            type(runner) is not ExperimentRunner
            or runner.registry is not SYSTEMS
            or runner.network_config is not None
        ):
            raise ValueError(
                "parallel execution cannot pickle a customised runner into "
                "workers; pass a RunnerSpec (an importable 'module:attr' "
                "registry reference) or run with jobs=1"
            )
        return RunnerSpec()

    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioSpec],
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[CellCallback] = None,
        on_progress: Optional[CellProgress] = None,
        keys: Optional[Sequence[str]] = None,
        policy: Optional[ResiliencePolicy] = None,
        on_error: Optional[CellErrorCallback] = None,
    ) -> List[RunResult]:
        """Execute ``scenarios`` concurrently; returns results in submission order.

        Survives worker death: when the pool breaks (a worker was killed),
        it is rebuilt and only the chunks that never finished are
        resubmitted, up to ``policy.max_pool_rebuilds`` times.  Because every
        cell derives its randomness from its own seed, a resubmitted chunk
        reproduces exactly what the dead worker would have produced.
        """
        runner_spec = self._effective_spec(runner or self.runner)
        policy = policy if policy is not None else DEFAULT_POLICY
        stats = ExecutionStats()
        self.last_stats = stats
        if not scenarios:
            return []
        cell_keys = _cell_keys(scenarios, keys)
        # Chunked submission: one future per chunk (not per cell) amortises
        # pool dispatch and result-pickling overhead over many cells.
        chunk_size = max(1, -(-len(scenarios) // (self.jobs * _CHUNKS_PER_WORKER)))
        pending: Dict[int, List[ScenarioSpec]] = {
            start: list(scenarios[start : start + chunk_size])
            for start in range(0, len(scenarios), chunk_size)
        }
        results: List[Optional[RunResult]] = [None] * len(scenarios)

        def consume(start: int, payloads: List[Dict[str, Any]]) -> None:
            for offset, payload in enumerate(payloads):
                index = start + offset
                error = payload.get("error")
                if error is not None:
                    failure = CellFailure.from_dict(error)
                    stats.record(failure.key, failure.attempts, failed=True)
                    if on_error is None:
                        # Legacy contract: a failed cell aborts the sweep.
                        raise CellExecutionError(
                            failure.key,
                            failure.attempts,
                            RuntimeError(f"{failure.error}: {failure.message}"),
                        )
                    on_error(index, failure)
                    continue
                result = RunResult.from_dict(payload["run"])
                stats.record(cell_keys[index], payload.get("attempts", 1))
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
                if on_progress is not None:
                    on_progress(index, result, payload["wall_seconds"])

        rebuilds = 0
        while pending:
            broken = False
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                initializer=_init_worker,
                initargs=(runner_spec,),
            ) as pool:
                futures = {
                    pool.submit(
                        _run_chunk, chunk, cell_keys[start : start + len(chunk)], policy
                    ): start
                    for start, chunk in sorted(pending.items())
                }
                try:
                    for future in concurrent.futures.as_completed(futures):
                        start = futures[future]
                        try:
                            payloads = future.result()
                        except BrokenProcessPool:
                            # A worker died; its chunk stays pending.  Keep
                            # draining — chunks that finished before the
                            # break still hold results.
                            broken = True
                            continue
                        del pending[start]
                        consume(start, payloads)
                except KeyboardInterrupt:
                    # Flush chunks that DID complete before the interrupt so
                    # their cells reach on_result (and the checkpoint
                    # journal) before the interrupt propagates.
                    for future, start in futures.items():
                        if start in pending and future.done() and not future.cancelled():
                            try:
                                payloads = future.result()
                            except Exception:
                                continue
                            del pending[start]
                            consume(start, payloads)
                    raise
            if broken:
                stats.pool_rebuilds += 1
                rebuilds += 1
                if rebuilds > policy.max_pool_rebuilds:
                    raise PoolRecoveryError(
                        f"worker pool broke {rebuilds} time(s), exceeding the "
                        f"rebuild cap of {policy.max_pool_rebuilds}; "
                        f"{len(pending)} chunk(s) never finished — a worker "
                        f"is dying repeatedly (OOM kill? native crash?)"
                    )
        return [result for result in results if result is not None]


#: Either executor satisfies the same structural interface.
SweepExecutor = Union[SerialExecutor, ParallelExecutor]


def make_executor(
    jobs: int,
    runner: Optional[ExperimentRunner] = None,
    runner_spec: Optional[RunnerSpec] = None,
) -> SweepExecutor:
    """Executor for ``--jobs``: 1 falls back to the serial in-process path.

    ``runner`` is carried by the returned executor either way, so a
    customised runner still hits :class:`ParallelExecutor`'s guard instead
    of being silently replaced by the default registry in the workers;
    ``runner_spec`` is the picklable alternative that lets customised
    registries run in parallel.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        if runner is None and runner_spec is not None:
            runner = runner_spec.resolve()
        return SerialExecutor(runner)
    return ParallelExecutor(jobs, runner, runner_spec)
